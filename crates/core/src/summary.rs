//! Table 4 derivation: the ✓/⚠ evaluation summary.
//!
//! The paper condenses all experiments into a matrix of categories ×
//! engines where "✓ means that the system achieved the best or near-to-best
//! performance" and "⚠ means that the system performance was towards the
//! low end or indicated execution problems". We derive the same matrix
//! mechanically from a [`Report`]:
//!
//! * ✓ — median latency within [`GOOD_FACTOR`] of the per-query best and
//!   no non-completions in the group;
//! * ⚠ — any timeout/failure in the group, or median more than
//!   [`WARN_FACTOR`] × best;
//! * blank — in between.

use std::collections::BTreeMap;

use crate::report::{Outcome, Report, RunMode};

/// Within this factor of the best = near-to-best (✓).
pub const GOOD_FACTOR: f64 = 3.0;
/// Beyond this factor of the best = low end (⚠).
pub const WARN_FACTOR: f64 = 25.0;

/// Table 4 column groups (the paper's header row).
pub const GROUPS: [(&str, &[&str]); 13] = [
    ("Load", &["Q1"]),
    ("Insertions", &["Q2", "Q3", "Q4", "Q5", "Q6", "Q7"]),
    ("Graph Statistics", &["Q8", "Q9", "Q10"]),
    ("Search by Property/Label", &["Q11", "Q12", "Q13"]),
    ("Search by Id", &["Q14", "Q15"]),
    ("Updates", &["Q16", "Q17"]),
    ("Delete Node", &["Q18"]),
    ("Other Deletions", &["Q19", "Q20", "Q21"]),
    ("Neighbors", &["Q22", "Q23", "Q24"]),
    ("Node Edge-Labels", &["Q25", "Q26", "Q27"]),
    ("Degree Filter", &["Q28", "Q29", "Q30", "Q31"]),
    ("BFS", &["Q32", "Q33"]),
    ("Shortest Path", &["Q34", "Q35"]),
];

/// A cell of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cell {
    /// Best or near-to-best (✓).
    Good,
    /// Low end or execution problems (⚠).
    Warn,
    /// In between (blank in the paper).
    Mid,
    /// No data.
    NoData,
}

impl Cell {
    /// Render as the paper does.
    pub fn symbol(&self) -> &'static str {
        match self {
            Cell::Good => "✓",
            Cell::Warn => "⚠",
            Cell::Mid => " ",
            Cell::NoData => "·",
        }
    }
}

/// The derived Table 4.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Engine names (rows).
    pub engines: Vec<String>,
    /// Group names (columns).
    pub groups: Vec<String>,
    /// `cells[engine_idx][group_idx]`.
    pub cells: Vec<Vec<Cell>>,
}

/// Instance name → group query list match (`"Q32(d=3)"` belongs to `"Q32"`).
fn in_group(query: &str, group_queries: &[&str]) -> bool {
    let base = query.split('(').next().unwrap_or(query);
    group_queries.contains(&base)
}

/// Derive Table 4 from a report (isolation-mode rows).
pub fn derive(report: &Report) -> Summary {
    let mut engines: Vec<String> = report.rows.iter().map(|r| r.engine.clone()).collect();
    engines.sort();
    engines.dedup();

    let mut cells = vec![Vec::new(); engines.len()];
    for (group_name, group_queries) in GROUPS {
        let _ = group_name;
        // Collect per-engine medians over the group.
        let mut medians: BTreeMap<usize, f64> = BTreeMap::new();
        let mut dnf: Vec<bool> = vec![false; engines.len()];
        let mut any_data: Vec<bool> = vec![false; engines.len()];
        for (ei, engine) in engines.iter().enumerate() {
            let mut times: Vec<f64> = Vec::new();
            for r in &report.rows {
                if r.mode != RunMode::Isolation
                    || &r.engine != engine
                    || !in_group(&r.query, group_queries)
                {
                    continue;
                }
                any_data[ei] = true;
                match r.outcome {
                    Outcome::Completed => times.push(r.millis()),
                    _ => dnf[ei] = true,
                }
            }
            if !times.is_empty() {
                times.sort_by(|a, b| a.total_cmp(b));
                medians.insert(ei, times[times.len() / 2]);
            }
        }
        let best = medians
            .values()
            .fold(f64::INFINITY, |acc, &v| acc.min(v))
            .max(1e-6);
        for (ei, _) in engines.iter().enumerate() {
            let cell = if !any_data[ei] {
                Cell::NoData
            } else if dnf[ei] {
                Cell::Warn
            } else {
                match medians.get(&ei) {
                    Some(&m) if m <= best * GOOD_FACTOR => Cell::Good,
                    Some(&m) if m > best * WARN_FACTOR => Cell::Warn,
                    Some(_) => Cell::Mid,
                    None => Cell::NoData,
                }
            };
            cells[ei].push(cell);
        }
    }
    Summary {
        engines,
        groups: GROUPS.iter().map(|(n, _)| n.to_string()).collect(),
        cells,
    }
}

impl Summary {
    /// Render as a text table in the shape of Table 4.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<16}", "engine"));
        for g in &self.groups {
            let short: String = g.chars().take(12).collect();
            out.push_str(&format!(" | {short:>12}"));
        }
        out.push('\n');
        out.push_str(&"-".repeat(16 + self.groups.len() * 15));
        out.push('\n');
        for (ei, engine) in self.engines.iter().enumerate() {
            out.push_str(&format!("{engine:<16}"));
            for cell in &self.cells[ei] {
                out.push_str(&format!(" | {:>12}", cell.symbol()));
            }
            out.push('\n');
        }
        out
    }

    /// The cell for (engine, group name), if present.
    pub fn cell(&self, engine: &str, group: &str) -> Option<Cell> {
        let ei = self.engines.iter().position(|e| e == engine)?;
        let gi = self.groups.iter().position(|g| g == group)?;
        Some(self.cells[ei][gi])
    }
}

// ----- concurrency scalability report (Figure 8) ---------------------------

/// One (engine, mix, thread-count) cell of the concurrency sweep, produced
/// by the `gm-workload` driver and rendered next to the paper's figures.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Engine name.
    pub engine: String,
    /// Workload mix name (e.g. `"read-heavy"`).
    pub mix: String,
    /// Read-path isolation the run used: `"locked"` (shared `RwLock`),
    /// `"snapshot-cow"` or `"snapshot-native"` (gm-mvcc pinned epochs), or
    /// `"remote"` (whatever the server hosts). The locked-vs-snapshot
    /// comparison in `fig8_concurrency` keys on this column.
    pub isolation: String,
    /// Worker thread count.
    pub threads: u32,
    /// Operations completed.
    pub ops: u64,
    /// Completed operations that were **reads** (`ops - read_ops` were
    /// writes). The isolation comparison keys on read throughput: under a
    /// write-heavy mix total throughput is writer-bound in every mode, but
    /// snapshot reads never block behind writers, so reads/s keeps scaling
    /// where the locked read path flattens.
    pub read_ops: u64,
    /// Operations that returned an error (timeouts included).
    pub errors: u64,
    /// Operations shed by open-loop backpressure: their scheduled arrival
    /// fell further behind than the configured bound, so the driver dropped
    /// them instead of executing against an unbounded backlog.
    pub shed: u64,
    /// Reads whose serving epoch was **lower** than the epoch the same
    /// worker's previous read observed — counted once per drop (the worker
    /// adopts the restarted epoch regime afterwards, so one `Reset` is one
    /// skew event per worker, not one per remaining read). Always 0 for
    /// in-process snapshot runs (epochs are monotone per source); non-zero
    /// means the engine behind the reads was replaced mid-run — e.g. a
    /// remote `Reset` raced the workload — so correlated read errors are
    /// epoch skew, not engine bugs. Locked-mode runs carry no epochs and
    /// report 0.
    pub epoch_skew: u64,
    /// Write transactions whose commit lost first-committer-wins validation
    /// (`GdbError::TxnConflict`): the whole buffered write set was discarded
    /// and the session moved on. Only transactional sessions
    /// (`GM_TXN_OPS > 0`) produce these; a conflicted commit is *not* an op
    /// error — the ops executed, the commit lost a race — so it is counted
    /// here instead of in [`ScalingRow::errors`].
    pub txn_conflicts: u64,
    /// Total nanoseconds completed ops spent **waiting to acquire engine
    /// locks** (queueing, not hold time): the shared `RwLock`, MVCC cell
    /// mutexes, or `gm-shard`'s per-partition locks. The per-partition vs
    /// single-lock comparison (`fig10_sharding`) keys on this column — it
    /// is how "writers to different shards don't serialize" becomes a
    /// measured number instead of a claim.
    pub lock_wait_nanos: u64,
    /// Total nanoseconds completed ops spent **executing** against the
    /// engine (the `engine_exec` phase: query evaluation itself, excluding
    /// nested lock waits and snapshot machinery). Populated when the run
    /// was observed under `GM_OBS=phases`; 0 otherwise.
    pub engine_exec_nanos: u64,
    /// Total nanoseconds spent **pinning** MVCC snapshot epochs (the
    /// `snapshot_pin` phase). 0 for locked-mode runs and under `GM_OBS=off`.
    pub snapshot_pin_nanos: u64,
    /// Total nanoseconds spent **cloning/freezing** the live engine to
    /// publish an epoch (the `clone_publish` phase — the cost of
    /// copy-on-write isolation, paid by the writer that triggers it).
    pub clone_publish_nanos: u64,
    /// Total nanoseconds spent **serializing** request/response frames
    /// (the `wire_encode` phase; client-side for remote runs).
    pub wire_encode_nanos: u64,
    /// Total nanoseconds spent in **socket round trips** (the `wire_io`
    /// phase). For remote runs this is client-observed wire time minus the
    /// server-reported execution phases shipped back in `ExecDone`.
    pub wire_io_nanos: u64,
    /// Configured open-loop arrival rate (`None` for closed-loop runs, where
    /// the offered rate *is* the achieved rate by construction).
    pub offered_ops_per_sec: Option<f64>,
    /// Wall-clock duration of the whole run.
    pub wall_nanos: u64,
    /// Median per-op latency.
    pub p50_nanos: u64,
    /// 95th percentile per-op latency.
    pub p95_nanos: u64,
    /// 99th percentile per-op latency.
    pub p99_nanos: u64,
    /// Worst observed per-op latency.
    pub max_nanos: u64,
    /// Trace id of a flight-recorder-captured op from the p99 latency
    /// bucket's neighborhood (the p99's own histogram bucket, or the nearest
    /// bucket above it) — the handle that turns the aggregate p99 into one
    /// concrete retrievable trace record. 0 when tracing was off or no tail
    /// op was captured.
    pub p99_exemplar: u64,
}

impl ScalingRow {
    /// Completed operations per second over the wall clock (the *achieved*
    /// rate; compare against [`ScalingRow::offered_ops_per_sec`] to see how
    /// far an open-loop run fell short of its schedule).
    pub fn throughput(&self) -> f64 {
        if self.wall_nanos == 0 {
            0.0
        } else {
            self.ops as f64 * 1e9 / self.wall_nanos as f64
        }
    }

    /// Completed **read** operations per wall-clock second.
    pub fn read_throughput(&self) -> f64 {
        if self.wall_nanos == 0 {
            0.0
        } else {
            self.read_ops as f64 * 1e9 / self.wall_nanos as f64
        }
    }

    /// Fraction of issued arrivals that were shed (0.0 when nothing was
    /// scheduled or nothing shed).
    pub fn shed_fraction(&self) -> f64 {
        let total = self.ops + self.errors + self.shed;
        if total == 0 {
            0.0
        } else {
            self.shed as f64 / total as f64
        }
    }

    /// Mean lock wait per completed op, in nanoseconds (0 when no op
    /// completed).
    pub fn lock_wait_per_op(&self) -> u64 {
        self.lock_wait_nanos.checked_div(self.ops).unwrap_or(0)
    }

    /// Mean engine-execution time per completed op, in nanoseconds.
    pub fn exec_per_op(&self) -> u64 {
        self.engine_exec_nanos.checked_div(self.ops).unwrap_or(0)
    }

    /// Mean snapshot machinery time per completed op (pin + clone/publish),
    /// in nanoseconds.
    pub fn snapshot_per_op(&self) -> u64 {
        self.snapshot_pin_nanos
            .saturating_add(self.clone_publish_nanos)
            .checked_div(self.ops)
            .unwrap_or(0)
    }

    /// Mean wire time per completed op (encode + socket I/O), in
    /// nanoseconds. 0 for in-process runs.
    pub fn wire_per_op(&self) -> u64 {
        self.wire_encode_nanos
            .saturating_add(self.wire_io_nanos)
            .checked_div(self.ops)
            .unwrap_or(0)
    }

    /// Sum of every attributed phase (lock wait, engine exec, snapshot
    /// pin/clone, wire), in nanoseconds — what the observability smoke
    /// compares against the end-to-end latency sum.
    pub fn phase_total_nanos(&self) -> u64 {
        self.lock_wait_nanos
            .saturating_add(self.engine_exec_nanos)
            .saturating_add(self.snapshot_pin_nanos)
            .saturating_add(self.clone_publish_nanos)
            .saturating_add(self.wire_encode_nanos)
            .saturating_add(self.wire_io_nanos)
    }
}

/// Human-friendly nanosecond formatting, shared by every latency renderer
/// (the scaling table here and the histogram sketches in `gm-workload`).
pub fn format_nanos(nanos: u64) -> String {
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.1}µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.1}ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2}s", nanos as f64 / 1e9)
    }
}

/// Render the concurrency sweep: one section per (engine, mix, isolation),
/// one line per thread count, with throughput, speedup over the 1-thread
/// line, and the latency tail. This is the text analogue of a scalability
/// figure; locked vs snapshot rows of the same (engine, mix) sit next to
/// each other so the isolation cost reads directly off the table.
pub fn render_scaling(rows: &[ScalingRow]) -> String {
    let mut keys: Vec<(String, String, String)> = rows
        .iter()
        .map(|r| (r.engine.clone(), r.mix.clone(), r.isolation.clone()))
        .collect();
    keys.sort();
    keys.dedup();
    let mut out = String::new();
    out.push_str(&format!(
        "{:<36} {:>7} {:>12} {:>12} {:>12} {:>8} {:>10} {:>10} {:>10} {:>10} {:>9} {:>7} {:>7} {:>5} {:>5} {:>9} {:>9} {:>9} {:>18}\n",
        "engine/mix@isolation",
        "threads",
        "offered/s",
        "ops/s",
        "reads/s",
        "speedup",
        "p50",
        "p95",
        "p99",
        "max",
        "lockw/op",
        "errors",
        "shed",
        "skew",
        "txnc",
        "exec/op",
        "snap/op",
        "wire/op",
        "p99_exemplar"
    ));
    out.push_str(&"-".repeat(223));
    out.push('\n');
    for (engine, mix, isolation) in &keys {
        let mut group: Vec<&ScalingRow> = rows
            .iter()
            .filter(|r| &r.engine == engine && &r.mix == mix && &r.isolation == isolation)
            .collect();
        group.sort_by_key(|r| r.threads);
        // Speedup is a closed-loop notion (throughput gained by adding
        // threads); open-loop rows are rate-limited by their schedule, so
        // they neither anchor the baseline nor get a speedup number.
        let base = group
            .iter()
            .find(|r| r.threads == 1 && r.offered_ops_per_sec.is_none())
            .map(|r| r.throughput());
        for r in group {
            let speedup = match base {
                Some(b) if b > 0.0 && r.offered_ops_per_sec.is_none() => {
                    format!("{:.2}x", r.throughput() / b)
                }
                _ => "-".to_string(),
            };
            let offered = match r.offered_ops_per_sec {
                Some(rate) => format!("{rate:.0}"),
                None => "-".to_string(),
            };
            let exemplar = if r.p99_exemplar == 0 {
                "-".to_string()
            } else {
                format!("{:#018x}", r.p99_exemplar)
            };
            out.push_str(&format!(
                "{:<36} {:>7} {:>12} {:>12.0} {:>12.0} {:>8} {:>10} {:>10} {:>10} {:>10} {:>9} {:>7} {:>7} {:>5} {:>5} {:>9} {:>9} {:>9} {:>18}\n",
                format!("{engine}/{mix}@{isolation}"),
                r.threads,
                offered,
                r.throughput(),
                r.read_throughput(),
                speedup,
                format_nanos(r.p50_nanos),
                format_nanos(r.p95_nanos),
                format_nanos(r.p99_nanos),
                format_nanos(r.max_nanos),
                format_nanos(r.lock_wait_per_op()),
                r.errors,
                r.shed,
                r.epoch_skew,
                r.txn_conflicts,
                format_nanos(r.exec_per_op()),
                format_nanos(r.snapshot_per_op()),
                format_nanos(r.wire_per_op()),
                exemplar
            ));
        }
    }
    out
}

/// Render the sweep as CSV (machine-readable companion).
pub fn scaling_to_csv(rows: &[ScalingRow]) -> String {
    // New columns ride at the end (phases, then the exemplar, then txn
    // conflicts) so older consumers keyed on column prefixes keep parsing.
    let mut out = String::from(
        "engine,mix,isolation,threads,ops,read_ops,errors,shed,epoch_skew,lock_wait_ms,wall_millis,offered_ops_s,throughput_ops_s,read_ops_s,p50_us,p95_us,p99_us,max_us,engine_exec_ms,snapshot_pin_ms,clone_publish_ms,wire_encode_ms,wire_io_ms,p99_exemplar,txn_conflicts\n",
    );
    for r in rows {
        let offered = match r.offered_ops_per_sec {
            Some(rate) => format!("{rate:.1}"),
            None => String::new(),
        };
        let exemplar = if r.p99_exemplar == 0 {
            String::new()
        } else {
            format!("{:#x}", r.p99_exemplar)
        };
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{:.3},{:.3},{},{:.1},{:.1},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{},{}\n",
            r.engine,
            r.mix,
            r.isolation,
            r.threads,
            r.ops,
            r.read_ops,
            r.errors,
            r.shed,
            r.epoch_skew,
            r.lock_wait_nanos as f64 / 1e6,
            r.wall_nanos as f64 / 1e6,
            offered,
            r.throughput(),
            r.read_throughput(),
            r.p50_nanos as f64 / 1e3,
            r.p95_nanos as f64 / 1e3,
            r.p99_nanos as f64 / 1e3,
            r.max_nanos as f64 / 1e3,
            r.engine_exec_nanos as f64 / 1e6,
            r.snapshot_pin_nanos as f64 / 1e6,
            r.clone_publish_nanos as f64 / 1e6,
            r.wire_encode_nanos as f64 / 1e6,
            r.wire_io_nanos as f64 / 1e6,
            exemplar,
            r.txn_conflicts,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{Measurement, Outcome, Report, RunMode};

    fn m(engine: &str, query: &str, outcome: Outcome, ms: f64) -> Measurement {
        Measurement {
            engine: engine.into(),
            dataset: "d".into(),
            query: query.into(),
            mode: RunMode::Isolation,
            outcome,
            nanos: (ms * 1e6) as u64,
            cardinality: None,
        }
    }

    #[test]
    fn fast_engine_gets_tick() {
        let mut rep = Report::default();
        rep.push(m("fast", "Q8", Outcome::Completed, 1.0));
        rep.push(m("slow", "Q8", Outcome::Completed, 100.0));
        rep.push(m("mid", "Q8", Outcome::Completed, 10.0));
        let s = derive(&rep);
        assert_eq!(s.cell("fast", "Graph Statistics"), Some(Cell::Good));
        assert_eq!(s.cell("slow", "Graph Statistics"), Some(Cell::Warn));
        assert_eq!(s.cell("mid", "Graph Statistics"), Some(Cell::Mid));
    }

    #[test]
    fn timeout_always_warns() {
        let mut rep = Report::default();
        rep.push(m("a", "Q9", Outcome::Completed, 1.0));
        rep.push(m("b", "Q9", Outcome::Timeout, 0.0));
        let s = derive(&rep);
        assert_eq!(s.cell("b", "Graph Statistics"), Some(Cell::Warn));
    }

    #[test]
    fn depth_instances_fold_into_bfs_group() {
        let mut rep = Report::default();
        rep.push(m("a", "Q32(d=2)", Outcome::Completed, 1.0));
        rep.push(m("a", "Q32(d=3)", Outcome::Completed, 2.0));
        rep.push(m("b", "Q32(d=2)", Outcome::Completed, 200.0));
        let s = derive(&rep);
        assert_eq!(s.cell("a", "BFS"), Some(Cell::Good));
        assert_eq!(s.cell("b", "BFS"), Some(Cell::Warn));
    }

    #[test]
    fn missing_data_marked() {
        let mut rep = Report::default();
        rep.push(m("a", "Q8", Outcome::Completed, 1.0));
        let s = derive(&rep);
        assert_eq!(s.cell("a", "Load"), Some(Cell::NoData));
    }

    #[test]
    fn render_contains_symbols() {
        let mut rep = Report::default();
        rep.push(m("a", "Q8", Outcome::Completed, 1.0));
        rep.push(m("b", "Q8", Outcome::Timeout, 0.0));
        let text = derive(&rep).render();
        assert!(text.contains('✓'));
        assert!(text.contains('⚠'));
        assert!(text.contains("engine"));
    }

    fn srow(engine: &str, threads: u32, ops: u64, wall_ms: u64) -> ScalingRow {
        ScalingRow {
            engine: engine.into(),
            mix: "mixed".into(),
            isolation: "locked".into(),
            threads,
            ops,
            read_ops: ops,
            errors: 0,
            shed: 0,
            epoch_skew: 0,
            txn_conflicts: 0,
            lock_wait_nanos: 0,
            engine_exec_nanos: 0,
            snapshot_pin_nanos: 0,
            clone_publish_nanos: 0,
            wire_encode_nanos: 0,
            wire_io_nanos: 0,
            offered_ops_per_sec: None,
            wall_nanos: wall_ms * 1_000_000,
            p50_nanos: 1_000,
            p95_nanos: 20_000,
            p99_nanos: 90_000,
            max_nanos: 15_000_000,
            p99_exemplar: 0,
        }
    }

    #[test]
    fn scaling_throughput_and_speedup() {
        let rows = vec![
            srow("linked(v1)", 1, 1_000, 100),
            srow("linked(v1)", 4, 3_000, 100),
        ];
        assert!((rows[0].throughput() - 10_000.0).abs() < 1e-6);
        let text = render_scaling(&rows);
        assert!(text.contains("linked(v1)/mixed@locked"), "{text}");
        assert!(
            text.contains("3.00x"),
            "4 threads at 3x throughput:\n{text}"
        );
        assert!(text.contains("1.0µs"), "p50 formatting:\n{text}");
        assert!(text.contains("20.0µs"), "p95 formatting:\n{text}");
        let csv = scaling_to_csv(&rows);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv
            .lines()
            .nth(1)
            .unwrap()
            .starts_with("linked(v1),mixed,locked,1,1000,1000,0,0,0,0.000,100.000,,"));
    }

    #[test]
    fn scaling_reports_lock_wait() {
        let mut contended = srow("linked(v1)", 4, 1_000, 100);
        contended.lock_wait_nanos = 2_000_000; // 2 ms over 1000 ops = 2 µs/op
        assert_eq!(contended.lock_wait_per_op(), 2_000);
        let text = render_scaling(&[contended.clone()]);
        assert!(text.contains("lockw/op"), "{text}");
        assert!(text.contains("2.0µs"), "per-op lock wait rendered:\n{text}");
        let csv = scaling_to_csv(&[contended]);
        assert!(csv.contains(",lock_wait_ms,"), "{csv}");
        assert!(
            csv.contains("linked(v1),mixed,locked,4,1000,1000,0,0,0,2.000,100.000,,"),
            "{csv}"
        );
        // No completed ops: the per-op average degrades to zero, not a panic.
        let mut empty = srow("x", 1, 0, 1);
        empty.lock_wait_nanos = 5;
        assert_eq!(empty.lock_wait_per_op(), 0);
    }

    #[test]
    fn scaling_reports_phase_breakdown() {
        let mut row = srow("linked(v1)", 4, 1_000, 100);
        row.lock_wait_nanos = 1_000_000;
        row.engine_exec_nanos = 4_000_000; // 4 µs/op
        row.snapshot_pin_nanos = 1_000_000;
        row.clone_publish_nanos = 1_000_000; // pin+clone = 2 µs/op
        row.wire_encode_nanos = 2_000_000;
        row.wire_io_nanos = 1_000_000; // wire = 3 µs/op
        assert_eq!(row.exec_per_op(), 4_000);
        assert_eq!(row.snapshot_per_op(), 2_000);
        assert_eq!(row.wire_per_op(), 3_000);
        assert_eq!(row.phase_total_nanos(), 10_000_000);
        let text = render_scaling(&[row.clone()]);
        for col in ["exec/op", "snap/op", "wire/op"] {
            assert!(text.contains(col), "missing column {col}:\n{text}");
        }
        assert!(text.contains("4.0µs"), "exec/op rendered:\n{text}");
        assert!(text.contains("3.0µs"), "wire/op rendered:\n{text}");
        let csv = scaling_to_csv(&[row]);
        let header = csv.lines().next().unwrap();
        assert!(
            header.ends_with(
                "engine_exec_ms,snapshot_pin_ms,clone_publish_ms,wire_encode_ms,wire_io_ms,p99_exemplar,txn_conflicts"
            ),
            "phase, exemplar, and txn columns ride at the end: {header}"
        );
        assert!(
            csv.lines()
                .nth(1)
                .unwrap()
                .ends_with("4.000,1.000,1.000,2.000,1.000,,0"),
            "{csv}"
        );
    }

    #[test]
    fn scaling_reports_p99_exemplar() {
        let mut traced = srow("linked(v1)", 4, 1_000, 100);
        traced.p99_exemplar = 0x1234_ABCD;
        let untraced = srow("linked(v1)", 1, 1_000, 100);
        let text = render_scaling(&[untraced.clone(), traced.clone()]);
        assert!(text.contains("p99_exemplar"), "{text}");
        assert!(
            text.contains("0x000000001234abcd"),
            "exemplar rendered as a full-width trace id:\n{text}"
        );
        // The untraced row renders a dash, not a zero id.
        assert!(
            text.lines()
                .any(|l| l.contains("mixed@locked") && l.trim_end().ends_with('-')),
            "untraced row ends in a dash:\n{text}"
        );
        let csv = scaling_to_csv(&[untraced, traced]);
        assert!(csv
            .lines()
            .next()
            .unwrap()
            .ends_with(",p99_exemplar,txn_conflicts"));
        assert!(csv.contains(",0x1234abcd,0\n"), "{csv}");
        // Untraced rows leave the exemplar column empty.
        assert!(csv.lines().nth(1).unwrap().ends_with("0.000,,0"), "{csv}");
    }

    #[test]
    fn scaling_reports_txn_conflicts() {
        let mut row = srow("linked(v1)", 4, 1_000, 100);
        row.isolation = "snapshot-cow+txn".into();
        row.txn_conflicts = 7;
        let text = render_scaling(&[row.clone()]);
        assert!(text.contains("txnc"), "{text}");
        assert!(text.contains("linked(v1)/mixed@snapshot-cow+txn"), "{text}");
        let csv = scaling_to_csv(&[row]);
        assert!(csv.lines().next().unwrap().ends_with(",txn_conflicts"));
        assert!(csv.lines().nth(1).unwrap().ends_with(",7"), "{csv}");
    }

    #[test]
    fn scaling_groups_by_isolation_and_reports_skew() {
        let locked = srow("linked(v1)", 4, 2_000, 100);
        let mut snap = srow("linked(v1)", 4, 6_000, 100);
        snap.isolation = "snapshot-cow".into();
        snap.epoch_skew = 3;
        let text = render_scaling(&[locked.clone(), snap.clone()]);
        // Same engine/mix, two isolation sections — the comparison column.
        assert!(text.contains("linked(v1)/mixed@locked"), "{text}");
        assert!(text.contains("linked(v1)/mixed@snapshot-cow"), "{text}");
        assert!(text.contains("skew"), "{text}");
        let csv = scaling_to_csv(&[locked, snap]);
        assert!(
            csv.starts_with("engine,mix,isolation,threads,ops,read_ops,errors,shed,epoch_skew,")
        );
        assert!(
            csv.contains("linked(v1),mixed,snapshot-cow,4,6000,6000,0,0,3,"),
            "{csv}"
        );
    }

    #[test]
    fn scaling_reports_shed_and_offered_rate() {
        let mut over = srow("linked(v1)", 4, 800, 100);
        over.errors = 10;
        over.shed = 190;
        over.offered_ops_per_sec = Some(40_000.0);
        let rows = vec![srow("linked(v1)", 1, 1_000, 100), over];
        assert!((rows[1].shed_fraction() - 0.19).abs() < 1e-9);
        let text = render_scaling(&rows);
        assert!(text.contains("offered/s"), "{text}");
        assert!(text.contains("shed"), "{text}");
        assert!(text.contains("40000"), "offered rate rendered:\n{text}");
        assert!(text.contains("190"), "shed count rendered:\n{text}");
        // Speedup is a closed-loop notion: the open-loop row's speedup
        // column (5th) shows "-" even though a 1-thread baseline exists.
        let over_line = text
            .lines()
            .find(|l| l.contains("40000"))
            .expect("overload row rendered");
        let fields: Vec<&str> = over_line.split_whitespace().collect();
        assert_eq!(fields[5], "-", "open-loop rows get no speedup: {over_line}");
        let csv = scaling_to_csv(&rows);
        assert!(
            csv.starts_with(
                "engine,mix,isolation,threads,ops,read_ops,errors,shed,epoch_skew,lock_wait_ms,wall_millis,offered_ops_s,"
            ),
            "{csv}"
        );
        // Closed-loop rows leave the offered column empty; open-loop rows
        // carry rate and shed.
        assert!(
            csv.contains("linked(v1),mixed,locked,1,1000,1000,0,0,0,0.000,100.000,,"),
            "{csv}"
        );
        assert!(
            csv.contains("linked(v1),mixed,locked,4,800,800,10,190,0,0.000,100.000,40000.0,"),
            "{csv}"
        );
    }

    #[test]
    fn scaling_zero_wall_is_safe() {
        let mut r = srow("x", 1, 10, 0);
        r.wall_nanos = 0;
        assert_eq!(r.throughput(), 0.0);
    }

    #[test]
    fn groups_cover_all_queries() {
        // Every Q2..Q35 falls in exactly one group.
        for q in 2..=35 {
            let name = format!("Q{q}");
            let hits = GROUPS
                .iter()
                .filter(|(_, qs)| qs.contains(&name.as_str()))
                .count();
            assert_eq!(hits, 1, "{name} must be in exactly one group");
        }
    }
}
