//! Deterministic workload parameter selection.
//!
//! §5: "Any random selection made in one system (e.g., a random selection of
//! a node in order to query it) has been maintained the same across the
//! other systems." A [`Workload`] picks canonical elements once per
//! (dataset, seed); [`Workload::resolve`] maps them to engine-internal ids
//! **outside the timed region**, as §4.2 prescribes ("the lookup for the
//! object is performed before the time is measured").

use gm_model::{Dataset, Eid, GdbResult, GraphSnapshot, Props, Value, Vid};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Canonical (engine-independent) workload parameters for one dataset.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Dataset name these parameters were drawn for.
    pub dataset: String,
    /// Seed used.
    pub seed: u64,
    /// A vertex with at least one edge (traversal anchor).
    pub vertex: u64,
    /// A second vertex for shortest paths (same component when possible).
    pub vertex2: u64,
    /// A random edge.
    pub edge: u64,
    /// Endpoint pairs for Q3/Q4/Q7 insertions.
    pub pairs: Vec<(u64, u64)>,
    /// Victim vertices for Q18 (modest degree, so deletion cost is typical).
    pub delete_vertices: Vec<u64>,
    /// Victim edges for Q19.
    pub delete_edges: Vec<u64>,
    /// Vertices whose property is removed by Q20.
    pub prop_victims: Vec<u64>,
    /// Edges whose property is updated/removed by Q17/Q21.
    pub edge_prop_victims: Vec<u64>,
    /// Property (name, value) for Q11 — guaranteed to exist on `vertex`.
    pub vertex_prop: (String, Value),
    /// Property (name, value) for Q12 (edge search).
    pub edge_prop: (String, Value),
    /// Label for Q13 (an existing edge label).
    pub edge_label: String,
    /// Label for Q24/Q33 — guaranteed incident to `vertex`.
    pub vertex_edge_label: String,
    /// Label for Q35 (frequent label → the path search does real work).
    pub path_label: String,
    /// Degree threshold k for Q28–Q30 (≈ average degree).
    pub k: u64,
    /// Fan-out of Q7.
    pub fanout: u32,
    /// Properties for the Q2 payload.
    pub new_vertex_props: Props,
    /// Properties for the Q4 payload.
    pub new_edge_props: Props,
}

impl Workload {
    /// Draw workload parameters for a dataset.
    ///
    /// `slots` bounds how many victims/pairs are pre-drawn, and therefore
    /// how many batched mutation rounds a run may use.
    pub fn choose(data: &Dataset, seed: u64, slots: usize) -> Workload {
        assert!(
            data.vertex_count() >= 8 && data.edge_count() >= 4,
            "workload needs a non-trivial dataset"
        );
        let mut rng = StdRng::seed_from_u64(seed ^ 0x006d_6b77_u64);
        let degrees = data.degrees();
        let n = data.vertex_count() as u64;
        let m = data.edge_count() as u64;

        // Anchor vertex: a random member of the **largest connected
        // component** with degree ≥ 2 when one exists. Fragmented datasets
        // (the Freebase samples) would otherwise hand the traversal queries
        // a 3-vertex islet and measure nothing, while the paper's BFS and
        // shortest-path runs clearly do real work (Figures 6–7).
        let adj = data.undirected_adjacency();
        let component_of = components_of(&adj);
        let giant = largest_component(&component_of);
        let candidates: Vec<u64> = (0..n)
            .filter(|&v| component_of[v as usize] == giant && degrees[v as usize].total() >= 2)
            .collect();
        let pick_connected = |rng: &mut StdRng| -> u64 {
            loop {
                let v = rng.gen_range(0..n);
                if degrees[v as usize].total() >= 1 {
                    return v;
                }
            }
        };
        let vertex = if candidates.is_empty() {
            pick_connected(&mut rng)
        } else {
            candidates[rng.gen_range(0..candidates.len())]
        };
        // vertex2: prefer a vertex in the same component (walk a few random
        // hops from `vertex`), else any connected vertex.
        let adj = data.undirected_adjacency();
        let mut vertex2 = vertex;
        let mut cur = vertex as usize;
        for _ in 0..6 {
            let neigh = adj.neighbors(cur);
            if neigh.is_empty() {
                break;
            }
            cur = neigh[rng.gen_range(0..neigh.len())] as usize;
            if cur as u64 != vertex {
                vertex2 = cur as u64;
            }
        }
        if vertex2 == vertex {
            vertex2 = pick_connected(&mut rng);
        }

        // vertex2 fallback: prefer another giant-component member so the
        // shortest-path queries usually find a path.
        if vertex2 == vertex && candidates.len() > 1 {
            loop {
                let v = candidates[rng.gen_range(0..candidates.len())];
                if v != vertex {
                    vertex2 = v;
                    break;
                }
            }
        }

        let edge = rng.gen_range(0..m);

        let mut pairs = Vec::with_capacity(slots * 8);
        for _ in 0..slots * 8 {
            pairs.push((rng.gen_range(0..n), rng.gen_range(0..n)));
        }

        // Delete victims: distinct, modest degree (≤ 4× average) so one Q18
        // sample is representative, as in the paper's victim choice.
        let avg_degree = (2.0 * m as f64 / n as f64).max(1.0);
        let mut delete_vertices = Vec::with_capacity(slots);
        let mut tries = 0;
        while delete_vertices.len() < slots && tries < slots * 200 {
            tries += 1;
            let v = rng.gen_range(0..n);
            if degrees[v as usize].total() as f64 <= 4.0 * avg_degree
                && !delete_vertices.contains(&v)
                && v != vertex
                && v != vertex2
            {
                delete_vertices.push(v);
            }
        }
        let mut delete_edges = Vec::with_capacity(slots);
        while delete_edges.len() < slots {
            let e = rng.gen_range(0..m);
            if !delete_edges.contains(&e) {
                delete_edges.push(e);
            }
        }
        let mut prop_victims = Vec::with_capacity(slots);
        while prop_victims.len() < slots {
            let v = rng.gen_range(0..n);
            if !data.vertices[v as usize].props.is_empty()
                && !prop_victims.contains(&v)
                && !delete_vertices.contains(&v)
            {
                prop_victims.push(v);
            }
        }
        let mut edge_prop_victims = Vec::with_capacity(slots);
        while edge_prop_victims.len() < slots {
            let e = rng.gen_range(0..m);
            if !edge_prop_victims.contains(&e) && !delete_edges.contains(&e) {
                edge_prop_victims.push(e);
            }
        }

        // Q11 property: one that exists on the anchor vertex.
        let vprops = &data.vertices[vertex as usize].props;
        let vertex_prop = vprops[rng.gen_range(0..vprops.len())].clone();
        // Q12 property: from any edge with properties (LDBC). On the
        // property-less datasets the probe uses a *known* property name with
        // a never-matching value, so engines that must scan edges to answer
        // still scan — only designs with per-property edge metadata may
        // short-circuit, which is their legitimate physical advantage.
        let edge_prop = data
            .edges
            .iter()
            .filter(|e| !e.props.is_empty())
            .nth(rng.gen_range(0..64.min(m as usize)))
            .or_else(|| data.edges.iter().find(|e| !e.props.is_empty()))
            .map(|e| e.props[0].clone())
            .unwrap_or((vertex_prop.0.clone(), Value::Str("\u{0}never".into())));

        let edge_label = data.edges[rng.gen_range(0..m) as usize].label.clone();
        // A label incident to the anchor vertex.
        let vertex_edge_label = data
            .edges
            .iter()
            .find(|e| e.src == vertex || e.dst == vertex)
            .map(|e| e.label.clone())
            .unwrap_or_else(|| edge_label.clone());
        // Path label: the most frequent label (so labeled SP does real work;
        // on Freebase samples rare labels stop after 1 hop — §6.4).
        let mut label_counts: std::collections::HashMap<&str, u64> =
            std::collections::HashMap::new();
        for e in &data.edges {
            *label_counts.entry(e.label.as_str()).or_default() += 1;
        }
        let path_label = label_counts
            .iter()
            .max_by_key(|(l, c)| (**c, std::cmp::Reverse(**l)))
            .map(|(l, _)| l.to_string())
            .unwrap_or_else(|| edge_label.clone());

        Workload {
            dataset: data.name.clone(),
            seed,
            vertex,
            vertex2,
            edge,
            pairs,
            delete_vertices,
            delete_edges,
            prop_victims,
            edge_prop_victims,
            vertex_prop,
            edge_prop,
            edge_label,
            vertex_edge_label,
            path_label,
            k: avg_degree.ceil() as u64,
            fanout: 8,
            new_vertex_props: vec![
                ("name".into(), Value::Str("bench-vertex".into())),
                ("score".into(), Value::Int(42)),
                ("active".into(), Value::Bool(true)),
            ],
            new_edge_props: vec![("weight".into(), Value::Float(0.5))],
        }
    }

    /// Resolve canonical picks to engine-internal ids (untimed).
    pub fn resolve(&self, db: &dyn GraphSnapshot) -> GdbResult<ResolvedParams> {
        let rv = |c: u64| {
            db.resolve_vertex(c)
                .ok_or(gm_model::GdbError::VertexNotFound(c))
        };
        let re = |c: u64| {
            db.resolve_edge(c)
                .ok_or(gm_model::GdbError::EdgeNotFound(c))
        };
        Ok(ResolvedParams {
            vertex: rv(self.vertex)?,
            vertex2: rv(self.vertex2)?,
            edge: re(self.edge)?,
            pairs: self
                .pairs
                .iter()
                .map(|(a, b)| Ok((rv(*a)?, rv(*b)?)))
                .collect::<GdbResult<Vec<_>>>()?,
            delete_vertices: self
                .delete_vertices
                .iter()
                .map(|v| rv(*v))
                .collect::<GdbResult<Vec<_>>>()?,
            delete_edges: self
                .delete_edges
                .iter()
                .map(|e| re(*e))
                .collect::<GdbResult<Vec<_>>>()?,
            prop_victims: self
                .prop_victims
                .iter()
                .map(|v| rv(*v))
                .collect::<GdbResult<Vec<_>>>()?,
            edge_prop_victims: self
                .edge_prop_victims
                .iter()
                .map(|e| re(*e))
                .collect::<GdbResult<Vec<_>>>()?,
            vertex_prop_name: self.vertex_prop.0.clone(),
            vertex_prop_value: self.vertex_prop.1.clone(),
            edge_prop_name: self.edge_prop.0.clone(),
            edge_prop_value: self.edge_prop.1.clone(),
            edge_label: self.edge_label.clone(),
            vertex_edge_label: self.vertex_edge_label.clone(),
            path_label: self.path_label.clone(),
            existing_vertex_prop: self.vertex_prop.0.clone(),
            update_edge_prop: self.edge_prop.0.clone(),
            k: self.k,
            fanout: self.fanout,
            new_vertex_props: self.new_vertex_props.clone(),
            new_edge_props: self.new_edge_props.clone(),
        })
    }
}

/// Connected components by index over the undirected adjacency.
fn components_of(adj: &gm_model::dataset::Adjacency) -> Vec<u32> {
    let n = adj.len();
    let mut comp = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut stack = Vec::new();
    for start in 0..n {
        if comp[start] != u32::MAX {
            continue;
        }
        comp[start] = next;
        stack.push(start as u32);
        while let Some(v) = stack.pop() {
            for &t in adj.neighbors(v as usize) {
                if comp[t as usize] == u32::MAX {
                    comp[t as usize] = next;
                    stack.push(t);
                }
            }
        }
        next += 1;
    }
    comp
}

/// Id of the largest component in a component assignment.
fn largest_component(component_of: &[u32]) -> u32 {
    let mut counts: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
    for &c in component_of {
        *counts.entry(c).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .max_by_key(|(c, n)| (*n, std::cmp::Reverse(*c)))
        .map(|(c, _)| c)
        .unwrap_or(0)
}

/// Engine-resolved parameters handed to [`catalog::execute`](crate::catalog::execute).
#[derive(Debug, Clone)]
pub struct ResolvedParams {
    /// Traversal anchor.
    pub vertex: Vid,
    /// Shortest-path target.
    pub vertex2: Vid,
    /// Q15/Q17/Q21 edge.
    pub edge: Eid,
    /// Q3/Q4/Q7 endpoint pairs.
    pub pairs: Vec<(Vid, Vid)>,
    /// Q18 victims.
    pub delete_vertices: Vec<Vid>,
    /// Q19 victims.
    pub delete_edges: Vec<Eid>,
    /// Q20 victims.
    pub prop_victims: Vec<Vid>,
    /// Q17/Q21 victims.
    pub edge_prop_victims: Vec<Eid>,
    /// Q11 search name.
    pub vertex_prop_name: String,
    /// Q11 search value.
    pub vertex_prop_value: Value,
    /// Q12 search name.
    pub edge_prop_name: String,
    /// Q12 search value.
    pub edge_prop_value: Value,
    /// Q13 label.
    pub edge_label: String,
    /// Q24/Q33 label.
    pub vertex_edge_label: String,
    /// Q35 label.
    pub path_label: String,
    /// Q16/Q20 property name.
    pub existing_vertex_prop: String,
    /// Q17/Q21 property name.
    pub update_edge_prop: String,
    /// Q28–Q30 threshold.
    pub k: u64,
    /// Q7 fan-out.
    pub fanout: u32,
    /// Q2 payload.
    pub new_vertex_props: Props,
    /// Q4 payload.
    pub new_edge_props: Props,
}

impl ResolvedParams {
    /// Endpoint pair for mutation round `round` (wraps around).
    pub fn pair(&self, round: usize) -> (Vid, Vid) {
        self.pairs[round % self.pairs.len()]
    }

    /// Q18 victim for round `round` (no wrap: panics past the pool — the
    /// runner sizes the pool to the batch length).
    pub fn delete_vertex(&self, round: usize) -> Vid {
        self.delete_vertices[round % self.delete_vertices.len()]
    }

    /// Q19 victim for round `round`.
    pub fn delete_edge(&self, round: usize) -> Eid {
        self.delete_edges[round % self.delete_edges.len()]
    }

    /// Q20 victim.
    pub fn prop_victim(&self, round: usize) -> Vid {
        self.prop_victims[round % self.prop_victims.len()]
    }

    /// Q21 victim.
    pub fn edge_prop_victim(&self, round: usize) -> Eid {
        self.edge_prop_victims[round % self.edge_prop_victims.len()]
    }

    /// A property name unique per round (Q5/Q6 insert *new* properties).
    pub fn fresh_prop(&self, round: usize) -> String {
        format!("bench_p{round}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_model::testkit;

    #[test]
    fn deterministic_choice() {
        let d = testkit::chain_dataset(100);
        let a = Workload::choose(&d, 5, 4);
        let b = Workload::choose(&d, 5, 4);
        assert_eq!(a.vertex, b.vertex);
        assert_eq!(a.delete_vertices, b.delete_vertices);
        let c = Workload::choose(&d, 6, 4);
        // Different seeds virtually always pick different anchors on 100
        // vertices; tolerate equality of a single field but not all.
        assert!(a.vertex != c.vertex || a.edge != c.edge || a.delete_vertices != c.delete_vertices);
    }

    #[test]
    fn anchor_has_edges_and_prop_exists() {
        let d = testkit::chain_dataset(50);
        let w = Workload::choose(&d, 1, 4);
        let deg = d.degrees()[w.vertex as usize];
        assert!(deg.total() >= 1);
        assert!(d.vertices[w.vertex as usize]
            .props
            .iter()
            .any(|(n, v)| *n == w.vertex_prop.0 && *v == w.vertex_prop.1));
    }

    #[test]
    fn victims_are_distinct() {
        let d = testkit::chain_dataset(200);
        let w = Workload::choose(&d, 2, 10);
        let mut dv = w.delete_vertices.clone();
        dv.sort_unstable();
        dv.dedup();
        assert_eq!(dv.len(), 10);
        assert!(!dv.contains(&w.vertex), "anchor never deleted");
    }

    #[test]
    fn resolves_against_engine() {
        use engine_linked::LinkedGraph;
        use gm_model::api::{GraphDb, LoadOptions};
        let d = testkit::chain_dataset(60);
        let w = Workload::choose(&d, 3, 4);
        let mut g = LinkedGraph::v1();
        g.bulk_load(&d, &LoadOptions::default()).unwrap();
        let r = w.resolve(&g).unwrap();
        assert_eq!(r.pairs.len(), 32);
        assert_eq!(r.delete_vertices.len(), 4);
        assert_eq!(r.fanout, 8);
    }

    #[test]
    fn path_label_is_most_frequent() {
        let d = testkit::chain_dataset(102);
        let w = Workload::choose(&d, 4, 4);
        // 101 edges: even indices get label "next" (51 of 101).
        assert_eq!(w.path_label, "next");
    }
}
