//! The 35 microbenchmark queries of Table 2.
//!
//! Each query has an id, a category (L/C/R/U/D/T), the Gremlin 2.6 text the
//! paper lists, and an executor that decomposes it into `GraphDb` primitive
//! calls — the same decomposition a Gremlin adapter performs.

use gm_model::api::Direction;
use gm_model::{GdbResult, GraphDb, GraphSnapshot, QueryCtx, Value};
use gm_traversal::algo;

use crate::params::ResolvedParams;

/// Query categories of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Load (Q1).
    Load,
    /// Create (Q2–Q7).
    Create,
    /// Read (Q8–Q15).
    Read,
    /// Update (Q16–Q17).
    Update,
    /// Delete (Q18–Q21).
    Delete,
    /// Traversal (Q22–Q35).
    Traversal,
}

impl Category {
    /// Single-letter tag used in Table 2 and Table 4.
    pub fn tag(&self) -> char {
        match self {
            Category::Load => 'L',
            Category::Create => 'C',
            Category::Read => 'R',
            Category::Update => 'U',
            Category::Delete => 'D',
            Category::Traversal => 'T',
        }
    }
}

/// The 35 query classes. Q1 (load) is measured by the runner's load path,
/// not through `execute`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum QueryId {
    Q1,
    Q2,
    Q3,
    Q4,
    Q5,
    Q6,
    Q7,
    Q8,
    Q9,
    Q10,
    Q11,
    Q12,
    Q13,
    Q14,
    Q15,
    Q16,
    Q17,
    Q18,
    Q19,
    Q20,
    Q21,
    Q22,
    Q23,
    Q24,
    Q25,
    Q26,
    Q27,
    Q28,
    Q29,
    Q30,
    Q31,
    Q32,
    Q33,
    Q34,
    Q35,
}

impl QueryId {
    /// All queries in Table 2 order.
    pub const ALL: [QueryId; 35] = [
        QueryId::Q1,
        QueryId::Q2,
        QueryId::Q3,
        QueryId::Q4,
        QueryId::Q5,
        QueryId::Q6,
        QueryId::Q7,
        QueryId::Q8,
        QueryId::Q9,
        QueryId::Q10,
        QueryId::Q11,
        QueryId::Q12,
        QueryId::Q13,
        QueryId::Q14,
        QueryId::Q15,
        QueryId::Q16,
        QueryId::Q17,
        QueryId::Q18,
        QueryId::Q19,
        QueryId::Q20,
        QueryId::Q21,
        QueryId::Q22,
        QueryId::Q23,
        QueryId::Q24,
        QueryId::Q25,
        QueryId::Q26,
        QueryId::Q27,
        QueryId::Q28,
        QueryId::Q29,
        QueryId::Q30,
        QueryId::Q31,
        QueryId::Q32,
        QueryId::Q33,
        QueryId::Q34,
        QueryId::Q35,
    ];

    /// Table 2 number (1–35).
    pub fn number(&self) -> u8 {
        Self::ALL.iter().position(|q| q == self).expect("in ALL") as u8 + 1
    }

    /// Category of this query.
    pub fn category(&self) -> Category {
        use QueryId::*;
        match self {
            Q1 => Category::Load,
            Q2 | Q3 | Q4 | Q5 | Q6 | Q7 => Category::Create,
            Q8 | Q9 | Q10 | Q11 | Q12 | Q13 | Q14 | Q15 => Category::Read,
            Q16 | Q17 => Category::Update,
            Q18 | Q19 | Q20 | Q21 => Category::Delete,
            _ => Category::Traversal,
        }
    }

    /// True when execution mutates the graph (the runner reloads state
    /// around these to preserve the paper's isolation guarantee).
    pub fn is_mutation(&self) -> bool {
        matches!(
            self.category(),
            Category::Create | Category::Update | Category::Delete
        )
    }

    /// The Gremlin 2.6 text of Table 2.
    pub fn gremlin(&self) -> &'static str {
        use QueryId::*;
        match self {
            Q1 => "g.loadGraphSON(\"/path\")",
            Q2 => "g.addVertex(p[])",
            Q3 => "g.addEdge(v1, v2, l)",
            Q4 => "g.addEdge(v1, v2, l, p[])",
            Q5 => "v.setProperty(Name, Value)",
            Q6 => "e.setProperty(Name, Value)",
            Q7 => "g.addVertex(...); g.addEdge(...)",
            Q8 => "g.V.count()",
            Q9 => "g.E.count()",
            Q10 => "g.E.label.dedup()",
            Q11 => "g.V.has(Name, Value)",
            Q12 => "g.E.has(Name, Value)",
            Q13 => "g.E.has('label', l)",
            Q14 => "g.V(id)",
            Q15 => "g.E(id)",
            Q16 => "v.setProperty(Name, Value)",
            Q17 => "e.setProperty(Name, Value)",
            Q18 => "g.removeVertex(id)",
            Q19 => "g.removeEdge(id)",
            Q20 => "v.removeProperty(Name)",
            Q21 => "e.removeProperty(Name)",
            Q22 => "v.in()",
            Q23 => "v.out()",
            Q24 => "v.both('l')",
            Q25 => "v.inE.label.dedup()",
            Q26 => "v.outE.label.dedup()",
            Q27 => "v.bothE.label.dedup()",
            Q28 => "g.V.filter{it.inE.count()>=k}",
            Q29 => "g.V.filter{it.outE.count()>=k}",
            Q30 => "g.V.filter{it.bothE.count()>=k}",
            Q31 => "g.V.out.dedup()",
            Q32 => "v.as('i').both().except(vs).store(j).loop('i')",
            Q33 => "v.as('i').both(*ls).except(j).store(vs).loop('i')",
            Q34 => "v1.as('i').both().except(j).store(j).loop('i'){..}.retain([v2]).path()",
            Q35 => "Shortest Path on 'l'",
        }
    }

    /// Short description (Table 2's Description column).
    pub fn description(&self) -> &'static str {
        use QueryId::*;
        match self {
            Q1 => "Load dataset into the graph",
            Q2 => "Create new node with properties",
            Q3 => "Add edge from v1 to v2",
            Q4 => "Add edge with properties",
            Q5 => "Add property to node",
            Q6 => "Add property to edge",
            Q7 => "Add a new node, and then edges to it",
            Q8 => "Total number of nodes",
            Q9 => "Total number of edges",
            Q10 => "Existing edge labels (no duplicates)",
            Q11 => "Nodes with property Name=Value",
            Q12 => "Edges with property Name=Value",
            Q13 => "Edges with label l",
            Q14 => "The node with identifier id",
            Q15 => "The edge with identifier id",
            Q16 => "Update property Name for vertex",
            Q17 => "Update property Name for edge",
            Q18 => "Delete node identified by id",
            Q19 => "Delete edge identified by id",
            Q20 => "Remove node property",
            Q21 => "Remove edge property",
            Q22 => "Nodes adjacent via incoming edges",
            Q23 => "Nodes adjacent via outgoing edges",
            Q24 => "Nodes adjacent via edges labeled l",
            Q25 => "Labels of incoming edges (no dupl.)",
            Q26 => "Labels of outgoing edges (no dupl.)",
            Q27 => "Labels of edges (no dupl.)",
            Q28 => "Nodes of at least k-incoming-degree",
            Q29 => "Nodes of at least k-outgoing-degree",
            Q30 => "Nodes of at least k-degree",
            Q31 => "Nodes having an incoming edge",
            Q32 => "Breadth-first traversal from v",
            Q33 => "Breadth-first traversal on labels ls",
            Q34 => "Unweighted shortest path v1 to v2",
            Q35 => "Shortest path following label l",
        }
    }
}

/// A concrete, runnable instance of a query: id plus swept parameters
/// (BFS depth for Q32/Q33; degree threshold k for Q28–Q30).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueryInstance {
    /// The query class.
    pub id: QueryId,
    /// BFS depth (Q32/Q33).
    pub depth: Option<u8>,
    /// Degree threshold (Q28–Q30).
    pub k: Option<u64>,
}

impl QueryInstance {
    /// Plain instance without swept parameters.
    pub fn plain(id: QueryId) -> Self {
        QueryInstance {
            id,
            depth: None,
            k: None,
        }
    }

    /// Display name, e.g. `"Q32(d=3)"`.
    pub fn name(&self) -> String {
        match (self.depth, self.k) {
            (Some(d), _) => format!("Q{}(d={d})", self.id.number()),
            (_, Some(k)) => format!("Q{}(k={k})", self.id.number()),
            _ => format!("Q{}", self.id.number()),
        }
    }

    /// The full instance list the paper sweeps: every query, Q28–Q30 at the
    /// workload's k, Q32/Q33 at depths 2–5 (the "about 70 different tests"
    /// of §1 together with single/batch modes).
    pub fn full_suite(k: u64) -> Vec<QueryInstance> {
        let mut out = Vec::new();
        for id in QueryId::ALL {
            match id {
                QueryId::Q1 => {} // measured by the load path
                QueryId::Q28 | QueryId::Q29 | QueryId::Q30 => out.push(QueryInstance {
                    id,
                    depth: None,
                    k: Some(k),
                }),
                QueryId::Q32 | QueryId::Q33 => {
                    for d in 2..=5u8 {
                        out.push(QueryInstance {
                            id,
                            depth: Some(d),
                            k: None,
                        });
                    }
                }
                _ => out.push(QueryInstance::plain(id)),
            }
        }
        out
    }
}

/// Execute a query instance against an engine. Returns the result
/// cardinality (used for cross-engine equivalence checking).
///
/// Mutating queries consume one victim/payload slot from `params` according
/// to `round` so batch executions touch distinct elements. Read-only
/// queries delegate to [`execute_read`], which needs only a
/// `&dyn GraphSnapshot` — the split is what lets the concurrent workload
/// driver (`gm-workload`) run reads against a pinned snapshot (or under a
/// shared lock) while writes take the exclusive path.
pub fn execute(
    inst: &QueryInstance,
    db: &mut dyn GraphDb,
    params: &ResolvedParams,
    round: usize,
    ctx: &QueryCtx,
) -> GdbResult<u64> {
    use QueryId::*;
    if !inst.id.is_mutation() {
        return execute_read(inst, &*db, params, ctx);
    }
    let p = params;
    match inst.id {
        Q2 => {
            db.add_vertex("bench_node", &p.new_vertex_props)?;
            Ok(1)
        }
        Q3 => {
            db.add_edge(p.pair(round).0, p.pair(round).1, "bench_edge", &vec![])?;
            Ok(1)
        }
        Q4 => {
            db.add_edge(
                p.pair(round).0,
                p.pair(round).1,
                "bench_edge_p",
                &p.new_edge_props,
            )?;
            Ok(1)
        }
        Q5 => {
            db.set_vertex_property(p.vertex, &p.fresh_prop(round), Value::Int(round as i64))?;
            Ok(1)
        }
        Q6 => {
            db.set_edge_property(p.edge, &p.fresh_prop(round), Value::Int(round as i64))?;
            Ok(1)
        }
        Q7 => {
            let v = db.add_vertex("bench_hub", &p.new_vertex_props)?;
            for i in 0..p.fanout {
                let (_, dst) = p.pair(round * p.fanout as usize + i as usize);
                db.add_edge(v, dst, "bench_fan", &vec![])?;
            }
            Ok(1 + p.fanout as u64)
        }
        Q16 => {
            db.set_vertex_property(
                p.vertex,
                &p.existing_vertex_prop,
                Value::Int(1000 + round as i64),
            )?;
            Ok(1)
        }
        Q17 => {
            db.set_edge_property(p.edge, &p.update_edge_prop, Value::Int(2000 + round as i64))?;
            Ok(1)
        }
        Q18 => {
            db.remove_vertex(p.delete_vertex(round))?;
            Ok(1)
        }
        Q19 => {
            db.remove_edge(p.delete_edge(round))?;
            Ok(1)
        }
        Q20 => Ok(db
            .remove_vertex_property(p.prop_victim(round), &p.existing_vertex_prop)?
            .map(|_| 1)
            .unwrap_or(0)),
        Q21 => Ok(db
            .remove_edge_property(p.edge_prop_victim(round), &p.update_edge_prop)?
            .map(|_| 1)
            .unwrap_or(0)),
        _ => unreachable!("non-mutating query handled by execute_read"),
    }
}

/// Execute a **read-only** query instance through `&dyn GraphSnapshot`.
///
/// Covers Q1 (a no-op here; the load path measures it), the read queries
/// Q8–Q15, and the traversals Q22–Q35. Panics on mutating query ids —
/// callers route those through [`execute`]. Accepting the read-only trait
/// means the same decomposition runs against a live engine (upcast from
/// `&dyn GraphDb`), a pinned `gm-mvcc` epoch snapshot, or a remote proxy.
pub fn execute_read(
    inst: &QueryInstance,
    db: &dyn GraphSnapshot,
    params: &ResolvedParams,
    ctx: &QueryCtx,
) -> GdbResult<u64> {
    use QueryId::*;
    let p = params;
    match inst.id {
        Q1 => Ok(0), // handled by Runner::measure_load
        Q8 => db.vertex_count(ctx),
        Q9 => db.edge_count(ctx),
        Q10 => Ok(db.edge_label_set(ctx)?.len() as u64),
        Q11 => Ok(db
            .vertices_with_property(&p.vertex_prop_name, &p.vertex_prop_value, ctx)?
            .len() as u64),
        Q12 => Ok(db
            .edges_with_property(&p.edge_prop_name, &p.edge_prop_value, ctx)?
            .len() as u64),
        Q13 => Ok(db.edges_with_label(&p.edge_label, ctx)?.len() as u64),
        Q14 => Ok(db.vertex(p.vertex)?.map(|_| 1).unwrap_or(0)),
        Q15 => Ok(db.edge(p.edge)?.map(|_| 1).unwrap_or(0)),
        Q22 => Ok(db.neighbors(p.vertex, Direction::In, None, ctx)?.len() as u64),
        Q23 => Ok(db.neighbors(p.vertex, Direction::Out, None, ctx)?.len() as u64),
        Q24 => Ok(db
            .neighbors(p.vertex, Direction::Both, Some(&p.vertex_edge_label), ctx)?
            .len() as u64),
        Q25 => Ok(db.vertex_edge_labels(p.vertex, Direction::In, ctx)?.len() as u64),
        Q26 => Ok(db.vertex_edge_labels(p.vertex, Direction::Out, ctx)?.len() as u64),
        Q27 => Ok(db.vertex_edge_labels(p.vertex, Direction::Both, ctx)?.len() as u64),
        Q28 => Ok(db
            .degree_scan(Direction::In, inst.k.unwrap_or(p.k), ctx)?
            .len() as u64),
        Q29 => Ok(db
            .degree_scan(Direction::Out, inst.k.unwrap_or(p.k), ctx)?
            .len() as u64),
        Q30 => Ok(db
            .degree_scan(Direction::Both, inst.k.unwrap_or(p.k), ctx)?
            .len() as u64),
        Q31 => Ok(db.distinct_neighbor_scan(Direction::Out, ctx)?.len() as u64),
        Q32 => {
            Ok(algo::bfs(db, p.vertex, inst.depth.unwrap_or(3) as usize, None, ctx)?.len() as u64)
        }
        Q33 => Ok(algo::bfs(
            db,
            p.vertex,
            inst.depth.unwrap_or(3) as usize,
            Some(&p.vertex_edge_label),
            ctx,
        )?
        .len() as u64),
        Q34 => Ok(algo::shortest_path(db, p.vertex, p.vertex2, None, ctx)?
            .map(|r| r.path.len() as u64)
            .unwrap_or(0)),
        Q35 => Ok(
            algo::shortest_path(db, p.vertex, p.vertex2, Some(&p.path_label), ctx)?
                .map(|r| r.path.len() as u64)
                .unwrap_or(0),
        ),
        Q2 | Q3 | Q4 | Q5 | Q6 | Q7 | Q16 | Q17 | Q18 | Q19 | Q20 | Q21 => {
            unreachable!("mutating query routed through execute")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbering_matches_table2() {
        assert_eq!(QueryId::Q1.number(), 1);
        assert_eq!(QueryId::Q35.number(), 35);
        assert_eq!(QueryId::ALL.len(), 35);
    }

    #[test]
    fn categories() {
        assert_eq!(QueryId::Q1.category().tag(), 'L');
        assert_eq!(QueryId::Q7.category().tag(), 'C');
        assert_eq!(QueryId::Q15.category().tag(), 'R');
        assert_eq!(QueryId::Q17.category().tag(), 'U');
        assert_eq!(QueryId::Q21.category().tag(), 'D');
        assert_eq!(QueryId::Q35.category().tag(), 'T');
    }

    #[test]
    fn mutation_flags() {
        assert!(QueryId::Q2.is_mutation());
        assert!(QueryId::Q18.is_mutation());
        assert!(!QueryId::Q8.is_mutation());
        assert!(!QueryId::Q32.is_mutation());
    }

    #[test]
    fn full_suite_size() {
        // 34 runnable queries; Q32/Q33 ×4 depths add 6 extra instances.
        let suite = QueryInstance::full_suite(2);
        assert_eq!(suite.len(), 40);
        assert!(suite.iter().all(|i| i.id != QueryId::Q1));
    }

    #[test]
    fn instance_names() {
        assert_eq!(QueryInstance::plain(QueryId::Q9).name(), "Q9");
        assert_eq!(
            QueryInstance {
                id: QueryId::Q32,
                depth: Some(4),
                k: None
            }
            .name(),
            "Q32(d=4)"
        );
        assert_eq!(
            QueryInstance {
                id: QueryId::Q30,
                depth: None,
                k: Some(8)
            }
            .name(),
            "Q30(k=8)"
        );
    }

    #[test]
    fn gremlin_text_present_for_all() {
        for q in QueryId::ALL {
            assert!(!q.gremlin().is_empty());
            assert!(!q.description().is_empty());
        }
    }
}
