//! The 13 complex LDBC-style queries of Figure 2.
//!
//! §4.7: a workload "based on the LDBC Social Network benchmark … mimic the
//! tasks that may be performed by a new user in the system, from the
//! creation of an account … to the task of retrieving recommendations",
//! including "multiple join predicates, sorting, top-k, and max finding".
//! The x-axis of Figure 2 names them: `max-iid`, `max-oid`, `create`,
//! `city`, `company`, `university`, `friend1`, `friend2`, `friend-tags`,
//! `add-tags`, `friend-of-friend`, `triangle`, `places`.
//!
//! These are macro-queries: each composes many primitive operators, which
//! is exactly what the paper contrasts against the micro-benchmark (§6.3).

use gm_model::api::Direction;
use gm_model::fxmap::FxHashMap;
use gm_model::{GdbResult, GraphDb, GraphSnapshot, QueryCtx, Value, Vid};

/// The 13 complex queries, in Figure 2 order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum ComplexQuery {
    MaxInDegree,
    MaxOutDegree,
    CreateAccount,
    PersonsInCity,
    EmployeesOfCompany,
    StudentsOfUniversity,
    Friends1,
    Friends2,
    FriendTags,
    AddTags,
    FriendOfFriendRecommendation,
    TriangleCount,
    PlacesHierarchy,
}

impl ComplexQuery {
    /// All queries in Figure 2 order.
    pub const ALL: [ComplexQuery; 13] = [
        ComplexQuery::MaxInDegree,
        ComplexQuery::MaxOutDegree,
        ComplexQuery::CreateAccount,
        ComplexQuery::PersonsInCity,
        ComplexQuery::EmployeesOfCompany,
        ComplexQuery::StudentsOfUniversity,
        ComplexQuery::Friends1,
        ComplexQuery::Friends2,
        ComplexQuery::FriendTags,
        ComplexQuery::AddTags,
        ComplexQuery::FriendOfFriendRecommendation,
        ComplexQuery::TriangleCount,
        ComplexQuery::PlacesHierarchy,
    ];

    /// Figure 2 x-axis label.
    pub fn name(&self) -> &'static str {
        match self {
            ComplexQuery::MaxInDegree => "max-iid",
            ComplexQuery::MaxOutDegree => "max-oid",
            ComplexQuery::CreateAccount => "create",
            ComplexQuery::PersonsInCity => "city",
            ComplexQuery::EmployeesOfCompany => "company",
            ComplexQuery::StudentsOfUniversity => "university",
            ComplexQuery::Friends1 => "friend1",
            ComplexQuery::Friends2 => "friend2",
            ComplexQuery::FriendTags => "friend-tags",
            ComplexQuery::AddTags => "add-tags",
            ComplexQuery::FriendOfFriendRecommendation => "friend-of-friend",
            ComplexQuery::TriangleCount => "triangle",
            ComplexQuery::PlacesHierarchy => "places",
        }
    }

    /// Whether the query writes to the graph.
    pub fn is_mutation(&self) -> bool {
        matches!(self, ComplexQuery::CreateAccount | ComplexQuery::AddTags)
    }
}

/// Canonical parameters for the complex workload (drawn once per dataset;
/// the LDBC generator's label vocabulary is fixed, so only element picks
/// vary).
#[derive(Debug, Clone)]
pub struct ComplexParams {
    /// The acting person (canonical id).
    pub person: u64,
    /// A city (canonical id).
    pub city: u64,
    /// A company (canonical id).
    pub company: u64,
    /// A university (canonical id).
    pub university: u64,
    /// Tags to attach in `add-tags`.
    pub tags: Vec<u64>,
    /// Top-k for the recommendation query.
    pub top_k: usize,
}

impl ComplexParams {
    /// Deterministically pick parameters from an LDBC-shaped dataset.
    pub fn choose(data: &gm_model::Dataset, seed: u64) -> ComplexParams {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc0_3171e8);
        let by_label = |label: &str| -> Vec<u64> {
            data.vertices
                .iter()
                .filter(|v| v.label == label)
                .map(|v| v.id)
                .collect()
        };
        let persons = by_label("person");
        let cities = by_label("city");
        let companies = by_label("company");
        let universities = by_label("university");
        let tags = by_label("tag");
        assert!(
            !persons.is_empty() && !cities.is_empty() && !tags.is_empty(),
            "complex workload requires an LDBC-shaped dataset"
        );
        let pick = |rng: &mut StdRng, v: &[u64]| v[rng.gen_range(0..v.len())];
        ComplexParams {
            person: pick(&mut rng, &persons),
            city: pick(&mut rng, &cities),
            company: pick(&mut rng, &companies),
            university: pick(&mut rng, &universities),
            tags: (0..5).map(|_| pick(&mut rng, &tags)).collect(),
            top_k: 10,
        }
    }

    /// Resolve to internal ids against an engine.
    pub fn resolve(&self, db: &dyn GraphSnapshot) -> GdbResult<ResolvedComplexParams> {
        let rv = |c: u64| {
            db.resolve_vertex(c)
                .ok_or(gm_model::GdbError::VertexNotFound(c))
        };
        Ok(ResolvedComplexParams {
            person: rv(self.person)?,
            city: rv(self.city)?,
            company: rv(self.company)?,
            university: rv(self.university)?,
            tags: self.tags.iter().map(|t| rv(*t)).collect::<GdbResult<_>>()?,
            top_k: self.top_k,
        })
    }
}

/// Engine-resolved complex-query parameters.
#[derive(Debug, Clone)]
pub struct ResolvedComplexParams {
    /// Acting person.
    pub person: Vid,
    /// City for the `city` query.
    pub city: Vid,
    /// Company for the `company` query.
    pub company: Vid,
    /// University for the `university` query.
    pub university: Vid,
    /// Tags for `add-tags`.
    pub tags: Vec<Vid>,
    /// Recommendation cut-off.
    pub top_k: usize,
}

/// Execute one complex query; returns the result cardinality.
pub fn execute(
    q: ComplexQuery,
    db: &mut dyn GraphDb,
    p: &ResolvedComplexParams,
    ctx: &QueryCtx,
) -> GdbResult<u64> {
    match q {
        // max-iid / max-oid: max-finding over a full scan (§4.7 "max
        // finding").
        ComplexQuery::MaxInDegree => max_degree_vertex(db, Direction::In, ctx),
        ComplexQuery::MaxOutDegree => max_degree_vertex(db, Direction::Out, ctx),

        // create: new account node + profile edges (school, city, work).
        ComplexQuery::CreateAccount => {
            let v = db.add_vertex(
                "person",
                &vec![
                    ("firstName".into(), Value::Str("new-user".into())),
                    ("lastName".into(), Value::Str("graphmark".into())),
                    ("browserUsed".into(), Value::Str("Firefox".into())),
                ],
            )?;
            db.add_edge(
                v,
                p.city,
                "isLocatedIn",
                &vec![("since".into(), Value::Int(0))],
            )?;
            db.add_edge(
                v,
                p.university,
                "studyAt",
                &vec![("classYear".into(), Value::Int(2020))],
            )?;
            db.add_edge(
                v,
                p.company,
                "workAt",
                &vec![("workFrom".into(), Value::Int(2022))],
            )?;
            Ok(4)
        }

        // city/company/university: single-label 1-hop reverse lookups — the
        // conditional-join shape where Sqlg shines (§6.3).
        ComplexQuery::PersonsInCity => Ok(db
            .neighbors(p.city, Direction::In, Some("isLocatedIn"), ctx)?
            .len() as u64),
        ComplexQuery::EmployeesOfCompany => Ok(db
            .neighbors(p.company, Direction::In, Some("workAt"), ctx)?
            .len() as u64),
        ComplexQuery::StudentsOfUniversity => Ok(db
            .neighbors(p.university, Direction::In, Some("studyAt"), ctx)?
            .len() as u64),

        // friend1/friend2: 1- and 2-hop friendship neighborhoods.
        ComplexQuery::Friends1 => {
            Ok(dedup(db.neighbors(p.person, Direction::Both, Some("knows"), ctx)?).len() as u64)
        }
        ComplexQuery::Friends2 => {
            let friends = dedup(db.neighbors(p.person, Direction::Both, Some("knows"), ctx)?);
            let mut second = Vec::new();
            for f in &friends {
                second.extend(db.neighbors(*f, Direction::Both, Some("knows"), ctx)?);
            }
            let mut all = dedup(second);
            all.retain(|v| *v != p.person && !friends.contains(v));
            Ok(all.len() as u64)
        }

        // friend-tags: tags my friends are interested in (2 hops over two
        // different labels + dedup).
        ComplexQuery::FriendTags => {
            let friends = dedup(db.neighbors(p.person, Direction::Both, Some("knows"), ctx)?);
            let mut tags = Vec::new();
            for f in &friends {
                tags.extend(db.neighbors(*f, Direction::Out, Some("hasInterest"), ctx)?);
            }
            Ok(dedup(tags).len() as u64)
        }

        // add-tags: attach interests to the acting person (write).
        ComplexQuery::AddTags => {
            for t in &p.tags {
                db.add_edge(p.person, *t, "hasInterest", &vec![])?;
            }
            Ok(p.tags.len() as u64)
        }

        // friend-of-friend: recommendation with join + group-count + top-k
        // sorting (§4.7).
        ComplexQuery::FriendOfFriendRecommendation => {
            let friends = dedup(db.neighbors(p.person, Direction::Both, Some("knows"), ctx)?);
            let mut common: FxHashMap<u64, u64> = FxHashMap::default();
            for f in &friends {
                for fof in db.neighbors(*f, Direction::Both, Some("knows"), ctx)? {
                    if fof != p.person && !friends.contains(&fof) {
                        *common.entry(fof.0).or_insert(0) += 1;
                    }
                }
            }
            let mut ranked: Vec<(u64, u64)> = common.into_iter().collect();
            // Sort by common-friend count desc, id asc (deterministic top-k).
            ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            ranked.truncate(p.top_k);
            Ok(ranked.len() as u64)
        }

        // triangle: count triangles in the acting person's friendship
        // neighborhood (join of two hops with a membership predicate).
        ComplexQuery::TriangleCount => {
            let friends = dedup(db.neighbors(p.person, Direction::Both, Some("knows"), ctx)?);
            let mut triangles = 0u64;
            for (i, f) in friends.iter().enumerate() {
                let ff = db.neighbors(*f, Direction::Both, Some("knows"), ctx)?;
                for g in &friends[i + 1..] {
                    if ff.contains(g) {
                        triangles += 1;
                    }
                }
            }
            Ok(triangles)
        }

        // places: person → city → country → all cities → all persons. Long
        // multi-label traversal with a huge intermediate result — the query
        // where Sqlg collapses (§6.3's "last query").
        ComplexQuery::PlacesHierarchy => {
            let cities = db.neighbors(p.person, Direction::Out, Some("isLocatedIn"), ctx)?;
            let mut persons = Vec::new();
            for city in dedup(cities) {
                for country in db.neighbors(city, Direction::Out, Some("isPartOf"), ctx)? {
                    for sibling_city in
                        db.neighbors(country, Direction::In, Some("isPartOf"), ctx)?
                    {
                        persons.extend(db.neighbors(
                            sibling_city,
                            Direction::In,
                            Some("isLocatedIn"),
                            ctx,
                        )?);
                    }
                }
            }
            Ok(dedup(persons).len() as u64)
        }
    }
}

fn max_degree_vertex(db: &dyn GraphSnapshot, dir: Direction, ctx: &QueryCtx) -> GdbResult<u64> {
    let mut best: Option<(u64, Vid)> = None;
    let scan = db.scan_vertices(ctx)?;
    let mut vs = Vec::new();
    for v in scan {
        vs.push(v?);
    }
    for v in vs {
        let d = db.vertex_degree(v, dir, ctx)?;
        if best.map(|(bd, _)| d > bd).unwrap_or(true) {
            best = Some((d, v));
        }
    }
    Ok(best.map(|(d, _)| d).unwrap_or(0))
}

fn dedup(mut v: Vec<Vid>) -> Vec<Vid> {
    v.sort_unstable();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine_linked::LinkedGraph;
    use gm_model::api::{GraphDb, LoadOptions};
    use gm_model::Dataset;

    /// A miniature LDBC-shaped world for unit tests.
    fn mini_ldbc() -> Dataset {
        let mut d = Dataset::new("mini-ldbc");
        // 0-3: persons; 4: city; 5: country; 6: company; 7: university;
        // 8-9: tags; 10: city2.
        for _ in 0..4 {
            d.add_vertex("person", vec![("firstName".into(), Value::Str("p".into()))]);
        }
        let city = d.add_vertex("city", vec![]);
        let country = d.add_vertex("country", vec![]);
        let company = d.add_vertex("company", vec![]);
        let uni = d.add_vertex("university", vec![]);
        let t1 = d.add_vertex("tag", vec![]);
        let t2 = d.add_vertex("tag", vec![]);
        let city2 = d.add_vertex("city", vec![]);
        // Friendships: 0-1, 1-2, 0-2 (triangle), 2-3.
        d.add_edge(0, 1, "knows", vec![]);
        d.add_edge(1, 2, "knows", vec![]);
        d.add_edge(0, 2, "knows", vec![]);
        d.add_edge(2, 3, "knows", vec![]);
        // Locations.
        d.add_edge(0, city, "isLocatedIn", vec![]);
        d.add_edge(1, city, "isLocatedIn", vec![]);
        d.add_edge(2, city2, "isLocatedIn", vec![]);
        d.add_edge(3, city2, "isLocatedIn", vec![]);
        d.add_edge(city, country, "isPartOf", vec![]);
        d.add_edge(city2, country, "isPartOf", vec![]);
        // Work/study.
        d.add_edge(0, company, "workAt", vec![]);
        d.add_edge(1, company, "workAt", vec![]);
        d.add_edge(1, uni, "studyAt", vec![]);
        // Interests.
        d.add_edge(1, t1, "hasInterest", vec![]);
        d.add_edge(2, t1, "hasInterest", vec![]);
        d.add_edge(2, t2, "hasInterest", vec![]);
        d
    }

    fn engine_with(d: &Dataset) -> LinkedGraph {
        let mut g = LinkedGraph::v1();
        g.bulk_load(d, &LoadOptions::default()).unwrap();
        g
    }

    fn params(d: &Dataset, g: &LinkedGraph) -> ResolvedComplexParams {
        let _ = d;
        ResolvedComplexParams {
            person: g.resolve_vertex(0).unwrap(),
            city: g.resolve_vertex(4).unwrap(),
            company: g.resolve_vertex(6).unwrap(),
            university: g.resolve_vertex(7).unwrap(),
            tags: vec![g.resolve_vertex(8).unwrap(), g.resolve_vertex(9).unwrap()],
            top_k: 10,
        }
    }

    #[test]
    fn all_thirteen_run() {
        let d = mini_ldbc();
        let ctx = QueryCtx::unbounded();
        for q in ComplexQuery::ALL {
            let mut g = engine_with(&d);
            let p = params(&d, &g);
            let card = execute(q, &mut g, &p, &ctx).unwrap();
            // create always returns 4; everything else on this world is
            // non-negative by construction.
            if q == ComplexQuery::CreateAccount {
                assert_eq!(card, 4);
            }
        }
    }

    #[test]
    fn friends_counts() {
        let d = mini_ldbc();
        let mut g = engine_with(&d);
        let p = params(&d, &g);
        let ctx = QueryCtx::unbounded();
        // person 0 knows 1 and 2.
        assert_eq!(
            execute(ComplexQuery::Friends1, &mut g, &p, &ctx).unwrap(),
            2
        );
        // friends-of-friends excluding self and direct friends: person 3.
        assert_eq!(
            execute(ComplexQuery::Friends2, &mut g, &p, &ctx).unwrap(),
            1
        );
    }

    #[test]
    fn triangle_count() {
        let d = mini_ldbc();
        let mut g = engine_with(&d);
        let p = params(&d, &g);
        let ctx = QueryCtx::unbounded();
        // 0's friends {1, 2}: 1 knows 2 → one triangle.
        assert_eq!(
            execute(ComplexQuery::TriangleCount, &mut g, &p, &ctx).unwrap(),
            1
        );
    }

    #[test]
    fn friend_tags() {
        let d = mini_ldbc();
        let mut g = engine_with(&d);
        let p = params(&d, &g);
        let ctx = QueryCtx::unbounded();
        // Friends 1 and 2 together know tags t1 and t2.
        assert_eq!(
            execute(ComplexQuery::FriendTags, &mut g, &p, &ctx).unwrap(),
            2
        );
    }

    #[test]
    fn places_crosses_the_hierarchy() {
        let d = mini_ldbc();
        let mut g = engine_with(&d);
        let p = params(&d, &g);
        let ctx = QueryCtx::unbounded();
        // All 4 persons live in cities of person-0's country.
        assert_eq!(
            execute(ComplexQuery::PlacesHierarchy, &mut g, &p, &ctx).unwrap(),
            4
        );
    }

    #[test]
    fn reverse_lookups() {
        let d = mini_ldbc();
        let mut g = engine_with(&d);
        let p = params(&d, &g);
        let ctx = QueryCtx::unbounded();
        assert_eq!(
            execute(ComplexQuery::PersonsInCity, &mut g, &p, &ctx).unwrap(),
            2
        );
        assert_eq!(
            execute(ComplexQuery::EmployeesOfCompany, &mut g, &p, &ctx).unwrap(),
            2
        );
        assert_eq!(
            execute(ComplexQuery::StudentsOfUniversity, &mut g, &p, &ctx).unwrap(),
            1
        );
    }

    #[test]
    fn max_degree_queries() {
        let d = mini_ldbc();
        let mut g = engine_with(&d);
        let p = params(&d, &g);
        let ctx = QueryCtx::unbounded();
        let max_in = execute(ComplexQuery::MaxInDegree, &mut g, &p, &ctx).unwrap();
        assert!(max_in >= 2, "country has in-degree 2");
        let max_out = execute(ComplexQuery::MaxOutDegree, &mut g, &p, &ctx).unwrap();
        assert!(max_out >= 4, "person 1 or 2 has several out-edges");
    }

    #[test]
    fn add_tags_writes() {
        let d = mini_ldbc();
        let mut g = engine_with(&d);
        let p = params(&d, &g);
        let ctx = QueryCtx::unbounded();
        let before = g.edge_count(&ctx).unwrap();
        execute(ComplexQuery::AddTags, &mut g, &p, &ctx).unwrap();
        assert_eq!(g.edge_count(&ctx).unwrap(), before + 2);
    }

    #[test]
    fn names_match_figure2() {
        let names: Vec<&str> = ComplexQuery::ALL.iter().map(|q| q.name()).collect();
        assert_eq!(names[0], "max-iid");
        assert_eq!(names[12], "places");
        assert_eq!(names.len(), 13);
    }
}
