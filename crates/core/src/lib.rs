//! # gm-core — the microbenchmark framework (the paper's primary contribution)
//!
//! This crate materializes the evaluation methodology of §5:
//!
//! * [`catalog`] — the 35 primitive query classes of Table 2, with category,
//!   Gremlin text, parameter spec, and an engine-agnostic executor;
//! * [`params`] — deterministic workload parameter selection: "any random
//!   selection made in one system … has been maintained the same across the
//!   other systems";
//! * [`runner`] — per-query measurement in **isolation** (fresh engine
//!   state per query) and **batch** mode (N consecutive executions), with
//!   the scaled-down analogue of the paper's 2-hour timeout;
//! * [`complex`] — the 13 LDBC-style complex queries of Figure 2;
//! * [`report`] — figure/table series collection and text rendering;
//! * [`summary`] — the Table 4 ✓/⚠ matrix derivation.

pub mod catalog;
pub mod complex;
pub mod params;
pub mod report;
pub mod runner;
pub mod summary;

pub use catalog::{Category, QueryId, QueryInstance};
pub use params::Workload;
pub use report::{Measurement, Outcome, RunMode};
pub use runner::{BenchConfig, Runner};
