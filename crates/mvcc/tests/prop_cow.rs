//! Property test: arbitrary interleavings of {add/remove vertex/edge,
//! set/remove property, snapshot-pin, read} against a [`CowCell`]-wrapped
//! engine always match a single-threaded oracle — pinned snapshots never
//! tear (they keep answering with the counts recorded at pin time, no
//! matter what is written afterwards) and epochs are monotone.

use engine_linked::LinkedGraph;
use gm_model::api::{GraphDb, GraphSnapshot, LoadOptions};
use gm_model::{testkit, Eid, QueryCtx, Value, Vid};
use gm_mvcc::{CowCell, SnapshotSource};
use proptest::prelude::*;

/// One scripted step. Indexes are raw draws interpreted modulo the current
/// element pools, so every generated script is executable.
#[derive(Debug, Clone, Copy)]
enum Step {
    AddVertex,
    AddEdge(usize, usize),
    RemoveVertex(usize),
    RemoveEdge(usize),
    SetProp(usize, i64),
    RemoveProp(usize),
    Pin,
    Read,
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        3 => Just(Step::AddVertex),
        3 => (0usize..64, 0usize..64).prop_map(|(a, b)| Step::AddEdge(a, b)),
        1 => (0usize..64).prop_map(Step::RemoveVertex),
        2 => (0usize..64).prop_map(Step::RemoveEdge),
        2 => (0usize..64, -100i64..100).prop_map(|(i, x)| Step::SetProp(i, x)),
        1 => (0usize..64).prop_map(Step::RemoveProp),
        2 => Just(Step::Pin),
        2 => Just(Step::Read),
    ]
}

/// A retained pin: the snapshot plus the oracle state recorded at pin time.
struct Pinned {
    snap: Box<dyn GraphSnapshot>,
    vertices: u64,
    edges: u64,
}

fn counts(db: &dyn GraphSnapshot) -> (u64, u64) {
    let ctx = QueryCtx::unbounded();
    (
        db.vertex_count(&ctx).expect("vertex_count"),
        db.edge_count(&ctx).expect("edge_count"),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cow_cell_matches_single_threaded_oracle(steps in prop::collection::vec(arb_step(), 0..80)) {
        let data = testkit::chain_dataset(12);
        let cell = CowCell::new(LinkedGraph::v1());
        cell.with_write(&mut |db| {
            db.bulk_load(&data, &LoadOptions::default())?;
            Ok(0)
        }).expect("load cell");
        let mut oracle = LinkedGraph::v1();
        oracle.bulk_load(&data, &LoadOptions::default()).expect("load oracle");

        // Parallel element pools; positions correspond across the two sides.
        let mut cell_vs: Vec<Vid> = (0..12).map(|c| {
            cell.snapshot().unwrap().resolve_vertex(c).unwrap()
        }).collect();
        let mut orc_vs: Vec<Vid> = (0..12).map(|c| oracle.resolve_vertex(c).unwrap()).collect();
        let mut cell_es: Vec<Eid> = Vec::new();
        let mut orc_es: Vec<Eid> = Vec::new();

        let mut pins: Vec<Pinned> = Vec::new();
        let mut last_epoch = 0u64;

        for step in steps {
            match step {
                Step::AddVertex => {
                    let mut cv = None;
                    cell.with_write(&mut |db| {
                        cv = Some(db.add_vertex("p_node", &vec![])?);
                        Ok(1)
                    }).expect("add vertex");
                    let ov = oracle.add_vertex("p_node", &vec![]).expect("oracle add vertex");
                    cell_vs.push(cv.unwrap());
                    orc_vs.push(ov);
                }
                Step::AddEdge(a, b) => {
                    let (i, j) = (a % cell_vs.len(), b % cell_vs.len());
                    let (csrc, cdst) = (cell_vs[i], cell_vs[j]);
                    let (osrc, odst) = (orc_vs[i], orc_vs[j]);
                    let mut ce = None;
                    let cr = cell.with_write(&mut |db| {
                        ce = Some(db.add_edge(csrc, cdst, "p_edge", &vec![])?);
                        Ok(1)
                    });
                    let or = oracle.add_edge(osrc, odst, "p_edge", &vec![]);
                    prop_assert_eq!(cr.is_ok(), or.is_ok(), "add_edge outcome diverged");
                    if let (Ok(_), Ok(oe)) = (cr, or) {
                        cell_es.push(ce.unwrap());
                        orc_es.push(oe);
                    }
                }
                Step::RemoveVertex(i) => {
                    if cell_vs.is_empty() { continue; }
                    let i = i % cell_vs.len();
                    let (cv, ov) = (cell_vs[i], orc_vs[i]);
                    let cr = cell.with_write(&mut |db| db.remove_vertex(cv).map(|_| 1));
                    let or = oracle.remove_vertex(ov);
                    prop_assert_eq!(cr.is_ok(), or.is_ok(), "remove_vertex outcome diverged");
                    if or.is_ok() {
                        cell_vs.remove(i);
                        orc_vs.remove(i);
                    }
                }
                Step::RemoveEdge(i) => {
                    if cell_es.is_empty() { continue; }
                    let i = i % cell_es.len();
                    let (ce, oe) = (cell_es[i], orc_es[i]);
                    let cr = cell.with_write(&mut |db| db.remove_edge(ce).map(|_| 1));
                    let or = oracle.remove_edge(oe);
                    prop_assert_eq!(cr.is_ok(), or.is_ok(), "remove_edge outcome diverged");
                    cell_es.remove(i);
                    orc_es.remove(i);
                }
                Step::SetProp(i, x) => {
                    if cell_vs.is_empty() { continue; }
                    let i = i % cell_vs.len();
                    let (cv, ov) = (cell_vs[i], orc_vs[i]);
                    let cr = cell.with_write(&mut |db| {
                        db.set_vertex_property(cv, "p_prop", Value::Int(x)).map(|_| 1)
                    });
                    let or = oracle.set_vertex_property(ov, "p_prop", Value::Int(x));
                    prop_assert_eq!(cr.is_ok(), or.is_ok(), "set_vertex_property outcome diverged");
                }
                Step::RemoveProp(i) => {
                    if cell_vs.is_empty() { continue; }
                    let i = i % cell_vs.len();
                    let (cv, ov) = (cell_vs[i], orc_vs[i]);
                    let mut removed = None;
                    let cr = cell.with_write(&mut |db| {
                        removed = Some(db.remove_vertex_property(cv, "p_prop")?);
                        Ok(1)
                    });
                    let or = oracle.remove_vertex_property(ov, "p_prop");
                    prop_assert_eq!(cr.is_ok(), or.is_ok(), "remove_vertex_property outcome diverged");
                    if let (Ok(_), Ok(old)) = (cr, or) {
                        prop_assert_eq!(removed.unwrap(), old, "removed value diverged");
                    }
                }
                Step::Pin => {
                    let snap = cell.snapshot().expect("pin");
                    prop_assert!(
                        snap.epoch() >= last_epoch,
                        "epoch went backwards: {} after {}", snap.epoch(), last_epoch
                    );
                    last_epoch = snap.epoch();
                    let (v, e) = counts(&oracle);
                    // The freshly pinned view agrees with the oracle *now*.
                    prop_assert_eq!(counts(snap.as_ref()), (v, e), "pin disagrees with oracle");
                    pins.push(Pinned { snap, vertices: v, edges: e });
                }
                Step::Read => {
                    let snap = cell.snapshot().expect("read pin");
                    prop_assert_eq!(counts(snap.as_ref()), counts(&oracle), "read disagrees with oracle");
                    // Spot-check a property through the pinned view.
                    if !cell_vs.is_empty() {
                        let (cv, ov) = (cell_vs[0], orc_vs[0]);
                        prop_assert_eq!(
                            snap.vertex_property(cv, "p_prop").expect("snap prop"),
                            oracle.vertex_property(ov, "p_prop").expect("oracle prop"),
                            "property read diverged"
                        );
                    }
                }
            }
        }

        // No torn reads: every retained pin still answers with the state
        // recorded when it was taken, regardless of everything written since.
        for (i, pin) in pins.iter().enumerate() {
            prop_assert_eq!(
                counts(pin.snap.as_ref()),
                (pin.vertices, pin.edges),
                "pin {} tore: counts drifted after later writes", i
            );
        }
    }
}
