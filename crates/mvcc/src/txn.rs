//! Epoch-pinned write transactions over any [`SnapshotSource`].
//!
//! A [`WriteTxn`] pins a read epoch at [`WriteTxn::begin`], buffers its
//! write set against that view (reads-your-own-writes for point lookups),
//! and publishes the whole set atomically at [`WriteTxn::commit`] after a
//! **first-committer-wins** validation: if any transaction or autocommit
//! write that committed after this transaction's begin touched a key in
//! this transaction's write set, the commit fails with
//! [`GdbError::TxnConflict`] and nothing is applied.
//!
//! ## Conflict detection
//!
//! Every source keeps a [`TxnLog`]: a monotone commit sequence number plus
//! a bounded deque of `(seq, write-set keys)` for recent commits. Autocommit
//! writes participate too — each source's `with_write` wraps the live
//! engine in a [`KeyRecorder`] that derives the touched [`TxnKey`]s and
//! appends them on success. Validation is write-set vs write-set
//! (snapshot-isolation style): read dependencies are *not* tracked, and a
//! write whose keys were trimmed out of the bounded log window is treated
//! as a conflict (conservative, never unsound). `begin` reads the log
//! sequence **before** pinning the snapshot, so a commit racing the pin is
//! validated against — the race can only produce a spurious conflict,
//! never a missed one.
//!
//! Key derivation is deliberately coarse — the *directly addressed*
//! entities of each mutation (`add_edge` claims both endpoint vertices; a
//! property write claims its vertex/edge; `add_vertex` claims nothing,
//! fresh identities cannot conflict). Cascading effects (removing a vertex
//! implicitly removes its edges) are not expanded into keys; a transaction
//! racing such a cascade surfaces the loss as a not-found error at replay
//! rather than a [`GdbError::TxnConflict`].
//!
//! ## Reads-your-own-writes scope
//!
//! Inside the transaction, **point reads** (vertex/edge lookup, property
//! reads, endpoints, labels, counts) observe the buffered writes overlaid
//! on the pinned base epoch. Scans and traversals (`neighbors`,
//! `scan_vertices`, `degree_scan`, property-index lookups, …) answer from
//! the pinned base alone — the benchmark write mixes never traverse their
//! own uncommitted writes, and an honest overlay for traversals would
//! re-implement every engine's adjacency structure.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Mutex;

use gm_model::api::{
    Direction, EdgeData, EdgeRef, EngineFeatures, GraphDb, GraphSnapshot, LoadOptions, LoadStats,
    SpaceReport, VertexData,
};
use gm_model::lockorder::{self, LockRank};
use gm_model::{Dataset, Eid, GdbError, GdbResult, Props, QueryCtx, Value, Vid};

use crate::SnapshotSource;

/// High-bit tag marking vertex/edge ids handed out by an uncommitted
/// transaction for entities it created. Placeholders are resolved to the
/// engine's real ids during commit replay and never escape a committed
/// transaction. (Engines allocate real ids densely from zero and the
/// sharded composite multiplies by the shard count, so a real id with this
/// bit set would require ~9.2e18 live entities — far beyond bench scales.)
pub const TXN_ID_TAG: u64 = 1 << 63;

fn is_tagged(raw: u64) -> bool {
    raw & TXN_ID_TAG != 0
}

/// One entry of a transaction's write set: the directly addressed entity
/// of a buffered mutation, in the id space of the source the transaction
/// runs against (composite ids for a sharded source).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TxnKey {
    /// A vertex id (raw `Vid`).
    Vertex(u64),
    /// An edge id (raw `Eid`).
    Edge(u64),
    /// The whole graph (autocommit `bulk_load`): conflicts with any
    /// non-empty write set.
    All,
}

impl TxnKey {
    fn describe(&self) -> String {
        match self {
            TxnKey::Vertex(id) => format!("vertex v{id}"),
            TxnKey::Edge(id) => format!("edge e{id}"),
            TxnKey::All => "the whole graph".into(),
        }
    }
}

/// Default bound on how many recent commits a [`TxnLog`] retains
/// (overridable via `GM_TXN_LOG_CAP`).
pub const TXN_LOG_CAP_DEFAULT: usize = 1024;

fn env_log_cap() -> usize {
    std::env::var("GM_TXN_LOG_CAP")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&c| c >= 1)
        .unwrap_or(TXN_LOG_CAP_DEFAULT)
}

struct TxnLogInner {
    /// Monotone sequence number of the newest key-carrying commit.
    commit_seq: u64,
    /// Sequence number of the newest entry evicted by the cap (0 = none).
    /// A transaction that began before this point cannot be validated
    /// exactly and conflicts conservatively.
    trimmed: u64,
    /// Recent commits, oldest first: `(seq, write-set keys)`.
    recent: VecDeque<(u64, Vec<TxnKey>)>,
}

/// Bounded commit log powering first-committer-wins validation (see the
/// [module docs](self)).
pub struct TxnLog {
    inner: Mutex<TxnLogInner>,
    cap: usize,
}

impl Default for TxnLog {
    fn default() -> Self {
        TxnLog::new()
    }
}

impl TxnLog {
    /// A log with the `GM_TXN_LOG_CAP` (default 1024) retention bound.
    pub fn new() -> TxnLog {
        TxnLog::with_cap(env_log_cap())
    }

    /// A log retaining at most `cap` recent commits.
    pub fn with_cap(cap: usize) -> TxnLog {
        TxnLog {
            inner: Mutex::new(TxnLogInner {
                commit_seq: 0,
                trimmed: 0,
                recent: VecDeque::new(),
            }),
            cap: cap.max(1),
        }
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, TxnLogInner> {
        // gm-lock: leaf
        let _t = lockorder::acquire(LockRank::Leaf, "gm-mvcc/txn.rs txn log");
        // Bookkeeping-only state: recover a poisoned guard rather than
        // letting one panicking writer take down every later commit.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Sequence number of the newest recorded commit. A transaction pins
    /// this **before** pinning its snapshot.
    pub fn seq(&self) -> u64 {
        self.locked().commit_seq
    }

    /// Record a committed write set. Key-less writes are not recorded —
    /// they cannot conflict with anything, so spending log retention (and a
    /// sequence bump) on them would only evict entries validation needs.
    pub fn append(&self, keys: Vec<TxnKey>) {
        if keys.is_empty() {
            return;
        }
        let mut inner = self.locked();
        inner.commit_seq += 1;
        let seq = inner.commit_seq;
        inner.recent.push_back((seq, keys));
        while inner.recent.len() > self.cap {
            if let Some((evicted, _)) = inner.recent.pop_front() {
                inner.trimmed = evicted;
            }
        }
    }

    /// First-committer-wins check: fail with [`GdbError::TxnConflict`] if
    /// any commit recorded after `start_seq` intersects `keys`, or if
    /// commits from after `start_seq` have already been trimmed out of the
    /// retention window (conservative).
    pub fn validate(&self, start_seq: u64, keys: &[TxnKey]) -> GdbResult<()> {
        if keys.is_empty() {
            return Ok(());
        }
        let inner = self.locked();
        if inner.trimmed > start_seq {
            return Err(GdbError::TxnConflict(format!(
                "commit log trimmed past txn start (seq {start_seq} < oldest retained {}): \
                 cannot prove the write set untouched",
                inner.trimmed + 1
            )));
        }
        let mine = TxnKey::All;
        let has_all = keys.contains(&mine);
        for (seq, committed) in &inner.recent {
            if *seq <= start_seq {
                continue;
            }
            let hit = committed
                .iter()
                .find(|k| **k == TxnKey::All || has_all || keys.binary_search(k).is_ok());
            if let Some(k) = hit {
                return Err(GdbError::TxnConflict(format!(
                    "{} was written by commit {seq} after this txn began at seq {start_seq}",
                    k.describe()
                )));
            }
        }
        Ok(())
    }
}

// ----- KeyRecorder ----------------------------------------------------------

/// A [`GraphDb`] proxy that derives the [`TxnKey`]s each mutation touches.
/// Every source's `with_write` wraps the live engine in one, so autocommit
/// writes feed the same [`TxnLog`] transaction validation reads from.
pub struct KeyRecorder<'a> {
    inner: &'a mut dyn GraphDb,
    keys: Vec<TxnKey>,
}

impl<'a> KeyRecorder<'a> {
    /// Wrap an engine for one write batch.
    pub fn new(inner: &'a mut dyn GraphDb) -> KeyRecorder<'a> {
        KeyRecorder {
            inner,
            keys: Vec::new(),
        }
    }

    /// Drain the recorded keys (for the source to append on success).
    pub fn take_keys(&mut self) -> Vec<TxnKey> {
        std::mem::take(&mut self.keys)
    }
}

impl GraphSnapshot for KeyRecorder<'_> {
    gm_model::forward_graph_snapshot!(target = |s| (*s.inner));
}

impl GraphDb for KeyRecorder<'_> {
    fn bulk_load(&mut self, data: &Dataset, opts: &LoadOptions) -> GdbResult<LoadStats> {
        let out = self.inner.bulk_load(data, opts)?;
        self.keys.push(TxnKey::All);
        Ok(out)
    }

    fn add_vertex(&mut self, label: &str, props: &Props) -> GdbResult<Vid> {
        // A fresh identity cannot conflict with any concurrent write set.
        self.inner.add_vertex(label, props)
    }

    fn add_edge(&mut self, src: Vid, dst: Vid, label: &str, props: &Props) -> GdbResult<Eid> {
        let out = self.inner.add_edge(src, dst, label, props)?;
        self.keys.push(TxnKey::Vertex(src.0));
        self.keys.push(TxnKey::Vertex(dst.0));
        Ok(out)
    }

    fn set_vertex_property(&mut self, v: Vid, name: &str, value: Value) -> GdbResult<()> {
        self.inner.set_vertex_property(v, name, value)?;
        self.keys.push(TxnKey::Vertex(v.0));
        Ok(())
    }

    fn set_edge_property(&mut self, e: Eid, name: &str, value: Value) -> GdbResult<()> {
        self.inner.set_edge_property(e, name, value)?;
        self.keys.push(TxnKey::Edge(e.0));
        Ok(())
    }

    fn remove_vertex(&mut self, v: Vid) -> GdbResult<()> {
        self.inner.remove_vertex(v)?;
        self.keys.push(TxnKey::Vertex(v.0));
        Ok(())
    }

    fn remove_edge(&mut self, e: Eid) -> GdbResult<()> {
        self.inner.remove_edge(e)?;
        self.keys.push(TxnKey::Edge(e.0));
        Ok(())
    }

    fn remove_vertex_property(&mut self, v: Vid, name: &str) -> GdbResult<Option<Value>> {
        let out = self.inner.remove_vertex_property(v, name)?;
        self.keys.push(TxnKey::Vertex(v.0));
        Ok(out)
    }

    fn remove_edge_property(&mut self, e: Eid, name: &str) -> GdbResult<Option<Value>> {
        let out = self.inner.remove_edge_property(e, name)?;
        self.keys.push(TxnKey::Edge(e.0));
        Ok(out)
    }

    fn create_vertex_index(&mut self, prop: &str) -> GdbResult<()> {
        // Index builds are idempotent setup-path metadata, not data writes.
        self.inner.create_vertex_index(prop)
    }

    fn sync(&mut self) -> GdbResult<()> {
        self.inner.sync()
    }
}

// ----- WriteTxn -------------------------------------------------------------

/// One buffered mutation, replayed in order at commit. Ids may be
/// [`TXN_ID_TAG`]-tagged placeholders for entities this transaction created.
#[derive(Debug, Clone)]
enum TxnOp {
    AddVertex {
        tag: u64,
        label: String,
        props: Props,
    },
    AddEdge {
        tag: u64,
        src: Vid,
        dst: Vid,
        label: String,
        props: Props,
    },
    SetVertexProp {
        v: Vid,
        name: String,
        value: Value,
    },
    SetEdgeProp {
        e: Eid,
        name: String,
        value: Value,
    },
    RemoveVertex {
        v: Vid,
    },
    RemoveEdge {
        e: Eid,
    },
    RemoveVertexProp {
        v: Vid,
        name: String,
    },
    RemoveEdgeProp {
        e: Eid,
        name: String,
    },
}

/// An epoch-pinned write transaction (see the [module docs](self)).
///
/// Owns its pinned base snapshot, so it carries no borrow of the source:
/// [`WriteTxn::begin`] takes the source, and [`WriteTxn::commit`] must be
/// handed the **same** source again (committing against a different source
/// validates against the wrong log and is a caller bug).
///
/// The transaction is itself a [`GraphDb`]: mutations buffer into the
/// write set, point reads overlay the buffer on the pinned base.
pub struct WriteTxn {
    start_seq: u64,
    base_epoch: u64,
    base: Box<dyn GraphSnapshot>,
    ops: Vec<TxnOp>,
    keys: BTreeSet<TxnKey>,
    next_tag: u64,
    /// Entities created in-txn, keyed by placeholder id. Only live ones:
    /// an in-txn removal deletes the entry.
    created_v: BTreeMap<u64, (String, Props)>,
    created_e: BTreeMap<u64, (Vid, Vid, String, Props)>,
    /// Base entities removed in-txn.
    removed_v: BTreeSet<u64>,
    removed_e: BTreeSet<u64>,
    /// Property overrides (`None` = removed), keyed by raw id + name.
    vprops: BTreeMap<(u64, String), Option<Value>>,
    eprops: BTreeMap<(u64, String), Option<Value>>,
}

impl WriteTxn {
    /// Pin the current epoch and open an empty transaction against it.
    ///
    /// The log sequence is read **before** the snapshot is pinned: a commit
    /// racing the pin lands with `seq > start_seq` and is validated
    /// against, so the race can only manufacture a spurious conflict,
    /// never hide a real one.
    pub fn begin(source: &dyn SnapshotSource) -> GdbResult<WriteTxn> {
        let start_seq = source.txn_log().map(|l| l.seq()).unwrap_or(0);
        let base = source.snapshot()?;
        let base_epoch = base.epoch();
        Ok(WriteTxn {
            start_seq,
            base_epoch,
            base,
            ops: Vec::new(),
            keys: BTreeSet::new(),
            next_tag: 0,
            created_v: BTreeMap::new(),
            created_e: BTreeMap::new(),
            removed_v: BTreeSet::new(),
            removed_e: BTreeSet::new(),
            vprops: BTreeMap::new(),
            eprops: BTreeMap::new(),
        })
    }

    /// Epoch of the pinned base view.
    pub fn base_epoch(&self) -> u64 {
        self.base_epoch
    }

    /// Buffered mutations so far.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Validate and publish the write set atomically against `source` (the
    /// same source `begin` pinned). Returns the number of ops applied; a
    /// [`GdbError::TxnConflict`] means nothing was applied and the caller
    /// may retry on a fresh transaction.
    pub fn commit(self, source: &dyn SnapshotSource) -> GdbResult<u64> {
        if self.ops.is_empty() {
            return Ok(0);
        }
        let keys: Vec<TxnKey> = self.keys.iter().copied().collect();
        let ops = self.ops;
        let n_ops = ops.len() as u64;
        let mut vmap: BTreeMap<u64, Vid> = BTreeMap::new();
        let mut emap: BTreeMap<u64, Eid> = BTreeMap::new();
        let mut replayed = false;
        source.txn_commit(self.start_seq, &keys, &mut |db| {
            if replayed {
                return Err(GdbError::Invalid(
                    "transaction replay closure re-entered".into(),
                ));
            }
            replayed = true;
            for op in &ops {
                replay(db, op, &mut vmap, &mut emap)?;
            }
            Ok(n_ops)
        })
    }

    /// Discard the write set. Returns how many buffered ops were dropped.
    pub fn abort(self) -> u64 {
        self.ops.len() as u64
    }

    fn fresh_tag(&mut self) -> u64 {
        let tag = TXN_ID_TAG | self.next_tag;
        self.next_tag += 1;
        tag
    }

    /// Does the RYOW view contain this vertex?
    fn sees_vertex(&self, v: Vid) -> GdbResult<bool> {
        if is_tagged(v.0) {
            return Ok(self.created_v.contains_key(&v.0));
        }
        if self.removed_v.contains(&v.0) {
            return Ok(false);
        }
        Ok(self.base.vertex(v)?.is_some())
    }

    /// Does the RYOW view contain this edge?
    fn sees_edge(&self, e: Eid) -> GdbResult<bool> {
        if is_tagged(e.0) {
            return Ok(self.created_e.contains_key(&e.0));
        }
        if self.removed_e.contains(&e.0) {
            return Ok(false);
        }
        Ok(self.base.edge(e)?.is_some())
    }

    /// Apply this txn's property overrides for entity `id` to `props`.
    fn overlay_props(
        props: &mut Props,
        overrides: &BTreeMap<(u64, String), Option<Value>>,
        id: u64,
    ) {
        for ((oid, name), val) in overrides {
            if *oid != id {
                continue;
            }
            props.retain(|(n, _)| n != name);
            if let Some(v) = val {
                props.push((name.clone(), v.clone()));
            }
        }
    }
}

/// Resolve a possibly-placeholder vertex id against the replay map.
fn rv(v: Vid, vmap: &BTreeMap<u64, Vid>) -> GdbResult<Vid> {
    if is_tagged(v.0) {
        vmap.get(&v.0)
            .copied()
            .ok_or_else(|| GdbError::Invalid(format!("unresolved txn vertex placeholder {v}")))
    } else {
        Ok(v)
    }
}

/// Resolve a possibly-placeholder edge id against the replay map.
fn re(e: Eid, emap: &BTreeMap<u64, Eid>) -> GdbResult<Eid> {
    if is_tagged(e.0) {
        emap.get(&e.0)
            .copied()
            .ok_or_else(|| GdbError::Invalid(format!("unresolved txn edge placeholder {e}")))
    } else {
        Ok(e)
    }
}

fn replay(
    db: &mut dyn GraphDb,
    op: &TxnOp,
    vmap: &mut BTreeMap<u64, Vid>,
    emap: &mut BTreeMap<u64, Eid>,
) -> GdbResult<()> {
    match op {
        TxnOp::AddVertex { tag, label, props } => {
            let real = db.add_vertex(label, props)?;
            vmap.insert(*tag, real);
        }
        TxnOp::AddEdge {
            tag,
            src,
            dst,
            label,
            props,
        } => {
            let real = db.add_edge(rv(*src, vmap)?, rv(*dst, vmap)?, label, props)?;
            emap.insert(*tag, real);
        }
        TxnOp::SetVertexProp { v, name, value } => {
            db.set_vertex_property(rv(*v, vmap)?, name, value.clone())?;
        }
        TxnOp::SetEdgeProp { e, name, value } => {
            db.set_edge_property(re(*e, emap)?, name, value.clone())?;
        }
        TxnOp::RemoveVertex { v } => {
            db.remove_vertex(rv(*v, vmap)?)?;
        }
        TxnOp::RemoveEdge { e } => {
            db.remove_edge(re(*e, emap)?)?;
        }
        TxnOp::RemoveVertexProp { v, name } => {
            db.remove_vertex_property(rv(*v, vmap)?, name)?;
        }
        TxnOp::RemoveEdgeProp { e, name } => {
            db.remove_edge_property(re(*e, emap)?, name)?;
        }
    }
    Ok(())
}

impl GraphSnapshot for WriteTxn {
    fn name(&self) -> String {
        self.base.name()
    }

    fn features(&self) -> EngineFeatures {
        self.base.features()
    }

    fn epoch(&self) -> u64 {
        self.base_epoch
    }

    fn resolve_vertex(&self, canonical: u64) -> Option<Vid> {
        self.base.resolve_vertex(canonical)
    }

    fn resolve_edge(&self, canonical: u64) -> Option<Eid> {
        self.base.resolve_edge(canonical)
    }

    fn vertex_count(&self, ctx: &QueryCtx) -> GdbResult<u64> {
        let base = self.base.vertex_count(ctx)?;
        Ok(base + self.created_v.len() as u64 - self.removed_v.len() as u64)
    }

    fn edge_count(&self, ctx: &QueryCtx) -> GdbResult<u64> {
        let base = self.base.edge_count(ctx)?;
        Ok(base + self.created_e.len() as u64 - self.removed_e.len() as u64)
    }

    fn edge_label_set(&self, ctx: &QueryCtx) -> GdbResult<Vec<String>> {
        self.base.edge_label_set(ctx)
    }

    fn vertices_with_property(
        &self,
        name: &str,
        value: &Value,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Vid>> {
        self.base.vertices_with_property(name, value, ctx)
    }

    fn edges_with_property(
        &self,
        name: &str,
        value: &Value,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Eid>> {
        self.base.edges_with_property(name, value, ctx)
    }

    fn edges_with_label(&self, label: &str, ctx: &QueryCtx) -> GdbResult<Vec<Eid>> {
        self.base.edges_with_label(label, ctx)
    }

    fn vertex(&self, v: Vid) -> GdbResult<Option<VertexData>> {
        if is_tagged(v.0) {
            return Ok(self.created_v.get(&v.0).map(|(label, props)| {
                let mut props = props.clone();
                Self::overlay_props(&mut props, &self.vprops, v.0);
                VertexData {
                    id: v,
                    label: label.clone(),
                    props,
                }
            }));
        }
        if self.removed_v.contains(&v.0) {
            return Ok(None);
        }
        let mut data = match self.base.vertex(v)? {
            Some(d) => d,
            None => return Ok(None),
        };
        Self::overlay_props(&mut data.props, &self.vprops, v.0);
        Ok(Some(data))
    }

    fn edge(&self, e: Eid) -> GdbResult<Option<EdgeData>> {
        if is_tagged(e.0) {
            return Ok(self.created_e.get(&e.0).map(|(src, dst, label, props)| {
                let mut props = props.clone();
                Self::overlay_props(&mut props, &self.eprops, e.0);
                EdgeData {
                    id: e,
                    src: *src,
                    dst: *dst,
                    label: label.clone(),
                    props,
                }
            }));
        }
        if self.removed_e.contains(&e.0) {
            return Ok(None);
        }
        let mut data = match self.base.edge(e)? {
            Some(d) => d,
            None => return Ok(None),
        };
        Self::overlay_props(&mut data.props, &self.eprops, e.0);
        Ok(Some(data))
    }

    fn neighbors(
        &self,
        v: Vid,
        dir: Direction,
        label: Option<&str>,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Vid>> {
        self.base.neighbors(v, dir, label, ctx)
    }

    fn vertex_edges(
        &self,
        v: Vid,
        dir: Direction,
        label: Option<&str>,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<EdgeRef>> {
        self.base.vertex_edges(v, dir, label, ctx)
    }

    fn vertex_degree(&self, v: Vid, dir: Direction, ctx: &QueryCtx) -> GdbResult<u64> {
        self.base.vertex_degree(v, dir, ctx)
    }

    fn vertex_edge_labels(&self, v: Vid, dir: Direction, ctx: &QueryCtx) -> GdbResult<Vec<String>> {
        self.base.vertex_edge_labels(v, dir, ctx)
    }

    fn scan_vertices<'a>(
        &'a self,
        ctx: &'a QueryCtx,
    ) -> GdbResult<Box<dyn Iterator<Item = GdbResult<Vid>> + 'a>> {
        self.base.scan_vertices(ctx)
    }

    fn scan_edges<'a>(
        &'a self,
        ctx: &'a QueryCtx,
    ) -> GdbResult<Box<dyn Iterator<Item = GdbResult<Eid>> + 'a>> {
        self.base.scan_edges(ctx)
    }

    fn vertex_property(&self, v: Vid, name: &str) -> GdbResult<Option<Value>> {
        if let Some(over) = self.vprops.get(&(v.0, name.to_string())) {
            return Ok(over.clone());
        }
        if is_tagged(v.0) {
            return Ok(self.created_v.get(&v.0).and_then(|(_, props)| {
                props
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, val)| val.clone())
            }));
        }
        if self.removed_v.contains(&v.0) {
            return Ok(None);
        }
        self.base.vertex_property(v, name)
    }

    fn edge_property(&self, e: Eid, name: &str) -> GdbResult<Option<Value>> {
        if let Some(over) = self.eprops.get(&(e.0, name.to_string())) {
            return Ok(over.clone());
        }
        if is_tagged(e.0) {
            return Ok(self.created_e.get(&e.0).and_then(|(_, _, _, props)| {
                props
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, val)| val.clone())
            }));
        }
        if self.removed_e.contains(&e.0) {
            return Ok(None);
        }
        self.base.edge_property(e, name)
    }

    fn edge_endpoints(&self, e: Eid) -> GdbResult<Option<(Vid, Vid)>> {
        if is_tagged(e.0) {
            return Ok(self
                .created_e
                .get(&e.0)
                .map(|(src, dst, _, _)| (*src, *dst)));
        }
        if self.removed_e.contains(&e.0) {
            return Ok(None);
        }
        self.base.edge_endpoints(e)
    }

    fn edge_label(&self, e: Eid) -> GdbResult<Option<String>> {
        if is_tagged(e.0) {
            return Ok(self
                .created_e
                .get(&e.0)
                .map(|(_, _, label, _)| label.clone()));
        }
        if self.removed_e.contains(&e.0) {
            return Ok(None);
        }
        self.base.edge_label(e)
    }

    fn vertex_label(&self, v: Vid) -> GdbResult<Option<String>> {
        if is_tagged(v.0) {
            return Ok(self.created_v.get(&v.0).map(|(label, _)| label.clone()));
        }
        if self.removed_v.contains(&v.0) {
            return Ok(None);
        }
        self.base.vertex_label(v)
    }

    fn degree_scan(&self, dir: Direction, k: u64, ctx: &QueryCtx) -> GdbResult<Vec<Vid>> {
        self.base.degree_scan(dir, k, ctx)
    }

    fn distinct_neighbor_scan(&self, dir: Direction, ctx: &QueryCtx) -> GdbResult<Vec<Vid>> {
        self.base.distinct_neighbor_scan(dir, ctx)
    }

    fn has_vertex_index(&self, prop: &str) -> bool {
        self.base.has_vertex_index(prop)
    }

    fn space(&self) -> SpaceReport {
        self.base.space()
    }
}

impl GraphDb for WriteTxn {
    fn bulk_load(&mut self, _data: &Dataset, _opts: &LoadOptions) -> GdbResult<LoadStats> {
        Err(GdbError::Unsupported(
            "bulk load inside a write transaction".into(),
        ))
    }

    fn add_vertex(&mut self, label: &str, props: &Props) -> GdbResult<Vid> {
        let tag = self.fresh_tag();
        self.created_v
            .insert(tag, (label.to_string(), props.clone()));
        self.ops.push(TxnOp::AddVertex {
            tag,
            label: label.to_string(),
            props: props.clone(),
        });
        Ok(Vid(tag))
    }

    fn add_edge(&mut self, src: Vid, dst: Vid, label: &str, props: &Props) -> GdbResult<Eid> {
        if !self.sees_vertex(src)? {
            return Err(GdbError::VertexNotFound(src.0));
        }
        if !self.sees_vertex(dst)? {
            return Err(GdbError::VertexNotFound(dst.0));
        }
        let tag = self.fresh_tag();
        self.created_e
            .insert(tag, (src, dst, label.to_string(), props.clone()));
        if !is_tagged(src.0) {
            self.keys.insert(TxnKey::Vertex(src.0));
        }
        if !is_tagged(dst.0) {
            self.keys.insert(TxnKey::Vertex(dst.0));
        }
        self.ops.push(TxnOp::AddEdge {
            tag,
            src,
            dst,
            label: label.to_string(),
            props: props.clone(),
        });
        Ok(Eid(tag))
    }

    fn set_vertex_property(&mut self, v: Vid, name: &str, value: Value) -> GdbResult<()> {
        if !self.sees_vertex(v)? {
            return Err(GdbError::VertexNotFound(v.0));
        }
        self.vprops
            .insert((v.0, name.to_string()), Some(value.clone()));
        if !is_tagged(v.0) {
            self.keys.insert(TxnKey::Vertex(v.0));
        }
        self.ops.push(TxnOp::SetVertexProp {
            v,
            name: name.to_string(),
            value,
        });
        Ok(())
    }

    fn set_edge_property(&mut self, e: Eid, name: &str, value: Value) -> GdbResult<()> {
        if !self.sees_edge(e)? {
            return Err(GdbError::EdgeNotFound(e.0));
        }
        self.eprops
            .insert((e.0, name.to_string()), Some(value.clone()));
        if !is_tagged(e.0) {
            self.keys.insert(TxnKey::Edge(e.0));
        }
        self.ops.push(TxnOp::SetEdgeProp {
            e,
            name: name.to_string(),
            value,
        });
        Ok(())
    }

    fn remove_vertex(&mut self, v: Vid) -> GdbResult<()> {
        if !self.sees_vertex(v)? {
            return Err(GdbError::VertexNotFound(v.0));
        }
        if is_tagged(v.0) {
            self.created_v.remove(&v.0);
            // Drop in-txn edges that referenced the dead placeholder (the
            // engine cascade does the same for committed state).
            self.created_e
                .retain(|_, (src, dst, _, _)| src.0 != v.0 && dst.0 != v.0);
        } else {
            self.removed_v.insert(v.0);
            self.keys.insert(TxnKey::Vertex(v.0));
        }
        self.vprops.retain(|(id, _), _| *id != v.0);
        self.ops.push(TxnOp::RemoveVertex { v });
        Ok(())
    }

    fn remove_edge(&mut self, e: Eid) -> GdbResult<()> {
        if !self.sees_edge(e)? {
            return Err(GdbError::EdgeNotFound(e.0));
        }
        if is_tagged(e.0) {
            self.created_e.remove(&e.0);
        } else {
            self.removed_e.insert(e.0);
            self.keys.insert(TxnKey::Edge(e.0));
        }
        self.eprops.retain(|(id, _), _| *id != e.0);
        self.ops.push(TxnOp::RemoveEdge { e });
        Ok(())
    }

    fn remove_vertex_property(&mut self, v: Vid, name: &str) -> GdbResult<Option<Value>> {
        if !self.sees_vertex(v)? {
            return Err(GdbError::VertexNotFound(v.0));
        }
        let prior = self.vertex_property(v, name)?;
        self.vprops.insert((v.0, name.to_string()), None);
        if !is_tagged(v.0) {
            self.keys.insert(TxnKey::Vertex(v.0));
        }
        self.ops.push(TxnOp::RemoveVertexProp {
            v,
            name: name.to_string(),
        });
        Ok(prior)
    }

    fn remove_edge_property(&mut self, e: Eid, name: &str) -> GdbResult<Option<Value>> {
        if !self.sees_edge(e)? {
            return Err(GdbError::EdgeNotFound(e.0));
        }
        let prior = self.edge_property(e, name)?;
        self.eprops.insert((e.0, name.to_string()), None);
        if !is_tagged(e.0) {
            self.keys.insert(TxnKey::Edge(e.0));
        }
        self.ops.push(TxnOp::RemoveEdgeProp {
            e,
            name: name.to_string(),
        });
        Ok(prior)
    }

    fn create_vertex_index(&mut self, _prop: &str) -> GdbResult<()> {
        Err(GdbError::Unsupported(
            "create_vertex_index inside a write transaction".into(),
        ))
    }

    fn sync(&mut self) -> GdbResult<()> {
        // Nothing durable exists until commit.
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CowCell;
    use engine_linked::LinkedGraph;
    use gm_model::testkit;

    fn loaded_cell(n: u64) -> CowCell<LinkedGraph> {
        let cell = CowCell::new(LinkedGraph::v1());
        let data = testkit::chain_dataset(n);
        cell.with_write(&mut |db| {
            db.bulk_load(&data, &LoadOptions::default())?;
            Ok(0)
        })
        .unwrap();
        cell
    }

    #[test]
    fn txn_buffers_and_commit_publishes_atomically() {
        let cell = loaded_cell(10);
        let ctx = QueryCtx::unbounded();
        let mut txn = WriteTxn::begin(&cell).unwrap();
        let v = txn.add_vertex("txn", &vec![]).unwrap();
        assert!(is_tagged(v.0), "in-txn id must be a placeholder");
        let a = txn.resolve_vertex(0).unwrap();
        txn.add_edge(v, a, "spoke", &vec![]).unwrap();
        // RYOW: the txn sees its own writes …
        assert_eq!(txn.vertex_count(&ctx).unwrap(), 11);
        assert_eq!(txn.vertex(v).unwrap().unwrap().label, "txn");
        // … but no concurrent pin does.
        assert_eq!(cell.snapshot().unwrap().vertex_count(&ctx).unwrap(), 10);
        let applied = txn.commit(&cell).unwrap();
        assert_eq!(applied, 2);
        let snap = cell.snapshot().unwrap();
        assert_eq!(snap.vertex_count(&ctx).unwrap(), 11);
        assert_eq!(snap.edge_count(&ctx).unwrap(), 10);
    }

    #[test]
    fn first_committer_wins_between_txns() {
        let cell = loaded_cell(10);
        let target = cell.snapshot().unwrap().resolve_vertex(3).unwrap();
        let mut t1 = WriteTxn::begin(&cell).unwrap();
        let mut t2 = WriteTxn::begin(&cell).unwrap();
        t1.set_vertex_property(target, "w", Value::Int(1)).unwrap();
        t2.set_vertex_property(target, "w", Value::Int(2)).unwrap();
        t1.commit(&cell).unwrap();
        match t2.commit(&cell) {
            Err(GdbError::TxnConflict(why)) => assert!(why.contains("vertex"), "{why}"),
            other => panic!("second committer must conflict, got {other:?}"),
        }
        // First committer's write survived, unmerged.
        let snap = cell.snapshot().unwrap();
        assert_eq!(
            snap.vertex_property(target, "w").unwrap(),
            Some(Value::Int(1))
        );
    }

    #[test]
    fn autocommit_write_conflicts_with_open_txn() {
        let cell = loaded_cell(10);
        let target = cell.snapshot().unwrap().resolve_vertex(5).unwrap();
        let mut txn = WriteTxn::begin(&cell).unwrap();
        txn.set_vertex_property(target, "w", Value::Int(1)).unwrap();
        // An autocommit write to the same vertex lands after the pin.
        cell.with_write(&mut |db| {
            db.set_vertex_property(target, "w", Value::Int(9))?;
            Ok(1)
        })
        .unwrap();
        assert!(matches!(txn.commit(&cell), Err(GdbError::TxnConflict(_))));
    }

    #[test]
    fn disjoint_txns_both_commit() {
        let cell = loaded_cell(10);
        let snap = cell.snapshot().unwrap();
        let va = snap.resolve_vertex(1).unwrap();
        let vb = snap.resolve_vertex(8).unwrap();
        let mut t1 = WriteTxn::begin(&cell).unwrap();
        let mut t2 = WriteTxn::begin(&cell).unwrap();
        t1.set_vertex_property(va, "w", Value::Int(1)).unwrap();
        t2.set_vertex_property(vb, "w", Value::Int(2)).unwrap();
        t1.commit(&cell).unwrap();
        t2.commit(&cell).unwrap();
        let end = cell.snapshot().unwrap();
        assert_eq!(end.vertex_property(va, "w").unwrap(), Some(Value::Int(1)));
        assert_eq!(end.vertex_property(vb, "w").unwrap(), Some(Value::Int(2)));
    }

    #[test]
    fn abort_discards_the_write_set() {
        let cell = loaded_cell(5);
        let ctx = QueryCtx::unbounded();
        let mut txn = WriteTxn::begin(&cell).unwrap();
        txn.add_vertex("gone", &vec![]).unwrap();
        assert_eq!(txn.abort(), 1);
        assert_eq!(cell.snapshot().unwrap().vertex_count(&ctx).unwrap(), 5);
    }

    #[test]
    fn empty_txn_commits_as_noop() {
        let cell = loaded_cell(5);
        drop(cell.snapshot().unwrap()); // settle the post-load publish
        let before = cell.current_epoch();
        let txn = WriteTxn::begin(&cell).unwrap();
        assert_eq!(txn.commit(&cell).unwrap(), 0);
        assert_eq!(
            cell.current_epoch(),
            before,
            "no-op commit publishes nothing"
        );
    }

    #[test]
    fn ryow_overlay_point_reads() {
        let cell = loaded_cell(10);
        let snap = cell.snapshot().unwrap();
        let v3 = snap.resolve_vertex(3).unwrap();
        let mut txn = WriteTxn::begin(&cell).unwrap();
        txn.set_vertex_property(v3, "color", Value::Str("red".into()))
            .unwrap();
        assert_eq!(
            txn.vertex_property(v3, "color").unwrap(),
            Some(Value::Str("red".into()))
        );
        txn.remove_vertex_property(v3, "color").unwrap();
        assert_eq!(txn.vertex_property(v3, "color").unwrap(), None);
        // Remove a base vertex: invisible in the txn, present outside.
        let v7 = snap.resolve_vertex(7).unwrap();
        txn.remove_vertex(v7).unwrap();
        assert!(txn.vertex(v7).unwrap().is_none());
        assert!(!txn.sees_vertex(v7).unwrap());
        assert!(cell.snapshot().unwrap().vertex(v7).unwrap().is_some());
        // In-txn create-then-remove leaves no trace.
        let tmp = txn.add_vertex("tmp", &vec![]).unwrap();
        txn.remove_vertex(tmp).unwrap();
        assert!(txn.vertex(tmp).unwrap().is_none());
    }

    #[test]
    fn trimmed_log_window_conflicts_conservatively() {
        let log = TxnLog::with_cap(2);
        let start = log.seq();
        log.append(vec![TxnKey::Vertex(1)]);
        log.append(vec![TxnKey::Vertex(2)]);
        log.append(vec![TxnKey::Vertex(3)]); // evicts seq 1
        match log.validate(start, &[TxnKey::Vertex(99)]) {
            Err(GdbError::TxnConflict(why)) => assert!(why.contains("trimmed"), "{why}"),
            other => panic!("trimmed window must conflict conservatively, got {other:?}"),
        }
        // A txn that began after the trimmed range validates exactly.
        log.validate(log.seq(), &[TxnKey::Vertex(99)]).unwrap();
    }

    #[test]
    fn keyless_writes_do_not_advance_the_log() {
        let log = TxnLog::new();
        log.append(vec![]);
        assert_eq!(log.seq(), 0);
        log.append(vec![TxnKey::Edge(4)]);
        assert_eq!(log.seq(), 1);
    }

    #[test]
    fn bulk_load_conflicts_with_everything() {
        let log = TxnLog::new();
        let start = log.seq();
        log.append(vec![TxnKey::All]);
        assert!(matches!(
            log.validate(start, &[TxnKey::Vertex(0)]),
            Err(GdbError::TxnConflict(_))
        ));
    }

    #[test]
    fn structural_ops_rejected_inside_txn() {
        let cell = loaded_cell(5);
        let mut txn = WriteTxn::begin(&cell).unwrap();
        assert!(matches!(
            txn.bulk_load(&testkit::chain_dataset(2), &LoadOptions::default()),
            Err(GdbError::Unsupported(_))
        ));
        assert!(matches!(
            txn.create_vertex_index("p"),
            Err(GdbError::Unsupported(_))
        ));
    }
}
