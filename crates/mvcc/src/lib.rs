//! # gm-mvcc — epoch-based snapshot isolation for graphmark engines
//!
//! The workload driver's original concurrency contract puts one `RwLock`
//! around the whole engine: scans hold the shared lock for their full
//! duration (blocking every writer), and write-heavy mixes collapse to one
//! effective writer. This crate adds the alternative the ROADMAP's "MVCC
//! snapshots" item calls for: **readers pin an immutable epoch and run
//! lock-free; writers keep mutating the live engine**.
//!
//! * [`SnapshotSource`] — anything that can hand out pinned, immutable
//!   [`GraphSnapshot`] views of a graph and apply mutations between them.
//!   The epoch counter is strictly monotone per source: a snapshot's
//!   [`GraphSnapshot::epoch`] names the graph version it observes, so every
//!   read sample can be tagged with the version that produced it.
//! * [`CowCell`] — the generic adapter: wraps **any** `GraphDb + Clone`
//!   engine with copy-on-write epochs. Writers clone the published graph on
//!   their *first* write of an epoch and mutate the private copy; pinning a
//!   snapshot publishes the pending copy by move (no clone on the read
//!   path). Cost model: one whole-graph clone per epoch that contains at
//!   least one write — honest but expensive for engines whose `Clone` is a
//!   deep copy.
//! * [`FreezeCell`] — the native-path adapter for engines whose `Clone` is
//!   *structurally cheap* (engine-columnar after its append-only segment
//!   refactor: `Arc`-shared LSM runs and closed [`SegVec`] segments, so a
//!   clone copies only the open tails and small overlay sets). Writers
//!   mutate the live engine in place — no copy-on-write at all — and
//!   pinning freezes a view whose cost is bounded by the open-segment size,
//!   not the graph size.
//!
//! Both cells serialize writers behind one mutex (the paper's systems are
//! single-writer too); the point of snapshot isolation here is that a scan
//! never holds that mutex — it pins an `Arc` and gets out of the way.
//! (`SegVec` lives in `gm_storage::segvec`.)

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use gm_model::api::{
    Direction, EdgeData, EdgeRef, EngineFeatures, GraphDb, GraphSnapshot, SpaceReport, VertexData,
};
use gm_model::lockorder::{self, LockRank};
use gm_model::{lockwait, Eid, GdbError, GdbResult, QueryCtx, Value, Vid};
use gm_obs::{phase, Counter, Gauge, Histo, Phase};

mod txn;
pub use txn::{KeyRecorder, TxnKey, TxnLog, WriteTxn, TXN_ID_TAG, TXN_LOG_CAP_DEFAULT};

/// Which snapshot implementation a harness should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SnapshotMode {
    /// Generic [`CowCell`] copy-on-write epochs for every engine.
    Cow,
    /// Engine-native snapshots where an engine provides them (the columnar
    /// engine's freeze path); engines without a native path fall back to
    /// [`CowCell`].
    Native,
}

impl SnapshotMode {
    /// Stable knob value (`GM_SNAPSHOT_MODE`).
    pub fn name(&self) -> &'static str {
        match self {
            SnapshotMode::Cow => "cow",
            SnapshotMode::Native => "native",
        }
    }

    /// Parse a knob value; `"off"`/unknown return `None`.
    pub fn parse(s: &str) -> Option<SnapshotMode> {
        match s.trim() {
            "cow" => Some(SnapshotMode::Cow),
            "native" => Some(SnapshotMode::Native),
            _ => None,
        }
    }
}

/// A mutation batch executed against the live engine of a source.
pub type WriteFn<'a> = dyn FnMut(&mut dyn GraphDb) -> GdbResult<u64> + 'a;

/// Factory producing fresh, empty snapshot sources — the snapshot-mode
/// analogue of the engine factory (`gm-net`'s `Reset` swaps one in).
pub type SourceFactory = Box<dyn Fn() -> Box<dyn SnapshotSource> + Send + Sync>;

/// Anything that can pin immutable epoch views of a graph while applying
/// mutations between them.
///
/// The contract every implementation upholds:
///
/// * **Pinned views are immutable.** Once [`SnapshotSource::snapshot`]
///   returns, no later write is visible through that view.
/// * **Epochs are monotone.** Each pin observes an epoch ≥ every earlier
///   pin's epoch, and a pin taken after a write observes a *strictly*
///   greater epoch than any pin taken before it.
/// * **Writes are serialized** (single-writer, like the shared `RwLock`
///   contract), but a pinned reader never blocks a writer and a writer
///   never blocks reads against an already-pinned view — only the brief
///   pin operation itself synchronizes with writers.
pub trait SnapshotSource: Send + Sync {
    /// Engine display name (matches `GraphSnapshot::name`).
    fn engine(&self) -> String;

    /// Implementation kind for reports: `"cow"` or `"native"`.
    fn kind(&self) -> &'static str;

    /// Epoch of the most recently published snapshot (0 before any pin).
    fn current_epoch(&self) -> u64;

    /// Pin the current graph version: publishes any pending writes and
    /// returns an immutable view of the result (strict read-your-writes:
    /// every write that completed before this call is visible).
    fn snapshot(&self) -> GdbResult<Box<dyn GraphSnapshot>>;

    /// Pin a **recently published** epoch: like [`SnapshotSource::snapshot`]
    /// except that pending writes younger than `max_staleness` need not be
    /// published — the pin may return the previous epoch instead of paying
    /// a publish (for [`CowCell`] a publish forces the *next* write to
    /// clone the whole graph; for [`FreezeCell`] it is the clone itself).
    ///
    /// This is group commit for epochs: under a pin-per-read workload racing
    /// writers, publishes are rate-limited to one per `max_staleness`, so
    /// the read path degenerates to a mutex-protected `Arc` clone and read
    /// throughput scales with threads instead of serializing behind clones.
    /// Reads may observe a view at most `max_staleness` older than "now" —
    /// still a single consistent epoch, never a torn one. Once pending
    /// writes age past the bound, the next pin publishes them, so a pin
    /// taken quiescently (no writes for `max_staleness`) is exact.
    ///
    /// The default implementation is the strict pin.
    fn snapshot_recent(&self, max_staleness: Duration) -> GdbResult<Box<dyn GraphSnapshot>> {
        let _ = max_staleness;
        self.snapshot()
    }

    /// Run one mutation batch against the live engine. A **successful**
    /// batch is atomic with respect to snapshots: no pin can observe a
    /// proper prefix of it, because the whole batch runs under the writer
    /// mutex and publish points sit between batches. A batch that returns
    /// `Err` partway offers the same (weaker) guarantee as the shared-lock
    /// contract it replaces: mutations applied before the failure remain
    /// applied and become visible at the next publish — multi-part writes
    /// that need all-or-nothing semantics must validate before mutating.
    ///
    /// Sources that support transactions wrap the engine in a
    /// [`KeyRecorder`] and append the touched keys to their [`TxnLog`] on
    /// success, so autocommit batches participate in first-committer-wins
    /// validation.
    fn with_write(&self, f: &mut WriteFn<'_>) -> GdbResult<u64>;

    /// The commit log backing transaction conflict detection, if this
    /// source keeps one. `None` (the default) means [`WriteTxn::commit`]
    /// cannot validate first-committer-wins against this source and
    /// publishes unvalidated — every source in this workspace keeps a log.
    fn txn_log(&self) -> Option<&TxnLog> {
        None
    }

    /// Validate a transaction's write set (first-committer-wins against
    /// commits recorded after `start_seq`) and, only if clean, apply `f` —
    /// both under the writer lock, so no other commit can land in between.
    /// The applied keys reach the log through the source's `with_write`
    /// recording; a [`GdbError::TxnConflict`] guarantees `f` never ran.
    ///
    /// The default runs everything inside one [`SnapshotSource::with_write`]
    /// batch, which is atomic under pins for single-cell sources; sources
    /// whose batches span cells (the sharded composite) override this with
    /// a staged commit.
    fn txn_commit(&self, start_seq: u64, keys: &[TxnKey], f: &mut WriteFn<'_>) -> GdbResult<u64> {
        let mut first = true;
        self.with_write(&mut |db| {
            if first {
                first = false;
                if let Some(log) = self.txn_log() {
                    log.validate(start_seq, keys)?;
                }
            }
            f(db)
        })
    }
}

/// An immutable epoch view: an `Arc` of the engine as it stood when the
/// epoch was published, tagged with the epoch number. Delegates the whole
/// read API — including [`GraphSnapshot::degree_scan`]-style overridable
/// scans, so per-engine physical strategies survive the pin. Doubles as
/// the published-side cell state: cloning bumps the `Arc`, so pinning is
/// exactly `Box::new(published.clone())`.
struct SnapView<E> {
    epoch: u64,
    graph: Arc<E>,
    /// Live-pin bookkeeping handle; `None` on the published (cell-owned)
    /// view and whenever `GM_OBS=off`. Shared by clones of a pinned view:
    /// the snapshot counts as one pin however often it is cloned, released
    /// when the last clone drops.
    pin: Option<Arc<PinGuard>>,
}

impl<E> Clone for SnapView<E> {
    fn clone(&self) -> Self {
        SnapView {
            epoch: self.epoch,
            graph: Arc::clone(&self.graph),
            pin: self.pin.clone(),
        }
    }
}

impl<E: GraphDb + 'static> GraphSnapshot for SnapView<E> {
    fn name(&self) -> String {
        self.graph.name()
    }

    fn features(&self) -> EngineFeatures {
        self.graph.features()
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn resolve_vertex(&self, canonical: u64) -> Option<Vid> {
        self.graph.resolve_vertex(canonical)
    }

    fn resolve_edge(&self, canonical: u64) -> Option<Eid> {
        self.graph.resolve_edge(canonical)
    }

    fn vertex_count(&self, ctx: &QueryCtx) -> GdbResult<u64> {
        self.graph.vertex_count(ctx)
    }

    fn edge_count(&self, ctx: &QueryCtx) -> GdbResult<u64> {
        self.graph.edge_count(ctx)
    }

    fn edge_label_set(&self, ctx: &QueryCtx) -> GdbResult<Vec<String>> {
        self.graph.edge_label_set(ctx)
    }

    fn vertices_with_property(
        &self,
        name: &str,
        value: &Value,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Vid>> {
        self.graph.vertices_with_property(name, value, ctx)
    }

    fn edges_with_property(
        &self,
        name: &str,
        value: &Value,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Eid>> {
        self.graph.edges_with_property(name, value, ctx)
    }

    fn edges_with_label(&self, label: &str, ctx: &QueryCtx) -> GdbResult<Vec<Eid>> {
        self.graph.edges_with_label(label, ctx)
    }

    fn vertex(&self, v: Vid) -> GdbResult<Option<VertexData>> {
        self.graph.vertex(v)
    }

    fn edge(&self, e: Eid) -> GdbResult<Option<EdgeData>> {
        self.graph.edge(e)
    }

    fn neighbors(
        &self,
        v: Vid,
        dir: Direction,
        label: Option<&str>,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Vid>> {
        self.graph.neighbors(v, dir, label, ctx)
    }

    fn vertex_edges(
        &self,
        v: Vid,
        dir: Direction,
        label: Option<&str>,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<EdgeRef>> {
        self.graph.vertex_edges(v, dir, label, ctx)
    }

    fn vertex_degree(&self, v: Vid, dir: Direction, ctx: &QueryCtx) -> GdbResult<u64> {
        self.graph.vertex_degree(v, dir, ctx)
    }

    fn vertex_edge_labels(&self, v: Vid, dir: Direction, ctx: &QueryCtx) -> GdbResult<Vec<String>> {
        self.graph.vertex_edge_labels(v, dir, ctx)
    }

    fn scan_vertices<'a>(
        &'a self,
        ctx: &'a QueryCtx,
    ) -> GdbResult<Box<dyn Iterator<Item = GdbResult<Vid>> + 'a>> {
        self.graph.scan_vertices(ctx)
    }

    fn scan_edges<'a>(
        &'a self,
        ctx: &'a QueryCtx,
    ) -> GdbResult<Box<dyn Iterator<Item = GdbResult<Eid>> + 'a>> {
        self.graph.scan_edges(ctx)
    }

    fn vertex_property(&self, v: Vid, name: &str) -> GdbResult<Option<Value>> {
        self.graph.vertex_property(v, name)
    }

    fn edge_property(&self, e: Eid, name: &str) -> GdbResult<Option<Value>> {
        self.graph.edge_property(e, name)
    }

    fn edge_endpoints(&self, e: Eid) -> GdbResult<Option<(Vid, Vid)>> {
        self.graph.edge_endpoints(e)
    }

    fn edge_label(&self, e: Eid) -> GdbResult<Option<String>> {
        self.graph.edge_label(e)
    }

    fn vertex_label(&self, v: Vid) -> GdbResult<Option<String>> {
        self.graph.vertex_label(v)
    }

    fn degree_scan(&self, dir: Direction, k: u64, ctx: &QueryCtx) -> GdbResult<Vec<Vid>> {
        self.graph.degree_scan(dir, k, ctx)
    }

    fn distinct_neighbor_scan(&self, dir: Direction, ctx: &QueryCtx) -> GdbResult<Vec<Vid>> {
        self.graph.distinct_neighbor_scan(dir, ctx)
    }

    fn has_vertex_index(&self, prop: &str) -> bool {
        self.graph.has_vertex_index(prop)
    }

    fn space(&self) -> SpaceReport {
        self.graph.space()
    }
}

fn poisoned(which: &str) -> GdbError {
    GdbError::Poisoned(format!(
        "snapshot source {which} mutex poisoned by a panicking writer"
    ))
}

// ----- observability -------------------------------------------------------

/// Live-pin bookkeeping for one cell: which epochs are still held by
/// outstanding [`GraphSnapshot`] views, since when, and how many bytes each
/// retains. This is the "snapshot GC" view — epochs a writer can no longer
/// reclaim because a reader still holds them. Tracking takes a short mutex
/// on pin/unpin, so it only runs under `GM_OBS=counters|phases`; with
/// `GM_OBS=off` the pin path stays an `Arc` clone.
///
/// Byte accounting is per retained epoch and deliberately ignores structural
/// sharing between epochs (cheap-clone engines share closed segments), so
/// the gauge is an upper bound on what live pins keep alive.
struct PinTable {
    origin: Instant,
    epochs: Mutex<BTreeMap<u64, EpochPins>>,
    live_pins: Gauge,
    retained_epochs: Gauge,
    oldest_pin_age_us: Gauge,
    retained_bytes: Gauge,
}

struct EpochPins {
    pins: u64,
    bytes: u64,
    first_pin_micros: u64,
}

impl PinTable {
    fn new(g: &gm_obs::Registry, kind: &str) -> PinTable {
        PinTable {
            origin: Instant::now(),
            epochs: Mutex::new(BTreeMap::new()),
            live_pins: g.gauge(&format!("mvcc.{kind}.live_pins")),
            retained_epochs: g.gauge(&format!("mvcc.{kind}.retained_epochs")),
            oldest_pin_age_us: g.gauge(&format!("mvcc.{kind}.oldest_pin_age_us")),
            retained_bytes: g.gauge(&format!("mvcc.{kind}.retained_bytes")),
        }
    }

    fn pin(self: &Arc<Self>, epoch: u64, bytes: u64) -> Arc<PinGuard> {
        let now = self.origin.elapsed().as_micros() as u64;
        // gm-lock: leaf
        let _t = lockorder::acquire(LockRank::Leaf, "gm-mvcc/lib.rs pin table pin");
        // The table holds only bookkeeping gauges: a pinner that panicked
        // while holding the lock leaves the counters merely stale, never the
        // graph state wrong — so recover the guard instead of letting one
        // panic poison every later reader's pin path.
        let mut map = self.epochs.lock().unwrap_or_else(|p| p.into_inner());
        let entry = map.entry(epoch).or_insert(EpochPins {
            pins: 0,
            bytes,
            first_pin_micros: now,
        });
        entry.pins += 1;
        self.refresh(&map, now);
        drop(map);
        Arc::new(PinGuard {
            table: Arc::clone(self),
            epoch,
        })
    }

    fn unpin(&self, epoch: u64) {
        let now = self.origin.elapsed().as_micros() as u64;
        // gm-lock: leaf
        let _t = lockorder::acquire(LockRank::Leaf, "gm-mvcc/lib.rs pin table unpin");
        // Bookkeeping-only state: recover a poisoned guard (see `pin`).
        let mut map = self.epochs.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(entry) = map.get_mut(&epoch) {
            entry.pins -= 1;
            if entry.pins == 0 {
                map.remove(&epoch);
            }
        }
        self.refresh(&map, now);
    }

    /// Recompute the gauges from the table (caller holds the lock). Gauges
    /// are event-driven: they hold the state as of the last pin/unpin, which
    /// under any live workload is effectively current.
    fn refresh(&self, map: &BTreeMap<u64, EpochPins>, now_micros: u64) {
        self.live_pins
            .set(map.values().map(|e| e.pins).sum::<u64>() as i64);
        self.retained_epochs.set(map.len() as i64);
        self.retained_bytes
            .set(map.values().map(|e| e.bytes).sum::<u64>() as i64);
        let oldest = map
            .values()
            .map(|e| now_micros.saturating_sub(e.first_pin_micros))
            .max()
            .unwrap_or(0);
        self.oldest_pin_age_us.set(oldest as i64);
    }
}

/// Drop guard carried by a pinned view; the last clone of a snapshot
/// releases the epoch in the cell's [`PinTable`].
struct PinGuard {
    table: Arc<PinTable>,
    epoch: u64,
}

impl Drop for PinGuard {
    fn drop(&mut self) {
        self.table.unpin(self.epoch);
    }
}

/// Registry handles for one snapshot cell, resolved once at construction so
/// the hot path never touches the registry's name map. Only built when
/// `GM_OBS` is `counters` or `phases` at cell-construction time; cells of
/// the same kind share metric names and therefore aggregate.
struct CellMetrics {
    pins: Counter,
    /// Pins that deliberately returned a stale epoch (group commit deferred
    /// the publish) — the epoch-lag side of `snapshot_recent`.
    stale_pins: Counter,
    publishes: Counter,
    /// Duration of the whole-graph (cow) / open-tail (native) clone.
    clone_nanos: Histo,
    /// Writes batched into each publish — the epoch group-commit size.
    commit_batch: Histo,
    /// Epoch of the most recently published snapshot.
    epoch: Gauge,
    pin_table: Arc<PinTable>,
    /// Writes since the last publish (drained into `commit_batch`).
    pending_writes: AtomicU64,
    /// `space()` total of the currently published graph, attached to pins.
    published_bytes: AtomicU64,
}

impl CellMetrics {
    fn new(kind: &str) -> Option<CellMetrics> {
        if !gm_obs::counters_on() {
            return None;
        }
        let g = gm_obs::global();
        Some(CellMetrics {
            pins: g.counter(&format!("mvcc.{kind}.pins")),
            stale_pins: g.counter(&format!("mvcc.{kind}.stale_pins")),
            publishes: g.counter(&format!("mvcc.{kind}.publishes")),
            clone_nanos: g.histogram(&format!("mvcc.{kind}.clone_nanos")),
            commit_batch: g.histogram(&format!("mvcc.{kind}.commit_batch")),
            epoch: g.gauge(&format!("mvcc.{kind}.epoch")),
            pin_table: Arc::new(PinTable::new(g, kind)),
            pending_writes: AtomicU64::new(0),
            published_bytes: AtomicU64::new(0),
        })
    }

    fn on_write(&self) {
        // gm-check: relaxed(metrics counter: drained by swap at publish, no ordering consumer)
        self.pending_writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a publish: the new epoch, how many writes it batched, and the
    /// published graph's space total (what a pin of this epoch retains).
    fn on_publish(&self, epoch: u64, graph: &dyn GraphSnapshot) {
        self.publishes.inc();
        self.epoch.set(epoch as i64);
        // gm-check: relaxed(metrics counter: publish runs under the writer mutex, no racing consumer)
        self.commit_batch
            .record(self.pending_writes.swap(0, Ordering::Relaxed));
        // gm-check: relaxed(metrics gauge: pins read a best-effort size estimate, staleness is fine)
        self.published_bytes
            .store(graph.space().total(), Ordering::Relaxed);
    }

    fn on_pin(&self, epoch: u64) -> Arc<PinGuard> {
        self.pins.inc();
        // gm-check: relaxed(metrics gauge: best-effort size estimate attached to the pin)
        self.pin_table
            .pin(epoch, self.published_bytes.load(Ordering::Relaxed))
    }
}

// ----- shared cell plumbing ------------------------------------------------

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// The published (immutable) side of a cell is a [`SnapView`] behind an
/// `RwLock`, so the pin fast path is a **shared** read — concurrent pins
/// clone the `Arc` without ever contending an exclusive lock, which is
/// what lets read throughput scale with threads (an exclusive mutex on the
/// pin path degenerates into futex handoff storms under pin-per-read
/// workloads).
///
/// Lock-free dirtiness clock: microseconds-since-`origin` of the first
/// unpublished write (0 = clean). Lets the pin fast path decide "is a
/// publish due?" without touching the writer mutex.
struct DirtyClock {
    origin: Instant,
    dirty_at: AtomicU64,
}

impl DirtyClock {
    fn new() -> Self {
        DirtyClock {
            origin: Instant::now(),
            dirty_at: AtomicU64::new(0),
        }
    }

    fn mark_dirty(&self) {
        let micros = self.origin.elapsed().as_micros().max(1) as u64;
        self.dirty_at.store(micros, Ordering::SeqCst);
    }

    fn clear(&self) {
        self.dirty_at.store(0, Ordering::SeqCst);
    }

    fn is_dirty(&self) -> bool {
        self.dirty_at.load(Ordering::SeqCst) != 0
    }

    /// Dirty for at least `bound`?
    fn dirty_past(&self, bound: Duration) -> bool {
        let at = self.dirty_at.load(Ordering::SeqCst);
        at != 0
            && self
                .origin
                .elapsed()
                .saturating_sub(Duration::from_micros(at))
                >= bound
    }
}

// ----- CowCell --------------------------------------------------------------

/// Generic copy-on-write snapshot source over any cloneable engine.
///
/// See the crate docs for the cost model. The interesting property for the
/// workload driver: **scans never block writers** — a pinned reader works on
/// its `Arc` while writers mutate the working copy — and the pin fast path
/// is a shared-lock `Arc` clone, so pins don't even serialize against each
/// other; only a *due publish* takes the writer mutex.
pub struct CowCell<E: GraphDb + Clone> {
    engine: String,
    /// The writers' private copy for the pending epoch: cloned from the
    /// published graph on the first write of the epoch, published (by move)
    /// at the next due pin. `None` = no writes since the last publish.
    working: Mutex<Option<E>>,
    published: RwLock<SnapView<E>>,
    dirty: DirtyClock,
    metrics: Option<CellMetrics>,
    txn_log: TxnLog,
}

impl<E: GraphDb + Clone + 'static> CowCell<E> {
    /// Wrap an engine (typically freshly constructed and still empty; load
    /// it through [`SnapshotSource::with_write`]).
    pub fn new(engine: E) -> Self {
        CowCell {
            engine: engine.name(),
            working: Mutex::new(None),
            published: RwLock::new(SnapView {
                epoch: 0,
                graph: Arc::new(engine),
                pin: None,
            }),
            dirty: DirtyClock::new(),
            metrics: CellMetrics::new("cow"),
            txn_log: TxnLog::new(),
        }
    }

    fn publish_pending(&self) -> GdbResult<()> {
        let _span = phase::span(Phase::ClonePublish);
        // gm-lock: cell-writer
        let _tw = lockorder::acquire(LockRank::CellWriter, "gm-mvcc/lib.rs cow publish");
        let mut working =
            lockwait::timed(|| self.working.lock()).map_err(|_| poisoned("cow writer"))?;
        if let Some(pending) = working.take() {
            // gm-lock: cell-published
            let _tp =
                lockorder::acquire(LockRank::CellPublished, "gm-mvcc/lib.rs cow publish swap");
            let mut published = lockwait::timed(|| self.published.write())
                .map_err(|_| poisoned("cow published"))?;
            published.epoch += 1;
            published.graph = Arc::new(pending);
            self.dirty.clear();
            if let Some(m) = &self.metrics {
                m.on_publish(published.epoch, &*published.graph);
            }
        }
        Ok(())
    }

    fn pinned(&self) -> GdbResult<Box<dyn GraphSnapshot>> {
        let mut view = {
            // gm-lock: cell-published
            let _t = lockorder::acquire(LockRank::CellPublished, "gm-mvcc/lib.rs cow pin");
            lockwait::timed(|| self.published.read())
                .map_err(|_| poisoned("cow published"))?
                .clone()
        };
        if let Some(m) = &self.metrics {
            view.pin = Some(m.on_pin(view.epoch));
        }
        Ok(Box::new(view))
    }
}

impl<E: GraphDb + Clone + 'static> SnapshotSource for CowCell<E> {
    fn engine(&self) -> String {
        self.engine.clone()
    }

    fn kind(&self) -> &'static str {
        "cow"
    }

    fn current_epoch(&self) -> u64 {
        // gm-lock: cell-published transient
        let _t = lockorder::acquire(LockRank::CellPublished, "gm-mvcc/lib.rs cow epoch probe");
        self.published.read().map(|p| p.epoch).unwrap_or(0)
    }

    fn snapshot(&self) -> GdbResult<Box<dyn GraphSnapshot>> {
        if self.dirty.is_dirty() {
            self.publish_pending()?;
        }
        self.pinned()
    }

    fn snapshot_recent(&self, max_staleness: Duration) -> GdbResult<Box<dyn GraphSnapshot>> {
        // Group commit: only publish once the pending epoch has aged past
        // the staleness bound. A publish forces the next write to re-clone
        // the whole graph, so rate-limiting publishes bounds the clone rate
        // no matter how hot the pin-per-read path runs.
        if self.dirty.dirty_past(max_staleness) {
            self.publish_pending()?;
        } else if self.dirty.is_dirty() {
            if let Some(m) = &self.metrics {
                m.stale_pins.inc();
            }
        }
        self.pinned()
    }

    fn with_write(&self, f: &mut WriteFn<'_>) -> GdbResult<u64> {
        // gm-lock: cell-writer
        let _tw = lockorder::acquire(LockRank::CellWriter, "gm-mvcc/lib.rs cow write");
        let mut working =
            lockwait::timed(|| self.working.lock()).map_err(|_| poisoned("cow writer"))?;
        // Clone-on-first-write per epoch: later writes of the same epoch
        // reuse the private copy. The dirty mark lands before the mutation
        // so a strict pin racing this write either misses it entirely (the
        // write has not completed) or publishes it.
        if working.is_none() {
            let base = {
                // gm-lock: cell-published transient
                let _tp =
                    lockorder::acquire(LockRank::CellPublished, "gm-mvcc/lib.rs cow write base");
                Arc::clone(
                    &lockwait::timed(|| self.published.read())
                        .map_err(|_| poisoned("cow published"))?
                        .graph,
                )
            };
            self.dirty.mark_dirty();
            let _span = phase::span(Phase::ClonePublish);
            let t0 = self.metrics.as_ref().map(|_| Instant::now());
            *working = Some((*base).clone());
            if let (Some(m), Some(t0)) = (&self.metrics, t0) {
                m.clone_nanos.record(t0.elapsed().as_nanos() as u64);
            }
        }
        if let Some(m) = &self.metrics {
            m.on_write();
        }
        // Record the touched write-set keys for txn conflict detection;
        // append only when the whole batch succeeded (failed batches are
        // the existing weaker contract and never validate as commits).
        let engine: &mut dyn GraphDb = working.as_mut().expect("just inserted");
        let mut rec = KeyRecorder::new(engine);
        let out = f(&mut rec);
        if out.is_ok() {
            self.txn_log.append(rec.take_keys());
        }
        out
    }

    fn txn_log(&self) -> Option<&TxnLog> {
        Some(&self.txn_log)
    }
}

// ----- FreezeCell -----------------------------------------------------------

/// Freeze-on-pin snapshot source for engines whose `Clone` is structurally
/// cheap (shared immutable segments, small mutable tails).
///
/// Unlike [`CowCell`] there is **no copy-on-write**: writers mutate the live
/// engine directly and pay nothing; a *due* pin that follows a write
/// freezes a new view, whose cost is the engine's (cheap) clone. Safe
/// because a cheap-clone engine shares only *immutable* structure between
/// the clone and the live graph — closed `SegVec` segments and flushed LSM
/// runs are never mutated in place, so the frozen view cannot observe later
/// writes. The pin fast path is the same shared-lock `Arc` clone as
/// [`CowCell`]'s.
pub struct FreezeCell<E: GraphDb + Clone> {
    engine: String,
    /// The live engine; writers mutate it **in place**.
    live: Mutex<E>,
    /// The most recent frozen view; may lag `live` by the writes recorded
    /// in the dirty clock.
    published: RwLock<SnapView<E>>,
    dirty: DirtyClock,
    metrics: Option<CellMetrics>,
    txn_log: TxnLog,
}

impl<E: GraphDb + Clone + 'static> FreezeCell<E> {
    /// Wrap an engine whose clones share structure with the original.
    pub fn new(engine: E) -> Self {
        let frozen = Arc::new(engine.clone());
        FreezeCell {
            engine: engine.name(),
            live: Mutex::new(engine),
            published: RwLock::new(SnapView {
                epoch: 0,
                graph: frozen,
                pin: None,
            }),
            dirty: DirtyClock::new(),
            metrics: CellMetrics::new("native"),
            txn_log: TxnLog::new(),
        }
    }

    fn refreeze(&self) -> GdbResult<()> {
        let _span = phase::span(Phase::ClonePublish);
        // gm-lock: cell-writer
        let _tw = lockorder::acquire(LockRank::CellWriter, "gm-mvcc/lib.rs freeze refreeze");
        let live = lockwait::timed(|| self.live.lock()).map_err(|_| poisoned("freeze writer"))?;
        if !self.dirty.is_dirty() {
            return Ok(()); // another pin refroze while we waited
        }
        let t0 = self.metrics.as_ref().map(|_| Instant::now());
        let frozen = Arc::new(live.clone());
        if let (Some(m), Some(t0)) = (&self.metrics, t0) {
            m.clone_nanos.record(t0.elapsed().as_nanos() as u64);
        }
        // gm-lock: cell-published
        let _tp = lockorder::acquire(
            LockRank::CellPublished,
            "gm-mvcc/lib.rs freeze publish swap",
        );
        let mut published =
            lockwait::timed(|| self.published.write()).map_err(|_| poisoned("freeze published"))?;
        published.epoch += 1;
        published.graph = frozen;
        self.dirty.clear();
        if let Some(m) = &self.metrics {
            m.on_publish(published.epoch, &*published.graph);
        }
        Ok(())
    }

    fn pinned(&self) -> GdbResult<Box<dyn GraphSnapshot>> {
        let mut view = {
            // gm-lock: cell-published
            let _t = lockorder::acquire(LockRank::CellPublished, "gm-mvcc/lib.rs freeze pin");
            lockwait::timed(|| self.published.read())
                .map_err(|_| poisoned("freeze published"))?
                .clone()
        };
        if let Some(m) = &self.metrics {
            view.pin = Some(m.on_pin(view.epoch));
        }
        Ok(Box::new(view))
    }
}

impl<E: GraphDb + Clone + 'static> SnapshotSource for FreezeCell<E> {
    fn engine(&self) -> String {
        self.engine.clone()
    }

    fn kind(&self) -> &'static str {
        "native"
    }

    fn current_epoch(&self) -> u64 {
        // gm-lock: cell-published transient
        let _t = lockorder::acquire(LockRank::CellPublished, "gm-mvcc/lib.rs freeze epoch probe");
        self.published.read().map(|p| p.epoch).unwrap_or(0)
    }

    fn snapshot(&self) -> GdbResult<Box<dyn GraphSnapshot>> {
        if self.dirty.is_dirty() {
            self.refreeze()?;
        }
        self.pinned()
    }

    fn snapshot_recent(&self, max_staleness: Duration) -> GdbResult<Box<dyn GraphSnapshot>> {
        // Group commit: refreeze only once the live engine has been dirty
        // for at least the staleness bound, so the (cheap but not free)
        // freeze clone is rate-limited under pin-per-read workloads.
        if self.dirty.dirty_past(max_staleness) {
            self.refreeze()?;
        } else if self.dirty.is_dirty() {
            if let Some(m) = &self.metrics {
                m.stale_pins.inc();
            }
        }
        self.pinned()
    }

    fn with_write(&self, f: &mut WriteFn<'_>) -> GdbResult<u64> {
        // gm-lock: cell-writer
        let _tw = lockorder::acquire(LockRank::CellWriter, "gm-mvcc/lib.rs freeze write");
        let mut live =
            lockwait::timed(|| self.live.lock()).map_err(|_| poisoned("freeze writer"))?;
        // Stamp only the *first* write after a freeze: the staleness bound
        // measures the oldest unpublished write, so a continuous write
        // stream cannot starve publishes by forever refreshing the stamp.
        if !self.dirty.is_dirty() {
            self.dirty.mark_dirty();
        }
        if let Some(m) = &self.metrics {
            m.on_write();
        }
        // See `CowCell::with_write`: record keys, append on success.
        let mut rec = KeyRecorder::new(&mut *live);
        let out = f(&mut rec);
        if out.is_ok() {
            self.txn_log.append(rec.take_keys());
        }
        out
    }

    fn txn_log(&self) -> Option<&TxnLog> {
        Some(&self.txn_log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine_linked::LinkedGraph;
    use gm_model::api::LoadOptions;
    use gm_model::testkit;

    fn loaded_cell(n: u64) -> CowCell<LinkedGraph> {
        let cell = CowCell::new(LinkedGraph::v1());
        let data = testkit::chain_dataset(n);
        cell.with_write(&mut |db| {
            db.bulk_load(&data, &LoadOptions::default())?;
            Ok(0)
        })
        .unwrap();
        cell
    }

    #[test]
    fn pinned_snapshot_is_immutable() {
        let cell = loaded_cell(50);
        let ctx = QueryCtx::unbounded();
        let snap = cell.snapshot().unwrap();
        assert_eq!(snap.vertex_count(&ctx).unwrap(), 50);
        for _ in 0..10 {
            cell.with_write(&mut |db| db.add_vertex("n", &vec![]).map(|_| 1))
                .unwrap();
        }
        // The pinned view still answers from its epoch.
        assert_eq!(snap.vertex_count(&ctx).unwrap(), 50);
        // A fresh pin sees the writes, at a strictly greater epoch.
        let snap2 = cell.snapshot().unwrap();
        assert_eq!(snap2.vertex_count(&ctx).unwrap(), 60);
        assert!(snap2.epoch() > snap.epoch());
    }

    #[test]
    fn epochs_advance_only_on_writes() {
        let cell = loaded_cell(10);
        let a = cell.snapshot().unwrap();
        let b = cell.snapshot().unwrap();
        assert_eq!(a.epoch(), b.epoch(), "read-only pins share the epoch");
        cell.with_write(&mut |db| db.add_vertex("n", &vec![]).map(|_| 1))
            .unwrap();
        assert_eq!(
            cell.current_epoch(),
            a.epoch(),
            "epoch advances at publish, not at write"
        );
        let c = cell.snapshot().unwrap();
        assert_eq!(c.epoch(), a.epoch() + 1);
        assert_eq!(cell.current_epoch(), c.epoch());
    }

    #[test]
    fn write_batches_are_atomic_under_pins() {
        let cell = loaded_cell(10);
        let ctx = QueryCtx::unbounded();
        // One batch adds a vertex and two edges; no pin can see a prefix.
        cell.with_write(&mut |db| {
            let v = db.add_vertex("hub", &vec![])?;
            let a = db.resolve_vertex(0).unwrap();
            db.add_edge(v, a, "spoke", &vec![])?;
            db.add_edge(a, v, "spoke", &vec![])?;
            Ok(3)
        })
        .unwrap();
        let snap = cell.snapshot().unwrap();
        assert_eq!(snap.vertex_count(&ctx).unwrap(), 11);
        assert_eq!(snap.edge_count(&ctx).unwrap(), 9 + 2);
    }

    #[test]
    fn freeze_cell_matches_cow_semantics() {
        let cow = loaded_cell(30);
        let frz = FreezeCell::new(LinkedGraph::v1());
        let data = testkit::chain_dataset(30);
        frz.with_write(&mut |db| {
            db.bulk_load(&data, &LoadOptions::default())?;
            Ok(0)
        })
        .unwrap();
        let ctx = QueryCtx::unbounded();
        let (sc, sf) = (cow.snapshot().unwrap(), frz.snapshot().unwrap());
        assert_eq!(
            sc.vertex_count(&ctx).unwrap(),
            sf.vertex_count(&ctx).unwrap()
        );
        assert_eq!(sc.epoch(), sf.epoch());
        // Writes after the pin are invisible to both pinned views.
        for cell in [&cow as &dyn SnapshotSource, &frz] {
            cell.with_write(&mut |db| db.add_vertex("n", &vec![]).map(|_| 1))
                .unwrap();
        }
        assert_eq!(sc.vertex_count(&ctx).unwrap(), 30);
        assert_eq!(sf.vertex_count(&ctx).unwrap(), 30);
        assert_eq!(frz.snapshot().unwrap().vertex_count(&ctx).unwrap(), 31);
    }

    #[test]
    fn concurrent_readers_and_writer() {
        let cell = loaded_cell(100);
        let ctx = QueryCtx::unbounded();
        std::thread::scope(|s| {
            let writer = s.spawn(|| {
                for _ in 0..200 {
                    cell.with_write(&mut |db| db.add_vertex("w", &vec![]).map(|_| 1))
                        .unwrap();
                }
            });
            for _ in 0..4 {
                s.spawn(|| {
                    let mut last = 0u64;
                    for _ in 0..50 {
                        let snap = cell.snapshot().unwrap();
                        let n = snap.vertex_count(&QueryCtx::unbounded()).unwrap();
                        assert!((100..=300).contains(&n), "count {n} out of range");
                        assert!(snap.epoch() >= last, "epochs must be monotone");
                        last = snap.epoch();
                    }
                });
            }
            writer.join().unwrap();
        });
        let end = cell.snapshot().unwrap();
        assert_eq!(end.vertex_count(&ctx).unwrap(), 300);
    }

    #[test]
    fn snapshot_mode_parses() {
        assert_eq!(SnapshotMode::parse("cow"), Some(SnapshotMode::Cow));
        assert_eq!(SnapshotMode::parse(" native "), Some(SnapshotMode::Native));
        assert_eq!(SnapshotMode::parse("off"), None);
        assert_eq!(SnapshotMode::parse("bogus"), None);
        assert_eq!(SnapshotMode::Cow.name(), "cow");
        assert_eq!(SnapshotMode::Native.name(), "native");
    }

    /// The snapshot-GC pin table: live pins, retained epochs, retained
    /// bytes, and oldest-pin age tracked through pin/unpin against a
    /// private registry (the global one is shared across parallel tests).
    #[test]
    fn pin_table_tracks_retained_epochs_and_bytes() {
        let reg = gm_obs::Registry::new();
        let table = Arc::new(PinTable::new(&reg, "test"));
        let a = table.pin(3, 1_000);
        let b = table.pin(3, 1_000);
        let c = table.pin(4, 1_400);
        assert_eq!(reg.gauge("mvcc.test.live_pins").get(), 3);
        assert_eq!(reg.gauge("mvcc.test.retained_epochs").get(), 2);
        assert_eq!(reg.gauge("mvcc.test.retained_bytes").get(), 2_400);
        drop(a);
        assert_eq!(
            reg.gauge("mvcc.test.live_pins").get(),
            2,
            "epoch 3 still pinned once"
        );
        assert_eq!(reg.gauge("mvcc.test.retained_epochs").get(), 2);
        drop(b);
        assert_eq!(
            reg.gauge("mvcc.test.retained_epochs").get(),
            1,
            "epoch 3 released"
        );
        assert_eq!(reg.gauge("mvcc.test.retained_bytes").get(), 1_400);
        drop(c);
        assert_eq!(reg.gauge("mvcc.test.live_pins").get(), 0);
        assert_eq!(reg.gauge("mvcc.test.retained_epochs").get(), 0);
        assert_eq!(reg.gauge("mvcc.test.retained_bytes").get(), 0);
        assert_eq!(reg.gauge("mvcc.test.oldest_pin_age_us").get(), 0);
    }

    /// Cells export pin/publish counters into the global registry (default
    /// mode is `phases`, so counters are live). Counters are monotone and
    /// shared across tests, so assert on before/after deltas.
    #[test]
    fn cells_export_pin_and_publish_counters() {
        let snap_before = gm_obs::global().snapshot();
        let cell = loaded_cell(20);
        let s1 = cell.snapshot().unwrap();
        let s2 = cell.snapshot().unwrap();
        cell.with_write(&mut |db| db.add_vertex("n", &vec![]).map(|_| 1))
            .unwrap();
        let s3 = cell.snapshot().unwrap();
        drop((s1, s2, s3));
        let snap_after = gm_obs::global().snapshot();
        assert!(
            snap_after.counter("mvcc.cow.pins") >= snap_before.counter("mvcc.cow.pins") + 3,
            "three pins must be counted"
        );
        assert!(
            snap_after.counter("mvcc.cow.publishes")
                >= snap_before.counter("mvcc.cow.publishes") + 2,
            "bulk load + added vertex both published"
        );
        let clones = snap_after.hist("mvcc.cow.clone_nanos").unwrap();
        assert!(clones.count >= 1, "clone-on-first-write must be timed");
    }

    /// Regression: a panic while holding the pin-table mutex must not crash
    /// every later pinner — the table is bookkeeping only, so the poisoned
    /// guard is recovered instead of propagated.
    #[test]
    fn poisoned_pin_table_keeps_serving_pins() {
        let reg = gm_obs::Registry::new();
        let table = Arc::new(PinTable::new(&reg, "poisontest"));
        let t2 = Arc::clone(&table);
        // Poison the mutex: panic while the guard is held.
        let _ = std::thread::spawn(move || {
            let _guard = t2.epochs.lock().unwrap();
            panic!("deliberate panic with pin table lock held");
        })
        .join();
        assert!(
            table.epochs.lock().is_err(),
            "mutex must actually be poisoned"
        );
        // Pin and unpin must still work and keep the gauges coherent.
        let a = table.pin(1, 100);
        let b = table.pin(2, 200);
        assert_eq!(reg.gauge("mvcc.poisontest.live_pins").get(), 2);
        assert_eq!(reg.gauge("mvcc.poisontest.retained_epochs").get(), 2);
        drop(a);
        drop(b);
        assert_eq!(reg.gauge("mvcc.poisontest.live_pins").get(), 0);
        assert_eq!(reg.gauge("mvcc.poisontest.retained_epochs").get(), 0);
    }

    #[test]
    fn poisoned_writer_surfaces_as_poisoned_error() {
        let cell = loaded_cell(10);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = cell.with_write(&mut |_| panic!("deliberate writer panic"));
        }));
        assert!(result.is_err());
        match cell.snapshot() {
            Err(GdbError::Poisoned(why)) => assert!(why.contains("poisoned"), "{why}"),
            Err(e) => panic!("expected Poisoned after writer panic, got {e}"),
            Ok(_) => panic!("snapshot must fail after a writer panic"),
        }
    }
}
