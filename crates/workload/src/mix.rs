//! Declarative workload mixes.
//!
//! A [`Mix`] is a weighted bag of operations — the paper's microbenchmark
//! reads (Table 2, executed through `gm_core::catalog`) plus CUD writes —
//! from which each worker draws with its own seeded RNG. Scenario diversity
//! is therefore declarative: a scenario is a name and a weight table, not a
//! hand-written loop. The stock mixes mirror the classic macro-workload
//! shapes (read-heavy, write-heavy, scan-heavy, mixed) while staying
//! composed of the paper's primitive operations.

use gm_core::catalog::{QueryId, QueryInstance};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A write operation issued by the driver under the exclusive lock.
///
/// Writes are designed to stay valid under concurrency without coordination:
/// vertices/edges are only *added*, properties are written under
/// worker-unique names, and deletions target edges the same worker created
/// earlier — so no worker ever invalidates another worker's (or the shared
/// read workload's) resolved ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOp {
    /// Q2-shaped: add a vertex with a small property payload.
    AddVertex,
    /// Q3-shaped: add an edge between two pre-drawn existing vertices.
    AddEdge,
    /// Q5-shaped: upsert a worker-unique property on the anchor vertex.
    SetVertexProp,
    /// Q19-shaped: remove an edge this worker added earlier (falls back to
    /// `AddVertex` when the worker has none left).
    RemoveOwnEdge,
}

/// One operation drawn from a mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// A read-only microbenchmark query (runs under the shared lock).
    Read(QueryInstance),
    /// A CUD write (runs under the exclusive lock).
    Write(WriteOp),
}

impl Op {
    /// Whether this op takes the exclusive lock.
    pub fn is_write(&self) -> bool {
        matches!(self, Op::Write(_))
    }

    /// Compact trace-record op code: the query number for reads, `200 +
    /// write-op index` for writes (rendered back by
    /// `gm_obs::trace::op_code_label` as `Q23` / `W1`). Fits the fixed-size
    /// trace record, where the string label cannot.
    pub fn trace_code(&self) -> u16 {
        match self {
            Op::Read(inst) => inst.id.number() as u16,
            Op::Write(w) => 200 + *w as u16,
        }
    }

    /// Short display label (`"Q23"`, `"W:add_edge"`).
    pub fn label(&self) -> String {
        match self {
            Op::Read(inst) => inst.name(),
            Op::Write(WriteOp::AddVertex) => "W:add_vertex".into(),
            Op::Write(WriteOp::AddEdge) => "W:add_edge".into(),
            Op::Write(WriteOp::SetVertexProp) => "W:set_prop".into(),
            Op::Write(WriteOp::RemoveOwnEdge) => "W:remove_edge".into(),
        }
    }
}

/// The stock scenario shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MixKind {
    /// Pure reads — the configuration whose concurrent results must match a
    /// sequential run bit for bit.
    ReadOnly,
    /// ~90% reads, ~10% writes.
    ReadHeavy,
    /// ~70% writes.
    WriteHeavy,
    /// Whole-graph scans and filters (pure reads, heavy ones).
    ScanHeavy,
    /// A broad blend of everything.
    Mixed,
}

impl MixKind {
    /// All stock mixes.
    pub const ALL: [MixKind; 5] = [
        MixKind::ReadOnly,
        MixKind::ReadHeavy,
        MixKind::WriteHeavy,
        MixKind::ScanHeavy,
        MixKind::Mixed,
    ];

    /// Stable name.
    pub fn name(&self) -> &'static str {
        match self {
            MixKind::ReadOnly => "read-only",
            MixKind::ReadHeavy => "read-heavy",
            MixKind::WriteHeavy => "write-heavy",
            MixKind::ScanHeavy => "scan-heavy",
            MixKind::Mixed => "mixed",
        }
    }

    /// Parse a name back to a kind.
    pub fn parse(name: &str) -> Option<MixKind> {
        MixKind::ALL.iter().copied().find(|k| k.name() == name)
    }

    /// Build the weight table for this kind.
    pub fn mix(&self) -> Mix {
        Mix::of(*self)
    }
}

/// A named, weighted operation bag.
#[derive(Debug, Clone)]
pub struct Mix {
    name: &'static str,
    entries: Vec<(u32, Op)>,
    total: u32,
}

fn read(id: QueryId) -> Op {
    Op::Read(QueryInstance::plain(id))
}

fn read_depth(id: QueryId, depth: u8) -> Op {
    Op::Read(QueryInstance {
        id,
        depth: Some(depth),
        k: None,
    })
}

impl Mix {
    /// The weight table of one stock mix.
    pub fn of(kind: MixKind) -> Mix {
        use QueryId::*;
        let entries: Vec<(u32, Op)> = match kind {
            // Point lookups and neighborhoods, as an OLTP graph app issues.
            MixKind::ReadOnly => vec![
                (4, read(Q8)),
                (4, read(Q9)),
                (10, read(Q14)),
                (10, read(Q15)),
                (10, read(Q22)),
                (10, read(Q23)),
                (8, read(Q24)),
                (4, read(Q25)),
                (4, read(Q26)),
                (4, read(Q27)),
                (3, read(Q13)),
                (3, read_depth(Q32, 2)),
                (2, read(Q34)),
            ],
            MixKind::ReadHeavy => vec![
                (4, read(Q8)),
                (10, read(Q14)),
                (10, read(Q15)),
                (12, read(Q22)),
                (12, read(Q23)),
                (8, read(Q24)),
                (6, read(Q27)),
                (3, read_depth(Q32, 2)),
                (4, Op::Write(WriteOp::AddVertex)),
                (3, Op::Write(WriteOp::SetVertexProp)),
                (2, Op::Write(WriteOp::AddEdge)),
            ],
            MixKind::WriteHeavy => vec![
                (16, Op::Write(WriteOp::AddVertex)),
                (14, Op::Write(WriteOp::AddEdge)),
                (12, Op::Write(WriteOp::SetVertexProp)),
                (8, Op::Write(WriteOp::RemoveOwnEdge)),
                (8, read(Q14)),
                (6, read(Q22)),
                (6, read(Q23)),
            ],
            // The whole-graph filters of Figure 5(b) plus property/label
            // search — the queries that stress scans under sharing.
            MixKind::ScanHeavy => vec![
                (4, read(Q8)),
                (4, read(Q9)),
                (5, read(Q10)),
                (5, read(Q11)),
                (3, read(Q12)),
                (5, read(Q13)),
                (3, read(Q28)),
                (3, read(Q29)),
                (3, read(Q30)),
                (3, read(Q31)),
            ],
            MixKind::Mixed => vec![
                (3, read(Q8)),
                (8, read(Q14)),
                (8, read(Q15)),
                (9, read(Q22)),
                (9, read(Q23)),
                (6, read(Q24)),
                (4, read(Q27)),
                (3, read(Q11)),
                (3, read(Q13)),
                (3, read_depth(Q32, 2)),
                (2, read(Q34)),
                (4, Op::Write(WriteOp::AddVertex)),
                (4, Op::Write(WriteOp::AddEdge)),
                (3, Op::Write(WriteOp::SetVertexProp)),
                (1, Op::Write(WriteOp::RemoveOwnEdge)),
            ],
        };
        let total = entries.iter().map(|(w, _)| *w).sum();
        Mix {
            name: kind.name(),
            entries,
            total,
        }
    }

    /// Mix name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Whether every operation in the mix is a read.
    pub fn is_read_only(&self) -> bool {
        self.entries.iter().all(|(_, op)| !op.is_write())
    }

    /// The weighted entries.
    pub fn entries(&self) -> &[(u32, Op)] {
        &self.entries
    }

    /// Draw one operation.
    pub fn pick(&self, rng: &mut StdRng) -> Op {
        let mut roll = rng.gen_range(0..self.total);
        for (w, op) in &self.entries {
            if roll < *w {
                return *op;
            }
            roll -= w;
        }
        unreachable!("mix weights exhausted")
    }

    /// The RNG a given worker uses: derived from the run seed and the worker
    /// index, so every (seed, worker) pair replays the same op sequence
    /// regardless of thread interleaving.
    pub fn worker_rng(seed: u64, worker: usize) -> StdRng {
        StdRng::seed_from_u64(seed ^ (worker as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// The deterministic op sequence for one worker — exactly what the
    /// driver's worker thread executes, exposed so tests can replay it
    /// sequentially.
    pub fn sequence(&self, seed: u64, worker: usize, len: u64) -> Vec<Op> {
        let mut rng = Self::worker_rng(seed, worker);
        (0..len).map(|_| self.pick(&mut rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stock_mixes_have_expected_shapes() {
        assert!(MixKind::ReadOnly.mix().is_read_only());
        assert!(MixKind::ScanHeavy.mix().is_read_only());
        assert!(!MixKind::ReadHeavy.mix().is_read_only());
        assert!(!MixKind::Mixed.mix().is_read_only());
        let wh = MixKind::WriteHeavy.mix();
        let write_weight: u32 = wh
            .entries()
            .iter()
            .filter(|(_, op)| op.is_write())
            .map(|(w, _)| *w)
            .sum();
        let total: u32 = wh.entries().iter().map(|(w, _)| *w).sum();
        assert!(
            write_weight * 10 >= total * 6,
            "write-heavy is mostly writes ({write_weight}/{total})"
        );
    }

    #[test]
    fn names_round_trip() {
        for kind in MixKind::ALL {
            assert_eq!(MixKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.mix().name(), kind.name());
        }
        assert_eq!(MixKind::parse("nope"), None);
    }

    #[test]
    fn sequences_are_deterministic_and_worker_distinct() {
        let mix = MixKind::Mixed.mix();
        let a = mix.sequence(42, 0, 300);
        let b = mix.sequence(42, 0, 300);
        assert_eq!(a, b);
        let c = mix.sequence(42, 1, 300);
        assert_ne!(a, c, "workers draw distinct streams");
        let d = mix.sequence(43, 0, 300);
        assert_ne!(a, d, "seeds draw distinct streams");
    }

    #[test]
    fn pick_respects_weights_roughly() {
        let mix = MixKind::ReadHeavy.mix();
        let seq = mix.sequence(7, 0, 4_000);
        let writes = seq.iter().filter(|op| op.is_write()).count();
        // Write weight is 9/74 ≈ 12%; allow a wide band.
        assert!(
            (200..800).contains(&writes),
            "expected ~12% writes in read-heavy, got {writes}/4000"
        );
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(read(QueryId::Q23).label(), "Q23");
        assert_eq!(Op::Write(WriteOp::AddEdge).label(), "W:add_edge");
        assert_eq!(read_depth(QueryId::Q32, 2).label(), "Q32(d=2)");
    }

    #[test]
    fn trace_codes_are_stable_and_distinct() {
        assert_eq!(read(QueryId::Q23).trace_code(), 23);
        assert_eq!(Op::Write(WriteOp::AddVertex).trace_code(), 200);
        assert_eq!(Op::Write(WriteOp::RemoveOwnEdge).trace_code(), 203);
        let mut codes: Vec<u16> = MixKind::Mixed
            .mix()
            .entries()
            .iter()
            .map(|(_, op)| op.trace_code())
            .collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), MixKind::Mixed.mix().entries().len());
    }
}
