//! Log2-bucketed latency histograms.
//!
//! Each worker thread owns one [`LatencyHistogram`] and records into it with
//! plain (non-atomic) writes — no sharing, no false sharing, no locks on the
//! hot path. When the run ends the driver [`merge`](LatencyHistogram::merge)s
//! the per-worker histograms into one; merging is pure addition, so the
//! "lock-free" claim is structural rather than clever: there is simply
//! nothing to lock.
//!
//! Buckets are powers of two of nanoseconds: bucket *i* (for `i >= 1`) holds
//! latencies in `[2^i, 2^(i+1))` ns, and bucket 0 spans `[0, 2)` ns — its
//! floor is 0, not 1. 64 buckets cover every
//! representable `u64` latency, from sub-microsecond point reads to scans
//! that run for minutes. Quantiles interpolate inside the hit bucket and are
//! clamped to the exact observed maximum, so `p99 <= max` always holds.

/// Number of power-of-two buckets (covers all of `u64`).
pub const BUCKETS: usize = 64;

/// A fixed-size log2 latency histogram over nanoseconds.
///
/// Next to each bucket count the histogram can retain an **exemplar**: the
/// trace id of the most recent op that landed in that bucket *and* was
/// captured by the trace flight recorder ([`gm_obs::trace`]). Exemplars turn
/// an aggregate quantile back into a concrete op — `p99_exemplar()` names a
/// retrievable trace record from the p99's bucket neighborhood.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    exemplars: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: [0; BUCKETS],
            exemplars: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index for a latency.
    #[inline]
    pub fn bucket_of(nanos: u64) -> usize {
        63 - nanos.max(1).leading_zeros() as usize
    }

    /// Inclusive lower bound of bucket `i` in nanoseconds. Bucket 0 spans
    /// `[0, 2)` (it catches both 0 ns and 1 ns observations), so its floor is
    /// 0 — not 1, which would mislabel and mis-interpolate the lowest bucket.
    pub fn bucket_floor(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << i
        }
    }

    /// Width of bucket `i` in nanoseconds: bucket 0 is `[0, 2)` (width 2),
    /// bucket `i >= 1` is `[2^i, 2^(i+1))` (width `2^i`).
    pub fn bucket_width(i: usize) -> u64 {
        if i == 0 {
            2
        } else {
            1u64 << i
        }
    }

    /// Record one latency observation.
    #[inline]
    pub fn record(&mut self, nanos: u64) {
        self.counts[Self::bucket_of(nanos)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(nanos);
        self.min = self.min.min(nanos);
        self.max = self.max.max(nanos);
    }

    /// Record one latency observation together with its trace exemplar.
    ///
    /// `trace_id` is the flight-recorder id of this op, or 0 when the op was
    /// not captured (tracing off, or the record lost the ring slot race). The
    /// caller passes a nonzero id **only for ops whose trace record actually
    /// landed in the ring**, which is what keeps every reported exemplar
    /// resolvable back to a retrievable record.
    #[inline]
    pub fn record_traced(&mut self, nanos: u64, trace_id: u64) {
        self.record(nanos);
        if trace_id != 0 {
            self.exemplars[Self::bucket_of(nanos)] = trace_id;
        }
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        // Exemplars are "any representative wins": a nonzero incoming
        // exemplar replaces ours, since merge order follows worker order and
        // any captured op from the bucket serves equally as its exemplar.
        for (a, b) in self.exemplars.iter_mut().zip(other.exemplars.iter()) {
            if *b != 0 {
                *a = *b;
            }
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum_nanos(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min_nanos(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation.
    pub fn max_nanos(&self) -> u64 {
        self.max
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_nanos(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Raw bucket counts (index = log2 of nanoseconds).
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// The latency at quantile `q` in `[0, 1]`, linearly interpolated inside
    /// the hit bucket and clamped to the observed extrema.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        if q >= 1.0 {
            return self.max;
        }
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                // Interpolate within the bucket's span by rank.
                let into = (target - seen - 1) as f64 / c as f64;
                let floor = Self::bucket_floor(i) as f64;
                let est = floor + into * Self::bucket_width(i) as f64;
                return (est as u64).clamp(self.min, self.max);
            }
            seen += c;
        }
        self.max
    }

    /// The trace exemplar nearest the p99: the retained trace id from the
    /// p99's own bucket, or — when that bucket holds none — from the closest
    /// bucket above it (a *worse* op, never a flattering faster one). Returns
    /// 0 when no exemplar is available at or above the p99 bucket.
    pub fn p99_exemplar(&self) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((0.99 * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        let mut hit = BUCKETS - 1;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                hit = i;
                break;
            }
            seen += c;
        }
        self.exemplars[hit..]
            .iter()
            .copied()
            .find(|&id| id != 0)
            .unwrap_or(0)
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Render a compact text sketch: one line per non-empty bucket with a
    /// proportional bar, for the example binary and debugging.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let peak = self.counts.iter().copied().max().unwrap_or(0).max(1);
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let bar = "#".repeat((c * 40).div_ceil(peak) as usize);
            out.push_str(&format!(
                "{:>12} | {bar} {c}\n",
                format_nanos(Self::bucket_floor(i))
            ));
        }
        out.push_str(&format!(
            "count={} mean={} p50={} p95={} p99={} max={}\n",
            self.count,
            format_nanos(self.mean_nanos()),
            format_nanos(self.p50()),
            format_nanos(self.p95()),
            format_nanos(self.p99()),
            format_nanos(self.max_nanos()),
        ));
        out
    }
}

/// The shared latency formatter (one rendering rule for every report).
pub use gm_core::summary::format_nanos;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 0);
        assert_eq!(LatencyHistogram::bucket_of(2), 1);
        assert_eq!(LatencyHistogram::bucket_of(3), 1);
        assert_eq!(LatencyHistogram::bucket_of(1024), 10);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), 63);
        // The floor of every bucket must be a value that lands in that
        // bucket — in particular bucket 0's floor is 0, not 1 (the bucket
        // spans [0, 2)).
        for i in 0..BUCKETS {
            let floor = LatencyHistogram::bucket_floor(i);
            assert_eq!(
                LatencyHistogram::bucket_of(floor),
                i,
                "floor({i}) = {floor} must fall inside bucket {i}"
            );
        }
        assert_eq!(LatencyHistogram::bucket_floor(0), 0);
        assert_eq!(LatencyHistogram::bucket_floor(1), 2);
        assert_eq!(LatencyHistogram::bucket_width(0), 2);
        assert_eq!(LatencyHistogram::bucket_width(1), 2);
        assert_eq!(LatencyHistogram::bucket_width(10), 1024);
    }

    #[test]
    fn lowest_bucket_labels_and_quantiles() {
        // All-zero observations quantile to 0, and render labels the lowest
        // bucket with its true floor (0ns), not 1ns.
        let mut h = LatencyHistogram::new();
        for _ in 0..4 {
            h.record(0);
        }
        assert_eq!(h.p50(), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert!(h.render().contains("0ns"), "{}", h.render());
        // A 0-and-1 mix interpolates within [0, 2) instead of above it.
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(1);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.quantile(1.0), 1);
    }

    #[test]
    fn counts_and_extrema() {
        let mut h = LatencyHistogram::new();
        for v in [10, 20, 30, 4000, 5_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min_nanos(), 10);
        assert_eq!(h.max_nanos(), 5_000_000);
        assert_eq!(h.sum_nanos(), 5_004_060);
        assert_eq!(h.mean_nanos(), 1_000_812);
    }

    #[test]
    fn quantiles_are_ordered_and_clamped() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(i * 100);
        }
        let (p50, p95, p99) = (h.p50(), h.p95(), h.p99());
        assert!(p50 <= p95 && p95 <= p99 && p99 <= h.max_nanos());
        // p50 of 100..100_000 uniform should land within a 2x log2 bucket
        // of the true median 50_000.
        assert!((25_000..=100_000).contains(&p50), "p50 = {p50}");
        assert_eq!(h.quantile(0.0), h.min_nanos());
        assert_eq!(h.quantile(1.0), h.max_nanos());
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.min_nanos(), 0);
        assert_eq!(h.mean_nanos(), 0);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for i in 0..500u64 {
            let v = i * 37 + 5;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.sum_nanos(), all.sum_nanos());
        assert_eq!(a.min_nanos(), all.min_nanos());
        assert_eq!(a.max_nanos(), all.max_nanos());
        assert_eq!(a.buckets(), all.buckets());
        assert_eq!(a.p99(), all.p99());
    }

    #[test]
    fn exemplars_resolve_the_p99_neighborhood() {
        let mut h = LatencyHistogram::new();
        // 990 fast ops (bucket of 1000ns), no exemplars — below the sampling
        // radar — then 10 slow ops, two of them captured with trace ids.
        for _ in 0..990 {
            h.record_traced(1_000, 0);
        }
        for i in 0..10u64 {
            let id = if i == 3 { 0xAAAA } else { 0 };
            h.record_traced(4_000_000, id);
        }
        // p99 rank 990 falls in the fast bucket, which has no exemplar; the
        // nearest-above rule surfaces the slow bucket's captured op.
        assert_eq!(h.p99_exemplar(), 0xAAAA);
        // A later captured op in the same bucket replaces the earlier one.
        h.record_traced(4_100_000, 0xBBBB);
        assert_eq!(h.p99_exemplar(), 0xBBBB);
        // No exemplars anywhere -> 0.
        let mut bare = LatencyHistogram::new();
        bare.record_traced(500, 0);
        assert_eq!(bare.p99_exemplar(), 0);
        assert_eq!(LatencyHistogram::new().p99_exemplar(), 0);
    }

    #[test]
    fn merge_carries_exemplars() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record_traced(2_000_000, 0x1111);
        b.record_traced(2_000_000, 0x2222);
        b.record_traced(130, 0x3333);
        a.merge(&b);
        // b's nonzero exemplar wins the shared bucket; b's exclusive bucket
        // arrives intact.
        assert_eq!(h_exemplar(&a, 2_000_000), 0x2222);
        assert_eq!(h_exemplar(&a, 130), 0x3333);
        // Merging an exemplar-free histogram erases nothing.
        a.merge(&LatencyHistogram::new());
        assert_eq!(h_exemplar(&a, 130), 0x3333);
    }

    fn h_exemplar(h: &LatencyHistogram, nanos: u64) -> u64 {
        h.exemplars[LatencyHistogram::bucket_of(nanos)]
    }

    #[test]
    fn render_mentions_tail() {
        let mut h = LatencyHistogram::new();
        h.record(1_500);
        h.record(3_000_000);
        let text = h.render();
        assert!(text.contains("count=2"), "{text}");
        assert!(text.contains("p99"), "{text}");
    }
}
