//! # gm-workload — concurrent multi-client workload driver
//!
//! The paper measures every microbenchmark single-threaded; this crate adds
//! the axis it leaves open — behavior under **concurrent clients** — and
//! turns graphmark from a sequential harness into a multi-client benchmark
//! system:
//!
//! * [`mix`] — declarative workload mixes (read-heavy / write-heavy /
//!   scan-heavy / mixed / read-only) over the paper's 35 microbenchmark
//!   operations plus CUD writes, with a seeded deterministic RNG per worker;
//! * [`driver`] — a thread-pooled closed-loop and open-loop (fixed arrival
//!   rate) driver fanning the mix across N workers against one shared
//!   engine: reads under the `RwLock` shared lock, writes serialized under
//!   the exclusive lock. Open-loop pacing takes an optional backlog bound:
//!   arrivals that slip further behind schedule than the bound are **shed**
//!   (counted, not executed), so overload runs terminate in bounded time and
//!   report offered vs achieved rate honestly. The measured loop is
//!   transport-agnostic ([`driver::Backend`] / [`driver::Session`]): the
//!   in-process shared engine is one backend, `gm-net`'s per-worker socket
//!   connections to a remote engine server are another;
//! * [`hist`] — per-worker log2-bucketed latency histograms (p50/p95/p99/
//!   max) and throughput counters, merged lock-free when the run ends and
//!   reported through `gm_core::report` / `gm_core::summary` next to the
//!   paper's figures.
//!
//! Determinism contract: a run is fully described by `(mix, seed, threads,
//! ops_per_worker)`. Each worker replays the same op sequence regardless of
//! interleaving, and for read-only mixes the observed results are
//! bit-identical to a sequential replay — the cross-engine test suite
//! enforces this against the paper's sequential `Runner`.

pub mod driver;
pub mod hist;
pub mod mix;

pub use driver::{
    apply_write, prepare_snapshot, run, run_backend, run_backend_sequential, run_sequential,
    run_snapshot, run_snapshot_sequential, run_snapshot_txn, txn_ops_from_env, Backend,
    LocalBackend, OpResult, Pacing, RunReport, Session, SharedEngine, SnapshotBackend, WorkerStats,
    WorkloadConfig, ERR_CARD, SHED_CARD, SNAPSHOT_PIN_STALENESS, WORKLOAD_SLOTS,
};
pub use gm_obs::{Phase, PhaseNanos};
pub use hist::{format_nanos, LatencyHistogram};
pub use mix::{Mix, MixKind, Op, WriteOp};
