//! The concurrent multi-client driver.
//!
//! One engine instance is shared by N worker threads behind an `RwLock`:
//! read queries run concurrently under the shared lock, CUD writes serialize
//! under the exclusive lock — exactly the concurrency contract the
//! `GraphDb: Send + Sync` bound encodes (reads take `&self`, writes
//! `&mut self`). Each worker owns its RNG (seeded from the run seed and the
//! worker index) and its latency histogram, so the measured path is free of
//! cross-thread writes entirely; histograms and throughput counters merge
//! by plain addition after the threads join ("lock-free" structurally —
//! there is nothing to lock).
//!
//! Two pacing models:
//!
//! * **closed-loop** — each worker issues its next op as soon as the
//!   previous one returns (throughput-bound, the classic benchmark client);
//! * **open-loop** — ops arrive on a fixed global schedule (`ops_per_sec`)
//!   dealt round-robin to workers, and latency is measured from *scheduled
//!   arrival* to completion, so queueing delay is visible when the engine
//!   cannot keep up (the coordinated-omission-free measurement the LDBC
//!   driver papers argue for).

use std::sync::RwLock;
use std::time::{Duration, Instant};

use gm_core::catalog;
use gm_core::params::{ResolvedParams, Workload};
use gm_core::report::{Measurement, Outcome, RunMode};
use gm_core::summary::ScalingRow;
use gm_model::api::LoadOptions;
use gm_model::{Dataset, Eid, GdbError, GdbResult, GraphDb, QueryCtx, Value};

use crate::hist::LatencyHistogram;
use crate::mix::{Mix, MixKind, Op, WriteOp};

/// Cardinality recorded for an op that returned an error.
pub const ERR_CARD: u64 = u64::MAX;

/// How ops are paced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pacing {
    /// Issue the next op when the previous one completes.
    Closed,
    /// Fixed-rate arrivals across all workers; latency includes queueing.
    Open {
        /// Aggregate arrival rate over all workers.
        ops_per_sec: f64,
    },
}

/// Driver configuration.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Scenario shape.
    pub mix: MixKind,
    /// Worker (client) thread count.
    pub threads: u32,
    /// Ops each worker issues.
    pub ops_per_worker: u64,
    /// Run seed: fixes every worker's op sequence.
    pub seed: u64,
    /// Closed- or open-loop pacing.
    pub pacing: Pacing,
    /// Per-op cooperative deadline for **read** ops. Writes are point
    /// operations whose engine API carries no `QueryCtx`, so they are not
    /// deadline-checked.
    pub op_timeout: Duration,
    /// Record each op's result cardinality (for determinism checks).
    pub record_cardinalities: bool,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            mix: MixKind::Mixed,
            threads: 4,
            ops_per_worker: 256,
            seed: 42,
            pacing: Pacing::Closed,
            op_timeout: Duration::from_secs(5),
            record_cardinalities: false,
        }
    }
}

/// Per-worker results, merged lock-free (by plain addition) after the join.
#[derive(Debug, Clone)]
pub struct WorkerStats {
    /// Worker index.
    pub worker: usize,
    /// Ops that completed.
    pub ops: u64,
    /// Ops that returned an error (timeouts included).
    pub errors: u64,
    /// This worker's latency histogram.
    pub hist: LatencyHistogram,
    /// Result cardinalities in issue order (empty unless
    /// [`WorkloadConfig::record_cardinalities`]; errors record [`ERR_CARD`]).
    pub cardinalities: Vec<u64>,
}

/// The outcome of one driver run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Engine name.
    pub engine: String,
    /// Dataset name.
    pub dataset: String,
    /// Mix name.
    pub mix: String,
    /// Worker count.
    pub threads: u32,
    /// Wall-clock time of the measured region (threads running).
    pub wall_nanos: u64,
    /// Per-worker stats.
    pub workers: Vec<WorkerStats>,
    /// All workers' histograms merged.
    pub hist: LatencyHistogram,
}

impl RunReport {
    /// Total completed ops.
    pub fn ops(&self) -> u64 {
        self.workers.iter().map(|w| w.ops).sum()
    }

    /// Total errored ops.
    pub fn errors(&self) -> u64 {
        self.workers.iter().map(|w| w.errors).sum()
    }

    /// Completed ops per wall-clock second.
    pub fn throughput(&self) -> f64 {
        self.scaling_row().throughput()
    }

    /// The row this run contributes to the concurrency figure.
    pub fn scaling_row(&self) -> ScalingRow {
        ScalingRow {
            engine: self.engine.clone(),
            mix: self.mix.clone(),
            threads: self.threads,
            ops: self.ops(),
            errors: self.errors(),
            wall_nanos: self.wall_nanos,
            p50_nanos: self.hist.p50(),
            p95_nanos: self.hist.p95(),
            p99_nanos: self.hist.p99(),
            max_nanos: self.hist.max_nanos(),
        }
    }

    /// A `core::report` row so concurrency runs flow through the existing
    /// rendering machinery next to the paper's figures. A run where no op
    /// succeeded reports as failed rather than masquerading as completed.
    pub fn to_measurement(&self) -> Measurement {
        let outcome = if self.ops() == 0 && self.errors() > 0 {
            Outcome::Failed(format!("all {} ops errored", self.errors()))
        } else {
            Outcome::Completed
        };
        Measurement {
            engine: self.engine.clone(),
            dataset: self.dataset.clone(),
            query: format!("WL:{}@t{}", self.mix, self.threads),
            mode: RunMode::Batch,
            outcome,
            nanos: self.wall_nanos,
            cardinality: Some(self.ops()),
        }
    }

    /// Concatenated per-worker cardinality traces (worker order), for
    /// determinism comparisons.
    pub fn cardinality_trace(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for w in &self.workers {
            out.extend_from_slice(&w.cardinalities);
        }
        out
    }
}

/// Load `data` into a fresh engine from `factory`, then run the configured
/// workload with `cfg.threads` concurrent workers.
pub fn run(
    factory: &dyn Fn() -> Box<dyn GraphDb>,
    data: &Dataset,
    cfg: &WorkloadConfig,
) -> GdbResult<RunReport> {
    validate(cfg)?;
    let (lock, params, engine) = prepare(factory, data, cfg)?;
    let mix = cfg.mix.mix();
    let start = Instant::now();
    let workers: Vec<WorkerStats> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.threads as usize)
            .map(|w| {
                let lock = &lock;
                let params = &params;
                let mix = &mix;
                s.spawn(move || worker_loop(w, lock, params, mix, cfg, start))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });
    let wall_nanos = start.elapsed().as_nanos() as u64;
    Ok(assemble(engine, data, cfg, wall_nanos, workers))
}

/// Execute the *same* per-worker op sequences one worker after another on a
/// single thread — the sequential reference a concurrent read-only run must
/// reproduce exactly. Pacing is forced to closed-loop: an open-loop arrival
/// schedule assumes concurrent workers, so replaying it serially would fold
/// earlier workers' runtimes into later workers' latencies.
pub fn run_sequential(
    factory: &dyn Fn() -> Box<dyn GraphDb>,
    data: &Dataset,
    cfg: &WorkloadConfig,
) -> GdbResult<RunReport> {
    let cfg = WorkloadConfig {
        pacing: Pacing::Closed,
        ..cfg.clone()
    };
    let cfg = &cfg;
    validate(cfg)?;
    let (lock, params, engine) = prepare(factory, data, cfg)?;
    let mix = cfg.mix.mix();
    let start = Instant::now();
    let workers: Vec<WorkerStats> = (0..cfg.threads as usize)
        .map(|w| worker_loop(w, &lock, &params, &mix, cfg, start))
        .collect();
    let wall_nanos = start.elapsed().as_nanos() as u64;
    Ok(assemble(engine, data, cfg, wall_nanos, workers))
}

type SharedEngine = RwLock<Box<dyn GraphDb>>;

fn validate(cfg: &WorkloadConfig) -> GdbResult<()> {
    if cfg.threads == 0 {
        return Err(GdbError::Invalid(
            "workload needs at least one worker".into(),
        ));
    }
    if cfg.ops_per_worker == 0 {
        return Err(GdbError::Invalid(
            "workload needs at least one op per worker".into(),
        ));
    }
    if let Pacing::Open { ops_per_sec } = cfg.pacing {
        if ops_per_sec <= 0.0 || !ops_per_sec.is_finite() {
            return Err(GdbError::Invalid(format!(
                "open-loop pacing needs a positive finite rate, got {ops_per_sec}"
            )));
        }
    }
    Ok(())
}

fn prepare(
    factory: &dyn Fn() -> Box<dyn GraphDb>,
    data: &Dataset,
    cfg: &WorkloadConfig,
) -> GdbResult<(SharedEngine, ResolvedParams, String)> {
    let mut db = factory();
    let engine = db.name();
    db.bulk_load(data, &LoadOptions::default())?;
    db.sync()?;
    // Parameter resolution happens before the measured region, as §4.2
    // prescribes for the sequential runner.
    let workload = Workload::choose(data, cfg.seed, 16);
    let params = workload.resolve(db.as_ref())?;
    Ok((RwLock::new(db), params, engine))
}

fn assemble(
    engine: String,
    data: &Dataset,
    cfg: &WorkloadConfig,
    wall_nanos: u64,
    workers: Vec<WorkerStats>,
) -> RunReport {
    let mut hist = LatencyHistogram::new();
    for w in &workers {
        hist.merge(&w.hist);
    }
    RunReport {
        engine,
        dataset: data.name.clone(),
        mix: cfg.mix.name().to_string(),
        threads: cfg.threads,
        wall_nanos,
        workers,
        hist,
    }
}

fn worker_loop(
    worker: usize,
    lock: &SharedEngine,
    params: &ResolvedParams,
    mix: &Mix,
    cfg: &WorkloadConfig,
    start: Instant,
) -> WorkerStats {
    let mut rng = Mix::worker_rng(cfg.seed, worker);
    let mut stats = WorkerStats {
        worker,
        ops: 0,
        errors: 0,
        hist: LatencyHistogram::new(),
        cardinalities: Vec::new(),
    };
    let mut owned_edges: Vec<Eid> = Vec::new();
    for i in 0..cfg.ops_per_worker {
        let op = mix.pick(&mut rng);
        // Open-loop: wait for this op's scheduled arrival, and measure from
        // it, so time spent queueing behind a slow engine is *in* the
        // latency rather than silently coordinated away.
        let issue_at = match cfg.pacing {
            Pacing::Closed => Instant::now(),
            Pacing::Open { ops_per_sec } => {
                let k = worker as u64 + i * cfg.threads as u64;
                let at = start + Duration::from_secs_f64(k as f64 / ops_per_sec);
                let now = Instant::now();
                if at > now {
                    std::thread::sleep(at - now);
                }
                at
            }
        };
        let result = execute_op(op, lock, params, cfg, worker, i, &mut owned_edges);
        stats
            .hist
            .record(issue_at.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        match result {
            Ok(card) => {
                stats.ops += 1;
                if cfg.record_cardinalities {
                    stats.cardinalities.push(card);
                }
            }
            Err(_) => {
                stats.errors += 1;
                if cfg.record_cardinalities {
                    stats.cardinalities.push(ERR_CARD);
                }
            }
        }
    }
    stats
}

fn execute_op(
    op: Op,
    lock: &SharedEngine,
    params: &ResolvedParams,
    cfg: &WorkloadConfig,
    worker: usize,
    op_index: u64,
    owned_edges: &mut Vec<Eid>,
) -> GdbResult<u64> {
    match op {
        Op::Read(inst) => {
            let ctx = QueryCtx::with_timeout(cfg.op_timeout);
            let db = lock.read().unwrap_or_else(|p| p.into_inner());
            catalog::execute_read(&inst, db.as_ref(), params, &ctx)
        }
        // No deadline on writes: the GraphDb mutation API carries no
        // QueryCtx (mutations are point operations in the paper's taxonomy),
        // so `op_timeout` bounds reads only — see WorkloadConfig docs.
        Op::Write(wop) => {
            let mut db = lock.write().unwrap_or_else(|p| p.into_inner());
            apply_write(wop, db.as_mut(), params, worker, op_index, owned_edges)
        }
    }
}

fn apply_write(
    wop: WriteOp,
    db: &mut dyn GraphDb,
    params: &ResolvedParams,
    worker: usize,
    op_index: u64,
    owned_edges: &mut Vec<Eid>,
) -> GdbResult<u64> {
    match wop {
        WriteOp::AddVertex => {
            db.add_vertex(
                "wl_vertex",
                &vec![
                    ("wl_worker".into(), Value::Int(worker as i64)),
                    ("wl_seq".into(), Value::Int(op_index as i64)),
                ],
            )?;
            Ok(1)
        }
        WriteOp::AddEdge => {
            // Endpoints from the pre-resolved pair pool; workers stride
            // through it at different offsets so contention is realistic.
            let (src, dst) = params.pair(worker.wrapping_mul(7919).wrapping_add(op_index as usize));
            let eid = db.add_edge(src, dst, "wl_edge", &Vec::new())?;
            owned_edges.push(eid);
            Ok(1)
        }
        WriteOp::SetVertexProp => {
            // Worker-unique property name: workers never clobber each other,
            // so a run's end state is independent of interleaving.
            db.set_vertex_property(
                params.vertex,
                &format!("wl_w{worker}"),
                Value::Int(op_index as i64),
            )?;
            Ok(1)
        }
        WriteOp::RemoveOwnEdge => match owned_edges.pop() {
            Some(eid) => {
                db.remove_edge(eid)?;
                Ok(1)
            }
            // Nothing of ours left to delete — degrade to a create so the
            // op count stays comparable across runs.
            None => apply_write(
                WriteOp::AddVertex,
                db,
                params,
                worker,
                op_index,
                owned_edges,
            ),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine_linked::LinkedGraph;
    use gm_model::testkit;

    fn factory() -> Box<dyn GraphDb> {
        Box::new(LinkedGraph::v1())
    }

    fn small_cfg(mix: MixKind, threads: u32) -> WorkloadConfig {
        WorkloadConfig {
            mix,
            threads,
            ops_per_worker: 60,
            seed: 11,
            record_cardinalities: true,
            ..WorkloadConfig::default()
        }
    }

    #[test]
    fn closed_loop_mixed_run_completes() {
        let data = testkit::chain_dataset(200);
        let report = run(&factory, &data, &small_cfg(MixKind::Mixed, 4)).unwrap();
        assert_eq!(report.threads, 4);
        assert_eq!(report.ops() + report.errors(), 4 * 60);
        assert_eq!(report.errors(), 0, "no op should fail on the linked engine");
        assert_eq!(report.hist.count(), 4 * 60);
        assert!(report.wall_nanos > 0);
        assert!(report.throughput() > 0.0);
        let row = report.scaling_row();
        assert_eq!(row.ops, 240);
        assert!(row.p50_nanos <= row.p99_nanos);
    }

    #[test]
    fn read_only_concurrent_matches_sequential() {
        let data = testkit::chain_dataset(300);
        let cfg = small_cfg(MixKind::ReadOnly, 4);
        let concurrent = run(&factory, &data, &cfg).unwrap();
        let sequential = run_sequential(&factory, &data, &cfg).unwrap();
        assert_eq!(
            concurrent.cardinality_trace(),
            sequential.cardinality_trace(),
            "read-only results must not depend on interleaving"
        );
        assert_eq!(concurrent.ops(), sequential.ops());
    }

    #[test]
    fn open_loop_records_latency_from_arrival() {
        let data = testkit::chain_dataset(100);
        let cfg = WorkloadConfig {
            mix: MixKind::ReadOnly,
            threads: 2,
            ops_per_worker: 40,
            pacing: Pacing::Open {
                ops_per_sec: 4_000.0,
            },
            ..WorkloadConfig::default()
        };
        let report = run(&factory, &data, &cfg).unwrap();
        assert_eq!(report.ops(), 80);
        // 80 ops at 4k/s arrive over ~20 ms: the run cannot finish faster.
        assert!(
            report.wall_nanos >= 15_000_000,
            "open loop paces the run ({} ns)",
            report.wall_nanos
        );
    }

    #[test]
    fn write_heavy_grows_the_graph() {
        let data = testkit::chain_dataset(120);
        let cfg = small_cfg(MixKind::WriteHeavy, 3);
        let report = run(&factory, &data, &cfg).unwrap();
        assert_eq!(report.errors(), 0);
        assert_eq!(report.mix, "write-heavy");
    }

    #[test]
    fn measurement_row_shape() {
        let data = testkit::chain_dataset(100);
        let report = run(&factory, &data, &small_cfg(MixKind::ReadHeavy, 2)).unwrap();
        let m = report.to_measurement();
        assert_eq!(m.query, "WL:read-heavy@t2");
        assert_eq!(m.cardinality, Some(report.ops()));
        assert_eq!(m.outcome, Outcome::Completed);
    }
}
