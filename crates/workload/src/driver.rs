//! The concurrent multi-client driver.
//!
//! One engine instance is shared by N worker threads behind an `RwLock`:
//! read queries run concurrently under the shared lock, CUD writes serialize
//! under the exclusive lock — exactly the concurrency contract the
//! `GraphDb: Send + Sync` bound encodes (reads take `&self`, writes
//! `&mut self`). Each worker owns its RNG (seeded from the run seed and the
//! worker index) and its latency histogram, so the measured path is free of
//! cross-thread writes entirely; histograms and throughput counters merge
//! by plain addition after the threads join ("lock-free" structurally —
//! there is nothing to lock).
//!
//! Two pacing models:
//!
//! * **closed-loop** — each worker issues its next op as soon as the
//!   previous one returns (throughput-bound, the classic benchmark client);
//! * **open-loop** — ops arrive on a fixed global schedule (`ops_per_sec`)
//!   dealt round-robin to workers, and latency is measured from *scheduled
//!   arrival* to completion, so queueing delay is visible when the engine
//!   cannot keep up (the coordinated-omission-free measurement the LDBC
//!   driver papers argue for).
//!
//! Open-loop pacing carries an optional **backlog bound**
//! ([`Pacing::Open::max_lateness`]): when a worker reaches an arrival whose
//! schedule has already slipped further into the past than the bound, the op
//! is **shed** — counted in [`WorkerStats::shed`] instead of executed — so an
//! overload run terminates in bounded wall-clock time with honest latency
//! tails instead of an ever-growing arrival backlog. Shed ops never enter the
//! latency histogram (they have no completion), and in a recorded cardinality
//! trace they appear as [`SHED_CARD`] placeholders so the executed positions
//! still line up one-to-one with the deterministic op sequence.
//!
//! The measured loop is **transport-agnostic**: a [`Backend`] hands every
//! worker a [`Session`] that executes one op at a time, and
//! [`run_backend`] drives the same pacing/shedding/histogram machinery over
//! whatever the sessions talk to. The in-process shared-`RwLock` engine
//! ([`LocalBackend`]) is one backend; `gm-net`'s per-worker TCP connections
//! to a remote engine server are another — closed-loop, open-loop, and
//! bounded-overload pacing all work unchanged over the wire.

use std::sync::RwLock;
use std::time::{Duration, Instant};

use gm_core::catalog;
use gm_core::params::{ResolvedParams, Workload};
use gm_core::report::{Measurement, Outcome, RunMode};
use gm_core::summary::ScalingRow;
use gm_model::api::LoadOptions;
use gm_model::{Dataset, Eid, GdbError, GdbResult, GraphDb, QueryCtx, Value};
use gm_mvcc::{SnapshotSource, WriteTxn, TXN_ID_TAG};
use gm_obs::phase::{self, Phase, PhaseNanos};
use gm_obs::trace::{self, TailGate};

use crate::hist::LatencyHistogram;
use crate::mix::{Mix, MixKind, Op, WriteOp};

/// Cardinality recorded for an op that returned an error.
pub const ERR_CARD: u64 = u64::MAX;

/// Cardinality recorded for an op shed by open-loop backpressure. Using a
/// placeholder (instead of omitting the entry) keeps trace positions aligned
/// with the deterministic op sequence, so executed positions of an overloaded
/// read-only run can still be compared against a sequential replay.
pub const SHED_CARD: u64 = u64::MAX - 1;

/// How stale a snapshot-mode read may be: the driver pins epochs with
/// [`SnapshotSource::snapshot_recent`] at this bound, so epoch publishes
/// (whole-graph clones for `CowCell`, freeze clones for `FreezeCell`) are
/// rate-limited to at most one per this interval no matter how hot the
/// pin-per-read path runs. Reads still observe exactly one consistent
/// epoch — just one that may lag concurrent writers by up to this much,
/// which is precisely how real MVCC stores expose the latest *committed*
/// version rather than chasing in-flight writes.
pub const SNAPSHOT_PIN_STALENESS: Duration = Duration::from_micros(250);

/// How many victim/pair slots a driver run pre-draws
/// ([`Workload::choose`]'s `slots` argument). Remote backends must prepare
/// their server-side parameters with the same value, or the deterministic op
/// streams would resolve against different victim pools.
pub const WORKLOAD_SLOTS: usize = 16;

/// What one executed op produced: its result cardinality plus, when the
/// backend serves reads from pinned MVCC snapshots, the **epoch** of the
/// graph version that answered. Epochs let the driver tag every latency
/// sample with its graph version and detect non-monotone views (a read
/// racing an engine `Reset` reports a *lower* epoch than the worker already
/// observed — see [`WorkerStats::epoch_skew`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpResult {
    /// Result cardinality (rows/elements produced).
    pub cardinality: u64,
    /// Serving epoch for snapshot-backed reads; `None` for locked-mode
    /// reads (no epochs) and for writes (they produce the next epoch, they
    /// don't observe one).
    pub epoch: Option<u64>,
    /// Where this op's time went, split into the gm-obs phases: lock wait
    /// (queueing on engine locks, always recorded), and — under
    /// `GM_OBS=phases` — engine execution, snapshot pin, clone/publish, and
    /// (for remote backends) wire encode and socket I/O. Self-time
    /// attribution: nested spans subtract from their parent, so the vector
    /// sums to at most the op's end-to-end latency.
    pub phases: PhaseNanos,
}

impl OpResult {
    /// An epoch-less result (locked mode, writes) with no recorded phases.
    pub fn plain(cardinality: u64) -> OpResult {
        OpResult {
            cardinality,
            epoch: None,
            phases: PhaseNanos::zero(),
        }
    }

    /// Attach a measured lock wait.
    pub fn with_lock_wait(mut self, nanos: u64) -> OpResult {
        self.phases.set(Phase::LockWait, nanos);
        self
    }

    /// Attach the whole per-op phase vector.
    pub fn with_phases(mut self, phases: PhaseNanos) -> OpResult {
        self.phases = phases;
        self
    }

    /// Nanoseconds this op spent **waiting to acquire engine locks** (the
    /// shared `RwLock`, an MVCC cell's writer mutex or publish lock, or
    /// `gm-shard`'s per-partition locks — whatever the backend's path runs
    /// through `gm_model::lockwait`). Queueing, not hold time: the single
    /// number that separates "the engine is slow" from "the op serialized
    /// behind other clients", which is exactly what the sharded-vs-single
    /// lock comparison measures.
    pub fn lock_wait_nanos(&self) -> u64 {
        self.phases.get(Phase::LockWait)
    }
}

/// A per-worker execution endpoint: the only thing the measured loop knows
/// about the engine. One session belongs to exactly one worker thread and is
/// used for that worker's whole op sequence, so implementations may hold
/// per-worker state (RNG-free — op choice stays in the driver — but e.g. the
/// edges this worker created, or a dedicated TCP connection).
pub trait Session {
    /// Execute one op and return its [`OpResult`].
    ///
    /// `worker` and `op_index` parameterize writes (worker-unique property
    /// names, victim rotation) exactly as the shared-lock driver does, so a
    /// remote server can replay the identical mutation.
    fn execute(&mut self, op: Op, worker: usize, op_index: u64) -> GdbResult<OpResult>;

    /// Called once after the worker's last op, before its stats are
    /// returned. Sessions that buffer work (e.g. a fleet session batching
    /// writes per shard, or a transactional session with an open write
    /// transaction) flush here so every queued mutation lands inside the
    /// measured run; the default is a no-op.
    fn finish(&mut self) -> GdbResult<()> {
        Ok(())
    }

    /// How many write-transaction commits this session lost to
    /// first-committer-wins validation over its whole op sequence. Only
    /// transactional sessions override this; everything else reports 0.
    fn txn_conflicts(&self) -> u64 {
        0
    }
}

/// A transport over which the driver reaches an engine: in-process behind
/// the shared `RwLock` ([`LocalBackend`]), in-process against pinned MVCC
/// snapshots ([`SnapshotBackend`]), or across a socket (`gm-net`).
/// `open_session` is called on the worker's own thread, so a backend may do
/// per-worker setup there (e.g. dial one connection per client).
pub trait Backend: Sync {
    /// Engine display name for the report.
    fn engine(&self) -> String;

    /// Read-path isolation label for the report (`"locked"` unless the
    /// backend overrides it — snapshot backends report
    /// `"snapshot-cow"`/`"snapshot-native"`, remote ones `"remote"`).
    fn isolation(&self) -> String {
        "locked".into()
    }

    /// Open worker `worker`'s session.
    fn open_session(&self, worker: usize) -> GdbResult<Box<dyn Session + '_>>;
}

/// How ops are paced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pacing {
    /// Issue the next op when the previous one completes.
    Closed,
    /// Fixed-rate arrivals across all workers; latency includes queueing.
    Open {
        /// Aggregate arrival rate over all workers.
        ops_per_sec: f64,
        /// Arrival-backlog bound: when a worker reaches an op whose scheduled
        /// arrival is further in the past than this, the op is shed (counted,
        /// not executed). `None` disables shedding — the legacy unbounded
        /// behavior, where an overloaded run's backlog (and wall-clock time)
        /// grows without limit.
        max_lateness: Option<Duration>,
    },
}

impl Pacing {
    /// Unbounded open-loop pacing at `ops_per_sec` aggregate arrivals.
    pub fn open(ops_per_sec: f64) -> Pacing {
        Pacing::Open {
            ops_per_sec,
            max_lateness: None,
        }
    }

    /// Open-loop pacing that sheds any arrival running later than
    /// `max_lateness` behind its schedule.
    pub fn open_bounded(ops_per_sec: f64, max_lateness: Duration) -> Pacing {
        Pacing::Open {
            ops_per_sec,
            max_lateness: Some(max_lateness),
        }
    }

    /// The configured arrival rate (`None` for closed-loop pacing).
    pub fn offered_rate(&self) -> Option<f64> {
        match self {
            Pacing::Closed => None,
            Pacing::Open { ops_per_sec, .. } => Some(*ops_per_sec),
        }
    }
}

/// Driver configuration.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Scenario shape.
    pub mix: MixKind,
    /// Worker (client) thread count.
    pub threads: u32,
    /// Ops each worker issues.
    pub ops_per_worker: u64,
    /// Run seed: fixes every worker's op sequence.
    pub seed: u64,
    /// Closed- or open-loop pacing.
    pub pacing: Pacing,
    /// Per-op cooperative deadline for **read** ops. Writes are point
    /// operations whose engine API carries no `QueryCtx`, so they are not
    /// deadline-checked.
    pub op_timeout: Duration,
    /// Record each op's result cardinality (for determinism checks).
    pub record_cardinalities: bool,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            mix: MixKind::Mixed,
            threads: 4,
            ops_per_worker: 256,
            seed: 42,
            pacing: Pacing::Closed,
            op_timeout: Duration::from_secs(5),
            record_cardinalities: false,
        }
    }
}

/// Per-worker results, merged lock-free (by plain addition) after the join.
#[derive(Debug, Clone)]
pub struct WorkerStats {
    /// Worker index.
    pub worker: usize,
    /// Ops that completed.
    pub ops: u64,
    /// Completed ops that were reads (the isolation comparison's metric:
    /// snapshot reads never block behind writers, so reads/s keeps scaling
    /// where the locked read path flattens under write-heavy mixes).
    pub read_ops: u64,
    /// Ops that returned an error (timeouts included).
    pub errors: u64,
    /// Ops shed by open-loop backpressure (scheduled arrival fell further
    /// behind than [`Pacing::Open::max_lateness`]); never executed, never in
    /// the histogram. Always 0 for closed-loop or unbounded open-loop runs.
    pub shed: u64,
    /// Ops whose serving epoch was **lower** than the epoch the worker's
    /// previous read observed — the signature of a read racing an engine
    /// replacement (a remote `Reset` restarts epochs at 0), as opposed to a
    /// genuine engine error. Counted **once per op** against the epoch the
    /// op actually followed: after a drop the worker adopts the restarted
    /// regime, so one reset is one skew event, not one per remaining read.
    /// Always 0 for in-process snapshot runs (epochs are monotone per
    /// source) and for locked runs (no epochs at all).
    pub epoch_skew: u64,
    /// Write transactions this worker's session committed that lost
    /// first-committer-wins validation: the buffered write set was discarded
    /// whole and the session carried on. Not an op error — the ops executed
    /// and are counted in [`WorkerStats::ops`]; the *commit* lost a race —
    /// so conflicts get their own counter. Always 0 outside transactional
    /// session mode ([`SnapshotBackend::with_txn_ops`]).
    pub txn_conflicts: u64,
    /// Per-phase nanosecond totals over this worker's completed ops: lock
    /// wait (always recorded), plus engine exec, snapshot pin,
    /// clone/publish, and wire phases under `GM_OBS=phases` (see
    /// [`OpResult::phases`]). Errored ops do not contribute (their result —
    /// and its phase vector — is discarded with them).
    pub phases: PhaseNanos,
    /// This worker's latency histogram.
    pub hist: LatencyHistogram,
    /// Result cardinalities in issue order (empty unless
    /// [`WorkloadConfig::record_cardinalities`]; errors record [`ERR_CARD`]).
    pub cardinalities: Vec<u64>,
}

/// The outcome of one driver run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Engine name.
    pub engine: String,
    /// Dataset name.
    pub dataset: String,
    /// Mix name.
    pub mix: String,
    /// Read-path isolation label ([`Backend::isolation`]).
    pub isolation: String,
    /// Worker count.
    pub threads: u32,
    /// Configured open-loop arrival rate (`None` for closed-loop runs):
    /// the *offered* rate, to be read against the *achieved* rate
    /// [`RunReport::throughput`].
    pub offered_ops_per_sec: Option<f64>,
    /// Wall-clock time of the measured region (threads running).
    pub wall_nanos: u64,
    /// Per-worker stats.
    pub workers: Vec<WorkerStats>,
    /// All workers' histograms merged.
    pub hist: LatencyHistogram,
}

impl RunReport {
    /// Total completed ops.
    pub fn ops(&self) -> u64 {
        self.workers.iter().map(|w| w.ops).sum()
    }

    /// Total completed read ops.
    pub fn read_ops(&self) -> u64 {
        self.workers.iter().map(|w| w.read_ops).sum()
    }

    /// Total errored ops.
    pub fn errors(&self) -> u64 {
        self.workers.iter().map(|w| w.errors).sum()
    }

    /// Total ops shed by open-loop backpressure.
    pub fn shed(&self) -> u64 {
        self.workers.iter().map(|w| w.shed).sum()
    }

    /// Total reads that observed a non-monotone epoch (see
    /// [`WorkerStats::epoch_skew`]).
    pub fn epoch_skew(&self) -> u64 {
        self.workers.iter().map(|w| w.epoch_skew).sum()
    }

    /// Total write-transaction commits that lost first-committer-wins
    /// validation (see [`WorkerStats::txn_conflicts`]).
    pub fn txn_conflicts(&self) -> u64 {
        self.workers.iter().map(|w| w.txn_conflicts).sum()
    }

    /// Total nanoseconds completed ops spent waiting on engine locks.
    pub fn lock_wait_nanos(&self) -> u64 {
        self.workers
            .iter()
            .map(|w| w.phases.get(Phase::LockWait))
            .sum()
    }

    /// Per-phase nanosecond totals over all workers' completed ops.
    pub fn phase_nanos(&self) -> PhaseNanos {
        let mut total = PhaseNanos::zero();
        for w in &self.workers {
            total.accumulate(&w.phases);
        }
        total
    }

    /// Completed ops per wall-clock second (the achieved rate).
    pub fn throughput(&self) -> f64 {
        self.scaling_row().throughput()
    }

    /// Errored ops as a fraction of all issued (non-shed) ops.
    pub fn error_rate(&self) -> f64 {
        let issued = self.ops() + self.errors();
        if issued == 0 {
            0.0
        } else {
            self.errors() as f64 / issued as f64
        }
    }

    /// The row this run contributes to the concurrency figure.
    pub fn scaling_row(&self) -> ScalingRow {
        let phases = self.phase_nanos();
        ScalingRow {
            engine: self.engine.clone(),
            mix: self.mix.clone(),
            isolation: self.isolation.clone(),
            threads: self.threads,
            ops: self.ops(),
            read_ops: self.read_ops(),
            errors: self.errors(),
            shed: self.shed(),
            epoch_skew: self.epoch_skew(),
            txn_conflicts: self.txn_conflicts(),
            lock_wait_nanos: phases.get(Phase::LockWait),
            engine_exec_nanos: phases.get(Phase::EngineExec),
            snapshot_pin_nanos: phases.get(Phase::SnapshotPin),
            clone_publish_nanos: phases.get(Phase::ClonePublish),
            wire_encode_nanos: phases.get(Phase::WireEncode),
            wire_io_nanos: phases.get(Phase::WireIo),
            offered_ops_per_sec: self.offered_ops_per_sec,
            wall_nanos: self.wall_nanos,
            p50_nanos: self.hist.p50(),
            p95_nanos: self.hist.p95(),
            p99_nanos: self.hist.p99(),
            max_nanos: self.hist.max_nanos(),
            p99_exemplar: self.hist.p99_exemplar(),
        }
    }

    /// A `core::report` row so concurrency runs flow through the existing
    /// rendering machinery next to the paper's figures. A run where no op
    /// succeeded reports as failed, a run with *any* errored ops reports as
    /// failed with its error rate, and a run that shed arrivals reports as
    /// failed with its shed fraction — a 99%-errors (or mostly-shed
    /// overload) run must not render identically to a clean one. Open-loop
    /// runs carry their offered rate in the query label so measurements at
    /// different rates do not collide in the report matrix.
    pub fn to_measurement(&self) -> Measurement {
        let (ops, errors, shed) = (self.ops(), self.errors(), self.shed());
        let mut problems = Vec::new();
        if errors > 0 {
            problems.push(format!(
                "{errors} of {} issued ops errored ({:.1}%)",
                ops + errors,
                self.error_rate() * 100.0
            ));
        }
        if shed > 0 {
            problems.push(format!(
                "shed {shed} of {} scheduled arrivals ({:.1}%)",
                ops + errors + shed,
                self.scaling_row().shed_fraction() * 100.0
            ));
        }
        let outcome = if problems.is_empty() {
            Outcome::Completed
        } else if ops == 0 {
            Outcome::Failed(format!("no op completed: {}", problems.join("; ")))
        } else {
            Outcome::Failed(problems.join("; "))
        };
        // Non-locked isolation is part of the label so a locked and a
        // snapshot run of the same (mix, threads) never collide in the
        // report matrix; locked keeps the historical label shape.
        let iso = if self.isolation == "locked" {
            String::new()
        } else {
            format!("[{}]", self.isolation)
        };
        let query = match self.offered_ops_per_sec {
            Some(rate) => format!("WL:{}@t{}@{rate:.0}/s{iso}", self.mix, self.threads),
            None => format!("WL:{}@t{}{iso}", self.mix, self.threads),
        };
        Measurement {
            engine: self.engine.clone(),
            dataset: self.dataset.clone(),
            query,
            mode: RunMode::Batch,
            outcome,
            nanos: self.wall_nanos,
            cardinality: Some(self.ops()),
        }
    }

    /// Concatenated per-worker cardinality traces (worker order), for
    /// determinism comparisons.
    pub fn cardinality_trace(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for w in &self.workers {
            out.extend_from_slice(&w.cardinalities);
        }
        out
    }
}

/// Load `data` into a fresh engine from `factory`, then run the configured
/// workload with `cfg.threads` concurrent workers against it in-process.
pub fn run(
    factory: &dyn Fn() -> Box<dyn GraphDb>,
    data: &Dataset,
    cfg: &WorkloadConfig,
) -> GdbResult<RunReport> {
    // Fail fast on a bad config before the expensive load; run_backend
    // re-validates for callers that enter there directly.
    validate(cfg)?;
    let (lock, params, engine) = prepare(factory, data, cfg)?;
    let backend = LocalBackend::new(engine, &lock, &params, cfg.op_timeout);
    run_backend(&backend, &data.name, cfg)
}

/// Execute the *same* per-worker op sequences one worker after another on a
/// single thread — the sequential reference a concurrent read-only run must
/// reproduce exactly. Pacing is forced to closed-loop: an open-loop arrival
/// schedule assumes concurrent workers, so replaying it serially would fold
/// earlier workers' runtimes into later workers' latencies.
pub fn run_sequential(
    factory: &dyn Fn() -> Box<dyn GraphDb>,
    data: &Dataset,
    cfg: &WorkloadConfig,
) -> GdbResult<RunReport> {
    validate(cfg)?;
    let (lock, params, engine) = prepare(factory, data, cfg)?;
    let backend = LocalBackend::new(engine, &lock, &params, cfg.op_timeout);
    run_backend_sequential(&backend, &data.name, cfg)
}

/// Load `data` into a fresh snapshot source from `factory`, then run the
/// configured workload with `cfg.threads` concurrent workers whose **reads
/// pin MVCC epochs** instead of taking the engine's read lock — the
/// snapshot-mode counterpart of [`run`], differing only in the read path so
/// the two reports compare isolation cost directly.
pub fn run_snapshot(
    factory: &dyn Fn() -> Box<dyn SnapshotSource>,
    data: &Dataset,
    cfg: &WorkloadConfig,
) -> GdbResult<RunReport> {
    validate(cfg)?;
    let (source, params) = prepare_snapshot(factory, data, cfg)?;
    let backend = SnapshotBackend::new(source.as_ref(), &params, cfg.op_timeout);
    run_backend(&backend, &data.name, cfg)
}

/// Sequential (single-threaded, closed-loop) replay of [`run_snapshot`]'s
/// op sequences — the reference a concurrent snapshot-mode read-only run
/// must reproduce exactly.
pub fn run_snapshot_sequential(
    factory: &dyn Fn() -> Box<dyn SnapshotSource>,
    data: &Dataset,
    cfg: &WorkloadConfig,
) -> GdbResult<RunReport> {
    validate(cfg)?;
    let (source, params) = prepare_snapshot(factory, data, cfg)?;
    // Strict pins: a sequential replay must be deterministic (independent
    // of wall-clock publish cadence) and read its own earlier writes.
    let backend = SnapshotBackend::new(source.as_ref(), &params, cfg.op_timeout)
        .with_pin_staleness(Duration::ZERO);
    run_backend_sequential(&backend, &data.name, cfg)
}

/// Transactional-session counterpart of [`run_snapshot`]: every worker
/// buffers its writes in an epoch-pinned [`WriteTxn`], commits each batch
/// of `txn_ops` writes atomically (and the final partial batch at session
/// finish), and counts commits lost to first-committer-wins validation in
/// [`WorkerStats::txn_conflicts`]. `txn_ops == 0` degrades to plain
/// autocommit — identical to [`run_snapshot`].
pub fn run_snapshot_txn(
    factory: &dyn Fn() -> Box<dyn SnapshotSource>,
    data: &Dataset,
    cfg: &WorkloadConfig,
    txn_ops: u64,
) -> GdbResult<RunReport> {
    validate(cfg)?;
    let (source, params) = prepare_snapshot(factory, data, cfg)?;
    let backend =
        SnapshotBackend::new(source.as_ref(), &params, cfg.op_timeout).with_txn_ops(txn_ops);
    run_backend(&backend, &data.name, cfg)
}

/// Commit cadence for transactional session mode, from the `GM_TXN_OPS`
/// environment knob: writes buffered per transaction before a commit.
/// Default 8; `0` means autocommit (transactions disabled); unparsable
/// values fall back to the default.
pub fn txn_ops_from_env() -> u64 {
    match std::env::var("GM_TXN_OPS") {
        Ok(s) => s.trim().parse().unwrap_or(8),
        Err(_) => 8,
    }
}

/// Build a loaded, parameter-resolved snapshot source: bulk-load through
/// the write path, then resolve workload parameters against a pinned
/// snapshot — all outside the measured region, as §4.2 prescribes.
pub fn prepare_snapshot(
    factory: &dyn Fn() -> Box<dyn SnapshotSource>,
    data: &Dataset,
    cfg: &WorkloadConfig,
) -> GdbResult<(Box<dyn SnapshotSource>, ResolvedParams)> {
    let source = factory();
    source.with_write(&mut |db| {
        db.bulk_load(data, &LoadOptions::default())?;
        db.sync()?;
        Ok(0)
    })?;
    let workload = Workload::choose(data, cfg.seed, WORKLOAD_SLOTS);
    let snap = source.snapshot()?;
    let params = workload.resolve(snap.as_ref())?;
    drop(snap);
    Ok((source, params))
}

/// Run the configured workload over an arbitrary [`Backend`] with
/// `cfg.threads` concurrent workers. Each worker opens its own session on
/// its own thread, then replays its deterministic op sequence under the
/// configured pacing. The backend is expected to be fully set up (engine
/// loaded, parameters resolved) before this is called — setup, including
/// session opening (a TCP dial + handshake for remote backends), stays
/// outside the measured region, as §4.2 prescribes: the clock starts, and
/// the open-loop arrival schedule is anchored, only after every worker has
/// its session.
pub fn run_backend(
    backend: &dyn Backend,
    dataset: &str,
    cfg: &WorkloadConfig,
) -> GdbResult<RunReport> {
    validate(cfg)?;
    let engine = backend.engine();
    let mix = cfg.mix.mix();
    // All workers open their sessions, rendezvous at the barrier, and only
    // then does the coordinator stamp the shared start instant — so session
    // setup cost can never leak into wall time, latency samples, or the
    // arrival schedule (a slow dial would otherwise make the earliest
    // scheduled arrivals spuriously late, or even shed).
    let barrier = std::sync::Barrier::new(cfg.threads as usize + 1);
    let start_cell: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    // One tail gate per run, shared by every worker: the moving tail
    // threshold adapts to the run's own latency regime, and sharing it means
    // "tail" means the same thing across workers.
    let gate = TailGate::new();
    let joined: Vec<GdbResult<WorkerStats>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.threads as usize)
            .map(|w| {
                let mix = &mix;
                let barrier = &barrier;
                let start_cell = &start_cell;
                let gate = &gate;
                s.spawn(move || {
                    let session = backend.open_session(w);
                    // Two barrier rounds, reached even on failure (the
                    // coordinator and the other workers are waiting): round
                    // one declares "my session is open", round two releases
                    // everyone after the coordinator stamped the start.
                    barrier.wait();
                    barrier.wait();
                    let start = *start_cell.get().expect("start stamped before release");
                    let mut session = session?;
                    worker_loop(w, session.as_mut(), mix, cfg, start, gate)
                })
            })
            .collect();
        barrier.wait(); // round 1: every session is open (or failed)
        let _ = start_cell.set(Instant::now());
        barrier.wait(); // round 2: release the workers into the measured region
        handles
            .into_iter()
            .enumerate()
            .map(|(w, h)| {
                // A worker that panicked (almost certainly inside an engine
                // write, poisoning the shared lock) aborts the whole run:
                // the engine may be half-mutated, so no further measurement
                // against it is trustworthy.
                h.join().unwrap_or_else(|_| {
                    Err(GdbError::Poisoned(format!(
                        "worker {w} panicked mid-run; engine state is unreliable"
                    )))
                })
            })
            .collect()
    });
    let wall_nanos = start_cell
        .get()
        .expect("start stamped during the run")
        .elapsed()
        .as_nanos() as u64;
    let mut workers = Vec::with_capacity(joined.len());
    for r in joined {
        workers.push(r?);
    }
    Ok(assemble(
        engine,
        backend.isolation(),
        dataset,
        cfg,
        wall_nanos,
        workers,
    ))
}

/// Sequential (single-threaded, closed-loop) replay of the same per-worker
/// op sequences over an arbitrary [`Backend`] — the reference a concurrent
/// read-only run must reproduce exactly, over any transport.
pub fn run_backend_sequential(
    backend: &dyn Backend,
    dataset: &str,
    cfg: &WorkloadConfig,
) -> GdbResult<RunReport> {
    let cfg = WorkloadConfig {
        pacing: Pacing::Closed,
        ..cfg.clone()
    };
    let cfg = &cfg;
    validate(cfg)?;
    let engine = backend.engine();
    let mix = cfg.mix.mix();
    // Sessions open before the clock starts, as in the concurrent path.
    let mut sessions: Vec<Box<dyn Session + '_>> = (0..cfg.threads as usize)
        .map(|w| backend.open_session(w))
        .collect::<GdbResult<_>>()?;
    let gate = TailGate::new();
    let start = Instant::now();
    let workers: Vec<WorkerStats> = sessions
        .iter_mut()
        .enumerate()
        .map(|(w, session)| worker_loop(w, session.as_mut(), &mix, cfg, start, &gate))
        .collect::<GdbResult<_>>()?;
    let wall_nanos = start.elapsed().as_nanos() as u64;
    Ok(assemble(
        engine,
        backend.isolation(),
        dataset,
        cfg,
        wall_nanos,
        workers,
    ))
}

/// The shared-engine lock every in-process run uses: concurrent reads under
/// the shared lock, serialized writes under the exclusive one.
pub type SharedEngine = RwLock<Box<dyn GraphDb>>;

/// The in-process backend: all workers share one engine behind the
/// [`SharedEngine`] `RwLock`, with parameters already resolved against it.
pub struct LocalBackend<'a> {
    engine: String,
    lock: &'a SharedEngine,
    params: &'a ResolvedParams,
    op_timeout: Duration,
}

impl<'a> LocalBackend<'a> {
    /// Wrap a loaded, parameter-resolved shared engine.
    pub fn new(
        engine: String,
        lock: &'a SharedEngine,
        params: &'a ResolvedParams,
        op_timeout: Duration,
    ) -> Self {
        LocalBackend {
            engine,
            lock,
            params,
            op_timeout,
        }
    }
}

impl Backend for LocalBackend<'_> {
    fn engine(&self) -> String {
        self.engine.clone()
    }

    fn open_session(&self, _worker: usize) -> GdbResult<Box<dyn Session + '_>> {
        Ok(Box::new(LocalSession {
            lock: self.lock,
            params: self.params,
            op_timeout: self.op_timeout,
            owned_edges: Vec::new(),
        }))
    }
}

struct LocalSession<'a> {
    lock: &'a SharedEngine,
    params: &'a ResolvedParams,
    op_timeout: Duration,
    owned_edges: Vec<Eid>,
}

impl Session for LocalSession<'_> {
    fn execute(&mut self, op: Op, worker: usize, op_index: u64) -> GdbResult<OpResult> {
        // A poisoned lock means a writer panicked while mutating the engine.
        // Recovering (`into_inner`) would keep measuring against half-mutated
        // state; surface a distinct error so the whole run aborts instead.
        let poisoned = |side: &str| {
            GdbError::Poisoned(format!(
                "{side} lock poisoned before op {op_index} of worker {worker}"
            ))
        };
        // Reset all per-op phase state on *entry*: an earlier op that
        // panicked or aborted on a poisoned lock unwound without taking its
        // accumulators, and that residue must not be attributed to this op.
        phase::reset_op();
        match op {
            Op::Read(inst) => {
                let ctx = QueryCtx::with_timeout(self.op_timeout);
                // gm-lock: driver
                let _t = gm_model::lockorder::acquire(
                    gm_model::lockorder::LockRank::Driver,
                    "gm-workload/driver.rs engine read",
                );
                let db =
                    gm_model::lockwait::timed(|| self.lock.read()).map_err(|_| poisoned("read"))?;
                let card = {
                    let _exec = phase::span(Phase::EngineExec);
                    catalog::execute_read(&inst, db.as_ref(), self.params, &ctx)?
                };
                Ok(OpResult::plain(card).with_phases(phase::take_all()))
            }
            // No deadline on writes: the GraphDb mutation API carries no
            // QueryCtx (mutations are point operations in the paper's
            // taxonomy), so `op_timeout` bounds reads only.
            Op::Write(wop) => {
                // gm-lock: driver
                let _t = gm_model::lockorder::acquire(
                    gm_model::lockorder::LockRank::Driver,
                    "gm-workload/driver.rs engine write",
                );
                let mut db = gm_model::lockwait::timed(|| self.lock.write())
                    .map_err(|_| poisoned("write"))?;
                let card = {
                    let _exec = phase::span(Phase::EngineExec);
                    apply_write(
                        wop,
                        db.as_mut(),
                        self.params,
                        worker,
                        op_index,
                        &mut self.owned_edges,
                    )?
                };
                Ok(OpResult::plain(card).with_phases(phase::take_all()))
            }
        }
    }
}

/// The in-process **snapshot-isolation** backend: every read op pins a
/// fresh epoch from a [`SnapshotSource`] and executes against it lock-free
/// (a scan can no longer block a writer, and a writer can no longer block a
/// running scan — only the brief pin synchronizes); writes go through
/// [`SnapshotSource::with_write`]. Each `OpResult` carries the serving
/// epoch, so the driver's epoch-skew accounting works end to end.
pub struct SnapshotBackend<'a> {
    source: &'a dyn SnapshotSource,
    params: &'a ResolvedParams,
    op_timeout: Duration,
    /// Pin staleness bound: [`SNAPSHOT_PIN_STALENESS`] for concurrent runs
    /// (group-committed publishes), [`Duration::ZERO`] for sequential
    /// replays, where every pin must be strict so a worker reads its own
    /// earlier writes and the trace stays wall-clock-independent.
    pin_staleness: Duration,
    /// Transactional session mode: 0 (default) is autocommit — every write
    /// goes straight through [`SnapshotSource::with_write`] as before.
    /// `n > 0` makes each session buffer its writes in an epoch-pinned
    /// [`WriteTxn`], committing every `n` writes and once more at
    /// [`Session::finish`]. A commit that loses first-committer-wins
    /// validation discards the buffered set and counts a
    /// [`WorkerStats::txn_conflicts`] instead of an op error.
    txn_ops: u64,
}

impl<'a> SnapshotBackend<'a> {
    /// Wrap a loaded, parameter-resolved snapshot source (group-committed
    /// pins at [`SNAPSHOT_PIN_STALENESS`]).
    pub fn new(
        source: &'a dyn SnapshotSource,
        params: &'a ResolvedParams,
        op_timeout: Duration,
    ) -> Self {
        SnapshotBackend {
            source,
            params,
            op_timeout,
            pin_staleness: SNAPSHOT_PIN_STALENESS,
            txn_ops: 0,
        }
    }

    /// Override the pin staleness bound (`Duration::ZERO` = strict
    /// read-your-writes pins).
    pub fn with_pin_staleness(mut self, pin_staleness: Duration) -> Self {
        self.pin_staleness = pin_staleness;
        self
    }

    /// Enable transactional session mode: buffer writes in an epoch-pinned
    /// [`WriteTxn`] and commit every `txn_ops` writes (0 = autocommit, the
    /// default). See [`SnapshotBackend::txn_ops`].
    pub fn with_txn_ops(mut self, txn_ops: u64) -> Self {
        self.txn_ops = txn_ops;
        self
    }
}

impl Backend for SnapshotBackend<'_> {
    fn engine(&self) -> String {
        self.source.engine()
    }

    fn isolation(&self) -> String {
        // Transactional runs get their own label so they never collide with
        // autocommit snapshot runs in the report matrix.
        if self.txn_ops > 0 {
            format!("snapshot-{}+txn", self.source.kind())
        } else {
            format!("snapshot-{}", self.source.kind())
        }
    }

    fn open_session(&self, _worker: usize) -> GdbResult<Box<dyn Session + '_>> {
        Ok(Box::new(SnapshotSession {
            source: self.source,
            params: self.params,
            op_timeout: self.op_timeout,
            pin_staleness: self.pin_staleness,
            owned_edges: Vec::new(),
            txn_ops: self.txn_ops,
            txn: None,
            txn_writes: 0,
            txn_conflicts: 0,
        }))
    }
}

struct SnapshotSession<'a> {
    source: &'a dyn SnapshotSource,
    params: &'a ResolvedParams,
    op_timeout: Duration,
    pin_staleness: Duration,
    owned_edges: Vec<Eid>,
    /// Commit cadence (writes per transaction); 0 = autocommit.
    txn_ops: u64,
    /// The open transaction, if any. Opened lazily by the first write of a
    /// batch; reads issued while it is open are served from its
    /// read-your-writes overlay at the pinned base epoch.
    txn: Option<WriteTxn>,
    /// Writes buffered in the open transaction so far.
    txn_writes: u64,
    /// Commits lost to first-committer-wins validation.
    txn_conflicts: u64,
}

impl SnapshotSession<'_> {
    /// Commit the open transaction, if any. A `TxnConflict` is the expected
    /// outcome of losing a validation race: count it and move on (the
    /// buffered set is already discarded); anything else is a real failure.
    fn commit_open(&mut self) -> GdbResult<()> {
        if let Some(txn) = self.txn.take() {
            match txn.commit(self.source) {
                Ok(_) => {}
                Err(GdbError::TxnConflict(_)) => self.txn_conflicts += 1,
                Err(e) => return Err(e),
            }
            self.txn_writes = 0;
            // Edge ids minted inside the transaction were placeholders; the
            // real ids were assigned (or discarded) at commit, so they are
            // unusable outside it. Drop them from the deletion pool —
            // `RemoveOwnEdge` degrades to a create when the pool runs dry,
            // exactly as it does early in an autocommit run.
            self.owned_edges.retain(|e| e.0 & TXN_ID_TAG == 0);
        }
        Ok(())
    }
}

impl Session for SnapshotSession<'_> {
    fn execute(&mut self, op: Op, worker: usize, op_index: u64) -> GdbResult<OpResult> {
        // The waits on this path happen inside the snapshot source (pin
        // locks, the writer mutex), which reports them through the
        // thread-local `lockwait` accumulator; the source also opens
        // `clone_publish` spans when it pays an epoch clone. Reset on entry
        // so nothing from an aborted predecessor leaks into this op.
        phase::reset_op();
        match op {
            Op::Read(inst) => {
                let ctx = QueryCtx::with_timeout(self.op_timeout);
                // Inside an open transaction, reads serve the transaction's
                // read-your-writes overlay at its pinned base epoch — the
                // worker sees its own buffered writes. No epoch is reported:
                // the strict base pin interleaved with group-committed
                // `snapshot_recent` pins (which may lag it) would register
                // as skew when it is really two pin disciplines side by
                // side; the transaction's epoch discipline is enforced at
                // commit validation instead.
                if let Some(txn) = &self.txn {
                    let cardinality = {
                        let _exec = phase::span(Phase::EngineExec);
                        catalog::execute_read(&inst, txn, self.params, &ctx)?
                    };
                    return Ok(OpResult {
                        cardinality,
                        epoch: None,
                        phases: phase::take_all(),
                    });
                }
                let snap = {
                    let _pin = phase::span(Phase::SnapshotPin);
                    self.source.snapshot_recent(self.pin_staleness)?
                };
                let cardinality = {
                    let _exec = phase::span(Phase::EngineExec);
                    catalog::execute_read(&inst, snap.as_ref(), self.params, &ctx)?
                };
                Ok(OpResult {
                    cardinality,
                    epoch: Some(snap.epoch()),
                    phases: phase::take_all(),
                })
            }
            Op::Write(wop) => {
                if self.txn_ops > 0 {
                    // Transactional mode: buffer into the epoch-pinned write
                    // transaction, committing every `txn_ops` writes.
                    if self.txn.is_none() {
                        let _pin = phase::span(Phase::SnapshotPin);
                        self.txn = Some(WriteTxn::begin(self.source)?);
                    }
                    let card = {
                        let _exec = phase::span(Phase::EngineExec);
                        let txn = self.txn.as_mut().expect("opened above");
                        apply_write(
                            wop,
                            txn,
                            self.params,
                            worker,
                            op_index,
                            &mut self.owned_edges,
                        )?
                    };
                    self.txn_writes += 1;
                    if self.txn_writes >= self.txn_ops {
                        let _publish = phase::span(Phase::ClonePublish);
                        self.commit_open()?;
                    }
                    return Ok(OpResult::plain(card).with_phases(phase::take_all()));
                }
                let params = self.params;
                let owned_edges = &mut self.owned_edges;
                let card = {
                    let _exec = phase::span(Phase::EngineExec);
                    self.source.with_write(&mut |db| {
                        apply_write(wop, db, params, worker, op_index, owned_edges)
                    })?
                };
                Ok(OpResult::plain(card).with_phases(phase::take_all()))
            }
        }
    }

    fn finish(&mut self) -> GdbResult<()> {
        // Commit whatever the last partial batch buffered, so every write
        // issued inside the measured run lands (or conflicts) before the
        // worker's stats are taken.
        self.commit_open()
    }

    fn txn_conflicts(&self) -> u64 {
        self.txn_conflicts
    }
}

/// Below this remaining wait the pacer spins instead of sleeping:
/// `thread::sleep` routinely oversleeps by tens of microseconds, which at
/// high arrival rates makes the *pacer* (not the engine) fall behind
/// schedule and spuriously shed.
const SPIN_THRESHOLD: Duration = Duration::from_micros(200);

/// Wait until `at` with sleep for the bulk and a spin for the tail, so the
/// arrival schedule is honored to sub-microsecond accuracy.
fn wait_until(at: Instant) {
    loop {
        let now = Instant::now();
        if now >= at {
            return;
        }
        let remaining = at - now;
        if remaining > SPIN_THRESHOLD {
            std::thread::sleep(remaining - SPIN_THRESHOLD);
        } else {
            std::hint::spin_loop();
        }
    }
}

fn validate(cfg: &WorkloadConfig) -> GdbResult<()> {
    if cfg.threads == 0 {
        return Err(GdbError::Invalid(
            "workload needs at least one worker".into(),
        ));
    }
    if cfg.ops_per_worker == 0 {
        return Err(GdbError::Invalid(
            "workload needs at least one op per worker".into(),
        ));
    }
    if let Pacing::Open { ops_per_sec, .. } = cfg.pacing {
        if ops_per_sec <= 0.0 || !ops_per_sec.is_finite() {
            return Err(GdbError::Invalid(format!(
                "open-loop pacing needs a positive finite rate, got {ops_per_sec}"
            )));
        }
    }
    Ok(())
}

fn prepare(
    factory: &dyn Fn() -> Box<dyn GraphDb>,
    data: &Dataset,
    cfg: &WorkloadConfig,
) -> GdbResult<(SharedEngine, ResolvedParams, String)> {
    let mut db = factory();
    let engine = db.name();
    db.bulk_load(data, &LoadOptions::default())?;
    db.sync()?;
    // Parameter resolution happens before the measured region, as §4.2
    // prescribes for the sequential runner.
    let workload = Workload::choose(data, cfg.seed, WORKLOAD_SLOTS);
    let params = workload.resolve(db.as_ref())?;
    Ok((RwLock::new(db), params, engine))
}

fn assemble(
    engine: String,
    isolation: String,
    dataset: &str,
    cfg: &WorkloadConfig,
    wall_nanos: u64,
    workers: Vec<WorkerStats>,
) -> RunReport {
    let mut hist = LatencyHistogram::new();
    for w in &workers {
        hist.merge(&w.hist);
    }
    RunReport {
        engine,
        dataset: dataset.to_string(),
        mix: cfg.mix.name().to_string(),
        isolation,
        threads: cfg.threads,
        offered_ops_per_sec: cfg.pacing.offered_rate(),
        wall_nanos,
        workers,
        hist,
    }
}

fn worker_loop(
    worker: usize,
    session: &mut dyn Session,
    mix: &Mix,
    cfg: &WorkloadConfig,
    start: Instant,
    gate: &TailGate,
) -> GdbResult<WorkerStats> {
    let mut rng = Mix::worker_rng(cfg.seed, worker);
    let mut stats = WorkerStats {
        worker,
        ops: 0,
        read_ops: 0,
        errors: 0,
        shed: 0,
        epoch_skew: 0,
        txn_conflicts: 0,
        phases: PhaseNanos::zero(),
        hist: LatencyHistogram::new(),
        cardinalities: Vec::new(),
    };
    // Highest serving epoch this worker has observed; a later read serving
    // a *lower* epoch is skew (the engine behind the session was replaced,
    // e.g. a remote Reset raced the run).
    let mut max_epoch: Option<u64> = None;
    for i in 0..cfg.ops_per_worker {
        // Always draw from the RNG, shed or not, so trace position `i` maps
        // to the same op regardless of which arrivals were shed.
        let op = mix.pick(&mut rng);
        // Open-loop: wait for this op's scheduled arrival, and measure from
        // it, so time spent queueing behind a slow engine is *in* the
        // latency rather than silently coordinated away. When the schedule
        // has slipped past the backlog bound, shed the op instead of digging
        // the backlog deeper.
        let issue_at = match cfg.pacing {
            Pacing::Closed => Instant::now(),
            Pacing::Open {
                ops_per_sec,
                max_lateness,
            } => {
                let k = worker as u64 + i * cfg.threads as u64;
                let at = start + Duration::from_secs_f64(k as f64 / ops_per_sec);
                let now = Instant::now();
                if at > now {
                    wait_until(at);
                } else if let Some(bound) = max_lateness {
                    if now.duration_since(at) > bound {
                        stats.shed += 1;
                        if cfg.record_cardinalities {
                            stats.cardinalities.push(SHED_CARD);
                        }
                        continue;
                    }
                }
                at
            }
        };
        // Trace identity for this op: deterministic in (seed, worker, index),
        // so a replayed run names the same ops; 0 when `GM_TRACE=off`, which
        // also keeps the thread-local and the downstream record calls
        // untouched (the off path adds no clock reads and no allocation).
        let t_id = trace::derive_id(cfg.seed, worker as u32, i);
        if t_id != 0 {
            trace::begin_op(t_id);
        }
        let result = session.execute(op, worker, i);
        if let Err(GdbError::Poisoned(why)) = result {
            // Another worker panicked inside a write and left the engine
            // half-mutated: abort instead of recovering into corrupt state.
            return Err(GdbError::Poisoned(why));
        }
        let nanos = issue_at.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let recorded = t_id != 0
            && trace::record_op(
                gate,
                t_id,
                worker as u32,
                i,
                op.trace_code(),
                trace::TraceOrigin::Client,
                nanos,
                match &result {
                    Ok(res) => res.phases,
                    Err(_) => PhaseNanos::zero(),
                },
            );
        // Only an id whose record actually landed in the flight recorder may
        // become an exemplar — that is the guarantee that every reported
        // `p99_exemplar` resolves to a retrievable trace record.
        stats
            .hist
            .record_traced(nanos, if recorded { t_id } else { 0 });
        match result {
            Ok(res) => {
                stats.ops += 1;
                stats.phases.accumulate(&res.phases);
                if matches!(op, Op::Read(_)) {
                    stats.read_ops += 1;
                }
                if let Some(epoch) = res.epoch {
                    if max_epoch.is_some_and(|m| epoch < m) {
                        stats.epoch_skew += 1;
                    }
                    // Adopt the observed epoch as the new reference, even
                    // when it is *lower*: a drop means the engine behind
                    // the session was replaced (a `Reset` restarted epochs
                    // at 0), and each op is charged at most one skew
                    // against the regime it actually raced. Keeping the old
                    // high-water mark instead would re-count the same reset
                    // on every later read — a strict pin that retried after
                    // racing a reset used to inflate skew for the whole
                    // rest of the run.
                    max_epoch = Some(epoch);
                }
                if cfg.record_cardinalities {
                    stats.cardinalities.push(res.cardinality);
                }
            }
            Err(_) => {
                stats.errors += 1;
                if cfg.record_cardinalities {
                    stats.cardinalities.push(ERR_CARD);
                }
            }
        }
    }
    session.finish()?;
    stats.txn_conflicts = session.txn_conflicts();
    Ok(stats)
}

/// Apply one driver write op — the server side of the concurrency contract.
///
/// Public because remote transports (`gm-net`) replay the *identical*
/// mutation server-side: worker-unique property names, endpoint pools strided
/// by worker, and deletions restricted to this worker's own earlier edges
/// (`owned_edges`, one pool per session) all must match the in-process
/// driver bit for bit for run results to be comparable across transports.
pub fn apply_write(
    wop: WriteOp,
    db: &mut dyn GraphDb,
    params: &ResolvedParams,
    worker: usize,
    op_index: u64,
    owned_edges: &mut Vec<Eid>,
) -> GdbResult<u64> {
    match wop {
        WriteOp::AddVertex => {
            db.add_vertex(
                "wl_vertex",
                &vec![
                    ("wl_worker".into(), Value::Int(worker as i64)),
                    ("wl_seq".into(), Value::Int(op_index as i64)),
                ],
            )?;
            Ok(1)
        }
        WriteOp::AddEdge => {
            // Endpoints from the pre-resolved pair pool; workers stride
            // through it at different offsets so contention is realistic.
            let (src, dst) = params.pair(worker.wrapping_mul(7919).wrapping_add(op_index as usize));
            let eid = db.add_edge(src, dst, "wl_edge", &Vec::new())?;
            owned_edges.push(eid);
            Ok(1)
        }
        WriteOp::SetVertexProp => {
            // Worker-unique property name: workers never clobber each other,
            // so a run's end state is independent of interleaving.
            db.set_vertex_property(
                params.vertex,
                &format!("wl_w{worker}"),
                Value::Int(op_index as i64),
            )?;
            Ok(1)
        }
        WriteOp::RemoveOwnEdge => match owned_edges.pop() {
            Some(eid) => {
                db.remove_edge(eid)?;
                Ok(1)
            }
            // Nothing of ours left to delete — degrade to a create so the
            // op count stays comparable across runs.
            None => apply_write(
                WriteOp::AddVertex,
                db,
                params,
                worker,
                op_index,
                owned_edges,
            ),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine_linked::LinkedGraph;
    use gm_model::{testkit, GraphSnapshot};
    use gm_mvcc::SnapshotSource;

    fn factory() -> Box<dyn GraphDb> {
        Box::new(LinkedGraph::v1())
    }

    fn small_cfg(mix: MixKind, threads: u32) -> WorkloadConfig {
        WorkloadConfig {
            mix,
            threads,
            ops_per_worker: 60,
            seed: 11,
            record_cardinalities: true,
            ..WorkloadConfig::default()
        }
    }

    #[test]
    fn closed_loop_mixed_run_completes() {
        let data = testkit::chain_dataset(200);
        let report = run(&factory, &data, &small_cfg(MixKind::Mixed, 4)).unwrap();
        assert_eq!(report.threads, 4);
        assert_eq!(report.ops() + report.errors(), 4 * 60);
        assert_eq!(report.errors(), 0, "no op should fail on the linked engine");
        assert_eq!(report.hist.count(), 4 * 60);
        assert!(report.wall_nanos > 0);
        assert!(report.throughput() > 0.0);
        let row = report.scaling_row();
        assert_eq!(row.ops, 240);
        assert!(row.p50_nanos <= row.p99_nanos);
    }

    #[test]
    fn read_only_concurrent_matches_sequential() {
        let data = testkit::chain_dataset(300);
        let cfg = small_cfg(MixKind::ReadOnly, 4);
        let concurrent = run(&factory, &data, &cfg).unwrap();
        let sequential = run_sequential(&factory, &data, &cfg).unwrap();
        assert_eq!(
            concurrent.cardinality_trace(),
            sequential.cardinality_trace(),
            "read-only results must not depend on interleaving"
        );
        assert_eq!(concurrent.ops(), sequential.ops());
    }

    #[test]
    fn open_loop_records_latency_from_arrival() {
        let data = testkit::chain_dataset(100);
        let cfg = WorkloadConfig {
            mix: MixKind::ReadOnly,
            threads: 2,
            ops_per_worker: 40,
            pacing: Pacing::open(4_000.0),
            ..WorkloadConfig::default()
        };
        let report = run(&factory, &data, &cfg).unwrap();
        assert_eq!(report.ops(), 80);
        assert_eq!(report.shed(), 0, "unbounded open loop never sheds");
        assert_eq!(report.offered_ops_per_sec, Some(4_000.0));
        // 80 ops at 4k/s arrive over ~20 ms: the run cannot finish faster.
        assert!(
            report.wall_nanos >= 15_000_000,
            "open loop paces the run ({} ns)",
            report.wall_nanos
        );
    }

    #[test]
    fn write_heavy_grows_the_graph() {
        let data = testkit::chain_dataset(120);
        let cfg = small_cfg(MixKind::WriteHeavy, 3);
        let report = run(&factory, &data, &cfg).unwrap();
        assert_eq!(report.errors(), 0);
        assert_eq!(report.mix, "write-heavy");
    }

    #[test]
    fn snapshot_read_only_matches_locked_and_sequential() {
        use gm_mvcc::CowCell;
        let data = testkit::chain_dataset(300);
        let cfg = small_cfg(MixKind::ReadOnly, 4);
        let snap_factory =
            || -> Box<dyn SnapshotSource> { Box::new(CowCell::new(LinkedGraph::v1())) };
        let snap = run_snapshot(&snap_factory, &data, &cfg).unwrap();
        let locked = run(&factory, &data, &cfg).unwrap();
        let seq = run_sequential(&factory, &data, &cfg).unwrap();
        // Same results through all three read paths — the isolation
        // mechanism must never change what a read returns.
        assert_eq!(snap.cardinality_trace(), seq.cardinality_trace());
        assert_eq!(snap.cardinality_trace(), locked.cardinality_trace());
        assert_eq!(snap.isolation, "snapshot-cow");
        assert_eq!(locked.isolation, "locked");
        assert_eq!(snap.epoch_skew(), 0, "monotone epochs never skew");
        assert_eq!(snap.errors(), 0);
    }

    #[test]
    fn snapshot_write_heavy_completes_and_labels_the_measurement() {
        use gm_mvcc::CowCell;
        let data = testkit::chain_dataset(150);
        let cfg = small_cfg(MixKind::WriteHeavy, 3);
        let snap_factory =
            || -> Box<dyn SnapshotSource> { Box::new(CowCell::new(LinkedGraph::v1())) };
        let report = run_snapshot(&snap_factory, &data, &cfg).unwrap();
        assert_eq!(report.errors(), 0, "no op should fail under snapshots");
        assert_eq!(report.ops(), 3 * 60);
        assert_eq!(report.epoch_skew(), 0);
        let row = report.scaling_row();
        assert_eq!(row.isolation, "snapshot-cow");
        assert_eq!(row.epoch_skew, 0);
        // The measurement label distinguishes snapshot from locked runs so
        // they never collide in the report matrix.
        let m = report.to_measurement();
        assert!(m.query.ends_with("[snapshot-cow]"), "{}", m.query);
        // The sequential snapshot replay agrees with the concurrent run on
        // the read-only prefix semantics (write-heavy traces differ by
        // interleaving, so just check it runs clean).
        let seq = run_snapshot_sequential(&snap_factory, &data, &cfg).unwrap();
        assert_eq!(seq.errors(), 0);
    }

    /// Single worker, one transaction spanning the whole run (committed at
    /// session finish): the committed graph must equal the autocommit run's
    /// graph exactly — same deterministic op sequence, no interleaving, no
    /// conflicts possible, so transactional replay loses nothing.
    #[test]
    fn transactional_replay_matches_autocommit_final_state() {
        use gm_mvcc::CowCell;
        let data = testkit::chain_dataset(150);
        let cfg = small_cfg(MixKind::WriteHeavy, 1);
        let snap_factory =
            || -> Box<dyn SnapshotSource> { Box::new(CowCell::new(LinkedGraph::v1())) };

        let counts = |source: &dyn SnapshotSource| -> (u64, u64) {
            let snap = source.snapshot().unwrap();
            let ctx = QueryCtx::unbounded();
            (
                snap.vertex_count(&ctx).unwrap(),
                snap.edge_count(&ctx).unwrap(),
            )
        };

        let (txn_src, txn_params) = prepare_snapshot(&snap_factory, &data, &cfg).unwrap();
        let backend = SnapshotBackend::new(txn_src.as_ref(), &txn_params, cfg.op_timeout)
            .with_txn_ops(u64::MAX);
        let txn_report = run_backend(&backend, &data.name, &cfg).unwrap();
        assert_eq!(txn_report.errors(), 0);
        assert_eq!(txn_report.txn_conflicts(), 0, "nothing to race against");
        assert_eq!(txn_report.scaling_row().isolation, "snapshot-cow+txn");

        let (auto_src, auto_params) = prepare_snapshot(&snap_factory, &data, &cfg).unwrap();
        let backend = SnapshotBackend::new(auto_src.as_ref(), &auto_params, cfg.op_timeout);
        let auto_report = run_backend(&backend, &data.name, &cfg).unwrap();
        assert_eq!(auto_report.errors(), 0);

        assert_eq!(
            counts(txn_src.as_ref()),
            counts(auto_src.as_ref()),
            "one big committed transaction must land the same graph as autocommit"
        );
    }

    /// Concurrent transactional sessions racing on a shared victim vertex:
    /// a commit that loses first-committer-wins validation is counted in
    /// `txn_conflicts`, never as an op error, and the accounting threads
    /// through the report into the scaling row.
    #[test]
    fn transactional_conflicts_are_counted_not_errored() {
        use gm_mvcc::CowCell;
        let data = testkit::chain_dataset(200);
        let cfg = small_cfg(MixKind::WriteHeavy, 4);
        let snap_factory =
            || -> Box<dyn SnapshotSource> { Box::new(CowCell::new(LinkedGraph::v1())) };
        let report = run_snapshot_txn(&snap_factory, &data, &cfg, 4).unwrap();
        assert_eq!(report.errors(), 0, "a conflicted commit is not an op error");
        assert_eq!(report.ops(), 4 * 60, "every op completed");
        assert_eq!(report.epoch_skew(), 0, "txn reads report no epoch");
        let row = report.scaling_row();
        assert_eq!(row.isolation, "snapshot-cow+txn");
        assert_eq!(row.txn_conflicts, report.txn_conflicts());
        assert_eq!(
            report.txn_conflicts(),
            report.workers.iter().map(|w| w.txn_conflicts).sum::<u64>()
        );
    }

    #[test]
    fn txn_ops_env_knob_defaults_to_eight() {
        // No test in this workspace sets GM_TXN_OPS, so the unset default
        // is observable without mutating the (process-global) environment.
        if std::env::var("GM_TXN_OPS").is_err() {
            assert_eq!(txn_ops_from_env(), 8);
        }
    }

    #[test]
    fn measurement_row_shape() {
        let data = testkit::chain_dataset(100);
        let report = run(&factory, &data, &small_cfg(MixKind::ReadHeavy, 2)).unwrap();
        let m = report.to_measurement();
        assert_eq!(m.query, "WL:read-heavy@t2");
        assert_eq!(m.cardinality, Some(report.ops()));
        assert_eq!(m.outcome, Outcome::Completed);
    }

    /// Build a report by hand with chosen counters (the driver never errors
    /// on the linked engine, so partial failure must be constructed).
    fn hand_report(ops: u64, errors: u64, shed: u64) -> RunReport {
        let mut hist = LatencyHistogram::new();
        for _ in 0..(ops + errors) {
            hist.record(1_000);
        }
        RunReport {
            engine: "linked(v1)".into(),
            dataset: "d".into(),
            mix: "mixed".into(),
            isolation: "locked".into(),
            threads: 1,
            offered_ops_per_sec: None,
            wall_nanos: 1_000_000,
            workers: vec![WorkerStats {
                worker: 0,
                ops,
                read_ops: ops,
                errors,
                shed,
                epoch_skew: 0,
                txn_conflicts: 0,
                phases: PhaseNanos::zero(),
                hist: hist.clone(),
                cardinalities: Vec::new(),
            }],
            hist,
        }
    }

    /// Regression: a run with 99% errors must not render identically to a
    /// clean one (`to_measurement` used to report `Completed` whenever at
    /// least one op succeeded).
    #[test]
    fn measurement_surfaces_partial_failure() {
        assert_eq!(
            hand_report(100, 0, 0).to_measurement().outcome,
            Outcome::Completed
        );

        let degraded = hand_report(1, 99, 0);
        assert!((degraded.error_rate() - 0.99).abs() < 1e-9);
        match degraded.to_measurement().outcome {
            Outcome::Failed(why) => {
                assert!(why.contains("99 of 100"), "{why}");
                assert!(why.contains("99.0%"), "{why}");
            }
            o => panic!("expected Failed for a 99%-errors run, got {o:?}"),
        }

        match hand_report(0, 5, 0).to_measurement().outcome {
            Outcome::Failed(why) => {
                assert!(why.contains("no op completed"), "{why}");
                assert!(why.contains("5 of 5"), "{why}");
            }
            o => panic!("expected Failed for an all-errors run, got {o:?}"),
        }

        // Heavy shedding must not render as a clean completion either.
        let shed_heavy = hand_report(100, 0, 50);
        match shed_heavy.to_measurement().outcome {
            Outcome::Failed(why) => {
                assert!(why.contains("shed 50 of 150"), "{why}");
                assert!(why.contains("33.3%"), "{why}");
            }
            o => panic!("expected Failed for a shed-heavy run, got {o:?}"),
        }
    }

    #[test]
    fn overloaded_open_loop_sheds_and_terminates() {
        // Scan-heavy ops over 2000 vertices take tens of microseconds each;
        // 4000 arrivals offered over ~2 ms with a 5 ms lateness bound must
        // overload any engine, so the run sheds instead of queueing forever.
        let data = testkit::chain_dataset(2000);
        let cfg = WorkloadConfig {
            mix: MixKind::ScanHeavy,
            threads: 2,
            ops_per_worker: 2_000,
            seed: 5,
            record_cardinalities: true,
            pacing: Pacing::open_bounded(2_000_000.0, Duration::from_millis(5)),
            ..WorkloadConfig::default()
        };
        let t0 = Instant::now();
        let report = run(&factory, &data, &cfg).unwrap();
        assert!(
            t0.elapsed() < Duration::from_secs(60),
            "overload run must terminate in bounded time"
        );
        assert!(report.shed() > 0, "an overloaded run must shed");
        assert_eq!(
            report.ops() + report.errors() + report.shed(),
            4_000,
            "every scheduled op is completed, errored, or shed"
        );
        assert_eq!(
            report.hist.count(),
            report.ops() + report.errors(),
            "shed ops never enter the latency histogram"
        );
        assert_eq!(report.offered_ops_per_sec, Some(2_000_000.0));
        let row = report.scaling_row();
        assert_eq!(row.shed, report.shed());
        assert!(row.shed_fraction() > 0.0);
        // The measurement carries the offered rate in its label (so rates
        // don't collide in the report matrix) and reports the shedding.
        let m = report.to_measurement();
        assert!(m.query.ends_with("@2000000/s"), "{}", m.query);
        match m.outcome {
            Outcome::Failed(why) => assert!(why.contains("shed"), "{why}"),
            o => panic!("a shedding run must not report {o:?}"),
        }

        // Determinism under shedding: position i of the trace is the same op
        // whether or not earlier arrivals were shed, so every *executed*
        // position must match the closed-loop sequential replay exactly.
        let seq = run_sequential(&factory, &data, &cfg).unwrap();
        let (ct, st) = (report.cardinality_trace(), seq.cardinality_trace());
        assert_eq!(ct.len(), st.len());
        let mut executed = 0u64;
        for (i, (c, s)) in ct.iter().zip(st.iter()).enumerate() {
            if *c != SHED_CARD {
                assert_eq!(c, s, "executed position {i} must match the replay");
                executed += 1;
            }
        }
        assert_eq!(executed, report.ops() + report.errors());
    }

    /// A backend whose sessions serve a scripted epoch sequence — the test
    /// double for reads racing an engine `Reset` (epochs restart at 0).
    struct ScriptedEpochs {
        epochs: Vec<u64>,
    }

    struct ScriptedSession<'a> {
        epochs: &'a [u64],
        at: usize,
    }

    impl Backend for ScriptedEpochs {
        fn engine(&self) -> String {
            "scripted".into()
        }

        fn isolation(&self) -> String {
            "snapshot-scripted".into()
        }

        fn open_session(&self, _worker: usize) -> GdbResult<Box<dyn Session + '_>> {
            Ok(Box::new(ScriptedSession {
                epochs: &self.epochs,
                at: 0,
            }))
        }
    }

    impl Session for ScriptedSession<'_> {
        fn execute(&mut self, _op: Op, _worker: usize, _op_index: u64) -> GdbResult<OpResult> {
            let epoch = self.epochs[self.at % self.epochs.len()];
            self.at += 1;
            Ok(OpResult {
                cardinality: 1,
                epoch: Some(epoch),
                phases: PhaseNanos::zero(),
            }
            .with_lock_wait(3))
        }
    }

    /// Regression (epoch-skew double count): a strict pin that retries after
    /// racing a `Reset` observes the restarted epoch regime once — but the
    /// old accounting kept the pre-reset high-water mark, so every later
    /// read of the (monotone!) restarted sequence was re-counted as skew.
    /// One reset must cost exactly one skew event per worker.
    #[test]
    fn epoch_skew_counts_a_reset_once_not_per_remaining_op() {
        // Epochs 5,6 then a reset: 0,1,2,3. Only the 6→0 drop is skew; the
        // restarted sequence is monotone and must not keep counting.
        let backend = ScriptedEpochs {
            epochs: vec![5, 6, 0, 1, 2, 3],
        };
        let cfg = WorkloadConfig {
            mix: MixKind::ReadOnly,
            threads: 1,
            ops_per_worker: 6,
            ..WorkloadConfig::default()
        };
        let report = run_backend(&backend, "scripted", &cfg).unwrap();
        assert_eq!(
            report.epoch_skew(),
            1,
            "one reset is one skew event, not one per remaining read"
        );
        // A second reset costs a second event — drops are still detected.
        let backend = ScriptedEpochs {
            epochs: vec![5, 0, 1, 0, 1, 2],
        };
        let report = run_backend(&backend, "scripted", &cfg).unwrap();
        assert_eq!(report.epoch_skew(), 2, "each distinct drop counts once");
        // Lock-wait plumbing rides the same OpResult: 6 ops × 3 ns.
        assert_eq!(report.lock_wait_nanos(), 18);
        assert_eq!(report.scaling_row().lock_wait_nanos, 18);
    }

    /// Lock-wait accounting on the real locked backend: a write-heavy
    /// multi-worker run records acquisition waits and threads them through
    /// `WorkerStats` into the scaling row.
    #[test]
    fn locked_backend_records_lock_waits() {
        let data = testkit::chain_dataset(150);
        let report = run(&factory, &data, &small_cfg(MixKind::WriteHeavy, 4)).unwrap();
        assert_eq!(
            report.lock_wait_nanos(),
            report
                .workers
                .iter()
                .map(|w| w.phases.get(Phase::LockWait))
                .sum::<u64>()
        );
        assert_eq!(
            report.scaling_row().lock_wait_nanos,
            report.lock_wait_nanos()
        );
        // Four workers contending one RwLock: acquisition time is measured
        // (it can be small, but a 240-op contended run never totals zero).
        assert!(
            report.lock_wait_nanos() > 0,
            "contended run must record some lock wait"
        );
    }

    /// A `GraphDb` whose writes panic after a countdown, leaving the shared
    /// lock poisoned mid-run — the deliberate failure the driver must abort
    /// on rather than recover from.
    struct PanicOnWrite {
        inner: Box<dyn GraphDb>,
        writes_left: u32,
    }

    impl PanicOnWrite {
        fn tick(&mut self) {
            if self.writes_left == 0 {
                panic!("deliberate mid-write panic (PanicOnWrite)");
            }
            self.writes_left -= 1;
        }
    }

    impl GraphSnapshot for PanicOnWrite {
        fn name(&self) -> String {
            self.inner.name()
        }
        fn features(&self) -> gm_model::EngineFeatures {
            self.inner.features()
        }
        fn resolve_vertex(&self, canonical: u64) -> Option<gm_model::Vid> {
            self.inner.resolve_vertex(canonical)
        }
        fn resolve_edge(&self, canonical: u64) -> Option<Eid> {
            self.inner.resolve_edge(canonical)
        }
        fn vertex_count(&self, ctx: &QueryCtx) -> GdbResult<u64> {
            self.inner.vertex_count(ctx)
        }
        fn edge_count(&self, ctx: &QueryCtx) -> GdbResult<u64> {
            self.inner.edge_count(ctx)
        }
        fn edge_label_set(&self, ctx: &QueryCtx) -> GdbResult<Vec<String>> {
            self.inner.edge_label_set(ctx)
        }
        fn vertices_with_property(
            &self,
            name: &str,
            value: &Value,
            ctx: &QueryCtx,
        ) -> GdbResult<Vec<gm_model::Vid>> {
            self.inner.vertices_with_property(name, value, ctx)
        }
        fn edges_with_property(
            &self,
            name: &str,
            value: &Value,
            ctx: &QueryCtx,
        ) -> GdbResult<Vec<Eid>> {
            self.inner.edges_with_property(name, value, ctx)
        }
        fn edges_with_label(&self, label: &str, ctx: &QueryCtx) -> GdbResult<Vec<Eid>> {
            self.inner.edges_with_label(label, ctx)
        }
        fn vertex(&self, v: gm_model::Vid) -> GdbResult<Option<gm_model::VertexData>> {
            self.inner.vertex(v)
        }
        fn edge(&self, e: Eid) -> GdbResult<Option<gm_model::EdgeData>> {
            self.inner.edge(e)
        }
        fn neighbors(
            &self,
            v: gm_model::Vid,
            dir: gm_model::Direction,
            label: Option<&str>,
            ctx: &QueryCtx,
        ) -> GdbResult<Vec<gm_model::Vid>> {
            self.inner.neighbors(v, dir, label, ctx)
        }
        fn vertex_edges(
            &self,
            v: gm_model::Vid,
            dir: gm_model::Direction,
            label: Option<&str>,
            ctx: &QueryCtx,
        ) -> GdbResult<Vec<gm_model::EdgeRef>> {
            self.inner.vertex_edges(v, dir, label, ctx)
        }
        fn vertex_degree(
            &self,
            v: gm_model::Vid,
            dir: gm_model::Direction,
            ctx: &QueryCtx,
        ) -> GdbResult<u64> {
            self.inner.vertex_degree(v, dir, ctx)
        }
        fn vertex_edge_labels(
            &self,
            v: gm_model::Vid,
            dir: gm_model::Direction,
            ctx: &QueryCtx,
        ) -> GdbResult<Vec<String>> {
            self.inner.vertex_edge_labels(v, dir, ctx)
        }
        fn scan_vertices<'a>(
            &'a self,
            ctx: &'a QueryCtx,
        ) -> GdbResult<Box<dyn Iterator<Item = GdbResult<gm_model::Vid>> + 'a>> {
            self.inner.scan_vertices(ctx)
        }
        fn scan_edges<'a>(
            &'a self,
            ctx: &'a QueryCtx,
        ) -> GdbResult<Box<dyn Iterator<Item = GdbResult<Eid>> + 'a>> {
            self.inner.scan_edges(ctx)
        }
        fn vertex_property(&self, v: gm_model::Vid, name: &str) -> GdbResult<Option<Value>> {
            self.inner.vertex_property(v, name)
        }
        fn edge_property(&self, e: Eid, name: &str) -> GdbResult<Option<Value>> {
            self.inner.edge_property(e, name)
        }
        fn edge_endpoints(&self, e: Eid) -> GdbResult<Option<(gm_model::Vid, gm_model::Vid)>> {
            self.inner.edge_endpoints(e)
        }
        fn edge_label(&self, e: Eid) -> GdbResult<Option<String>> {
            self.inner.edge_label(e)
        }
        fn vertex_label(&self, v: gm_model::Vid) -> GdbResult<Option<String>> {
            self.inner.vertex_label(v)
        }
        fn has_vertex_index(&self, prop: &str) -> bool {
            self.inner.has_vertex_index(prop)
        }
        fn space(&self) -> gm_model::SpaceReport {
            self.inner.space()
        }
    }

    impl GraphDb for PanicOnWrite {
        fn bulk_load(
            &mut self,
            data: &Dataset,
            opts: &LoadOptions,
        ) -> GdbResult<gm_model::LoadStats> {
            self.inner.bulk_load(data, opts)
        }
        fn add_vertex(&mut self, label: &str, props: &gm_model::Props) -> GdbResult<gm_model::Vid> {
            self.tick();
            self.inner.add_vertex(label, props)
        }
        fn add_edge(
            &mut self,
            src: gm_model::Vid,
            dst: gm_model::Vid,
            label: &str,
            props: &gm_model::Props,
        ) -> GdbResult<Eid> {
            self.tick();
            self.inner.add_edge(src, dst, label, props)
        }
        fn set_vertex_property(
            &mut self,
            v: gm_model::Vid,
            name: &str,
            value: Value,
        ) -> GdbResult<()> {
            self.tick();
            self.inner.set_vertex_property(v, name, value)
        }
        fn set_edge_property(&mut self, e: Eid, name: &str, value: Value) -> GdbResult<()> {
            self.tick();
            self.inner.set_edge_property(e, name, value)
        }
        fn remove_vertex(&mut self, v: gm_model::Vid) -> GdbResult<()> {
            self.tick();
            self.inner.remove_vertex(v)
        }
        fn remove_edge(&mut self, e: Eid) -> GdbResult<()> {
            self.tick();
            self.inner.remove_edge(e)
        }
        fn remove_vertex_property(
            &mut self,
            v: gm_model::Vid,
            name: &str,
        ) -> GdbResult<Option<Value>> {
            self.tick();
            self.inner.remove_vertex_property(v, name)
        }
        fn remove_edge_property(&mut self, e: Eid, name: &str) -> GdbResult<Option<Value>> {
            self.tick();
            self.inner.remove_edge_property(e, name)
        }
        fn create_vertex_index(&mut self, prop: &str) -> GdbResult<()> {
            self.inner.create_vertex_index(prop)
        }
        fn sync(&mut self) -> GdbResult<()> {
            self.inner.sync()
        }
    }

    /// Regression: a writer panicking mid-mutation used to be silently
    /// "recovered" (`PoisonError::into_inner`), so the rest of the run kept
    /// measuring a half-mutated engine. The run must abort with
    /// [`GdbError::Poisoned`] instead.
    #[test]
    fn panicking_writer_aborts_the_run() {
        let factory = || -> Box<dyn GraphDb> {
            Box::new(PanicOnWrite {
                inner: Box::new(LinkedGraph::v1()),
                writes_left: 8,
            })
        };
        let data = testkit::chain_dataset(150);
        let cfg = WorkloadConfig {
            mix: MixKind::WriteHeavy,
            threads: 4,
            ops_per_worker: 400,
            seed: 3,
            ..WorkloadConfig::default()
        };
        match run(&factory, &data, &cfg) {
            Err(GdbError::Poisoned(why)) => {
                assert!(
                    why.contains("poisoned") || why.contains("panicked"),
                    "{why}"
                );
            }
            Err(e) => panic!("expected GdbError::Poisoned, got {e}"),
            Ok(r) => panic!(
                "run must abort on a panicking writer, but completed with {} ops",
                r.ops()
            ),
        }
    }
}
