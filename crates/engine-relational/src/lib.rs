//! # engine-relational — the Sqlg/Postgres-class hybrid engine
//!
//! Reproduces the architecture the paper describes for Sqlg (§3.1/§3.2):
//!
//! * "every vertex type \[is\] a separate table and edge labels \[are\]
//!   many-to-many join tables";
//! * edge tables carry **foreign-key B+Tree indexes** on both endpoints, so
//!   a label-restricted hop is one indexed probe — the reason Sqlg "performs
//!   extremely well" on 1–2-hop single-label traversals (§6.3);
//! * an **unlabeled** hop must union over *every* edge table ("it accesses
//!   all tables for all edges, and performs very large joins") — the reason
//!   Sqlg is "the slowest engine" for BFS/shortest-path (§6.4);
//! * property search scans a single column without materializing rows,
//!   making Q11–Q13 "an order of magnitude faster than the others" (§6.4),
//!   and user indexes bring the relational engine its documented further
//!   speed-up (Figure 4c);
//! * adding a property whose **column does not exist yet is an
//!   `ALTER TABLE`** that rewrites the table — the paper's "much slower for
//!   all other queries where it has to change the table structure";
//! * identifier length is capped (Postgres truncates at 63 bytes; the paper
//!   notes Sqlg "has a limit on the maximum length of labels").

use gm_model::api::{
    Direction, EdgeData, EdgeRef, EngineFeatures, GraphDb, GraphSnapshot, LoadOptions, LoadStats,
    SpaceReport, VertexData,
};
use gm_model::fxmap::FxHashMap;
use gm_model::interner::Interner;
use gm_model::value::{Props, Value};
use gm_model::{Dataset, Eid, GdbError, GdbResult, QueryCtx, Vid};
use gm_storage::bptree::BPlusTree;

/// Postgres-style identifier length cap.
pub const MAX_IDENTIFIER_LEN: usize = 63;

const ROW_BITS: u64 = 40;
const ROW_MASK: u64 = (1 << ROW_BITS) - 1;

fn gid(table: u32, row: u64) -> u64 {
    ((table as u64) << ROW_BITS) | row
}

fn gid_table(g: u64) -> u32 {
    (g >> ROW_BITS) as u32
}

fn gid_row(g: u64) -> u64 {
    g & ROW_MASK
}

/// A vertex table: one per vertex label.
#[derive(Debug, Default, Clone)]
struct VertexTable {
    /// Column key ids in declaration order.
    columns: Vec<u32>,
    /// Rows; `None` = deleted. Cell layout parallels `columns`.
    rows: Vec<Option<Vec<Option<Value>>>>,
    live: u64,
    /// Secondary indexes: column -> (value, row) -> ().
    indexes: FxHashMap<u32, BPlusTree<(Value, u64), ()>>,
    /// Rewrites caused by ALTER TABLE (exposed for tests/ablation).
    alter_count: u64,
}

impl VertexTable {
    fn column_pos(&self, key: u32) -> Option<usize> {
        self.columns.iter().position(|&c| c == key)
    }

    /// Ensure a column exists; returns its position. A new column is an
    /// ALTER TABLE: every existing row is rewritten.
    fn ensure_column(&mut self, key: u32) -> usize {
        if let Some(p) = self.column_pos(key) {
            return p;
        }
        self.columns.push(key);
        for row in self.rows.iter_mut().flatten() {
            row.push(None); // physical rewrite of the tuple
        }
        self.alter_count += 1;
        self.columns.len() - 1
    }

    fn index_insert(&mut self, key: u32, value: &Value, row: u64) {
        if let Some(idx) = self.indexes.get_mut(&key) {
            idx.insert((value.clone(), row), ());
        }
    }

    fn index_remove(&mut self, key: u32, value: &Value, row: u64) {
        if let Some(idx) = self.indexes.get_mut(&key) {
            idx.remove(&(value.clone(), row));
        }
    }

    fn bytes(&self) -> u64 {
        let mut total = 64 + self.columns.len() as u64 * 8;
        for row in self.rows.iter().flatten() {
            total += 24;
            for cell in row.iter().flatten() {
                total += cell.approx_bytes();
            }
        }
        for idx in self.indexes.values() {
            total += idx.approx_bytes(|(v, _)| v.approx_bytes() + 8, |_| 0);
        }
        total
    }
}

/// One edge row: (src gid, dst gid, property cells).
type EdgeRow = (u64, u64, Vec<Option<Value>>);

/// An edge table: one per edge label (a many-to-many join table).
#[derive(Debug, Default, Clone)]
struct EdgeTable {
    columns: Vec<u32>,
    /// Rows; `None` = deleted.
    rows: Vec<Option<EdgeRow>>,
    live: u64,
    /// FK indexes: endpoint gid -> row ids.
    src_index: BPlusTree<(u64, u64), ()>,
    dst_index: BPlusTree<(u64, u64), ()>,
    alter_count: u64,
}

impl EdgeTable {
    fn column_pos(&self, key: u32) -> Option<usize> {
        self.columns.iter().position(|&c| c == key)
    }

    fn ensure_column(&mut self, key: u32) -> usize {
        if let Some(p) = self.column_pos(key) {
            return p;
        }
        self.columns.push(key);
        for row in self.rows.iter_mut().flatten() {
            row.2.push(None);
        }
        self.alter_count += 1;
        self.columns.len() - 1
    }

    /// Rows whose endpoint matches, via the FK index.
    fn rows_by_endpoint(&self, endpoint: u64, src_side: bool) -> Vec<u64> {
        let idx = if src_side {
            &self.src_index
        } else {
            &self.dst_index
        };
        idx.range(&(endpoint, 0), Some(&(endpoint + 1, 0)))
            .map(|((_, row), _)| *row)
            .collect()
    }

    fn bytes(&self) -> u64 {
        let mut total = 64 + self.columns.len() as u64 * 8;
        for (_, _, cells) in self.rows.iter().flatten() {
            total += 40;
            for cell in cells.iter().flatten() {
                total += cell.approx_bytes();
            }
        }
        total += self.src_index.approx_bytes(|_| 16, |_| 0);
        total += self.dst_index.approx_bytes(|_| 16, |_| 0);
        total
    }
}

/// The Sqlg-class engine. See crate docs for the layout.
#[derive(Clone)]
pub struct RelationalGraph {
    vtables: Vec<VertexTable>,
    etables: Vec<EdgeTable>,
    vlabels: Interner,
    elabels: Interner,
    keys: Interner,
    vmap: Vec<u64>,
    emap: Vec<u64>,
}

impl Default for RelationalGraph {
    fn default() -> Self {
        Self::new()
    }
}

impl RelationalGraph {
    /// A fresh, empty engine.
    pub fn new() -> Self {
        RelationalGraph {
            vtables: Vec::new(),
            etables: Vec::new(),
            vlabels: Interner::new(),
            elabels: Interner::new(),
            keys: Interner::new(),
            vmap: Vec::new(),
            emap: Vec::new(),
        }
    }

    fn check_identifier(name: &str) -> GdbResult<()> {
        if name.len() > MAX_IDENTIFIER_LEN {
            return Err(GdbError::Invalid(format!(
                "identifier '{}…' exceeds {MAX_IDENTIFIER_LEN} bytes (relational backend limit)",
                &name[..24]
            )));
        }
        Ok(())
    }

    fn vtable_for(&mut self, label: &str) -> GdbResult<u32> {
        Self::check_identifier(label)?;
        let id = self.vlabels.intern(label);
        while self.vtables.len() <= id as usize {
            self.vtables.push(VertexTable::default());
        }
        Ok(id)
    }

    fn etable_for(&mut self, label: &str) -> GdbResult<u32> {
        Self::check_identifier(label)?;
        let id = self.elabels.intern(label);
        while self.etables.len() <= id as usize {
            self.etables.push(EdgeTable::default());
        }
        Ok(id)
    }

    fn vrow(&self, v: u64) -> GdbResult<&Vec<Option<Value>>> {
        self.vtables
            .get(gid_table(v) as usize)
            .and_then(|t| t.rows.get(gid_row(v) as usize))
            .and_then(|r| r.as_ref())
            .ok_or(GdbError::VertexNotFound(v))
    }

    fn erow(&self, e: u64) -> GdbResult<&EdgeRow> {
        self.etables
            .get(gid_table(e) as usize)
            .and_then(|t| t.rows.get(gid_row(e) as usize))
            .and_then(|r| r.as_ref())
            .ok_or(GdbError::EdgeNotFound(e))
    }

    fn insert_vertex_row(&mut self, table: u32, props: &Props) -> GdbResult<u64> {
        for (name, _) in props {
            Self::check_identifier(name)?;
        }
        let keys: Vec<u32> = props.iter().map(|(n, _)| self.keys.intern(n)).collect();
        let t = &mut self.vtables[table as usize];
        let positions: Vec<usize> = keys.iter().map(|&k| t.ensure_column(k)).collect();
        let mut cells: Vec<Option<Value>> = vec![None; t.columns.len()];
        for (pos, (_, value)) in positions.iter().zip(props) {
            cells[*pos] = Some(value.clone());
        }
        let row = t.rows.len() as u64;
        t.rows.push(Some(cells));
        t.live += 1;
        for (k, (_, value)) in keys.iter().zip(props) {
            t.index_insert(*k, value, row);
        }
        Ok(gid(table, row))
    }

    fn insert_edge_row(&mut self, table: u32, src: u64, dst: u64, props: &Props) -> GdbResult<u64> {
        for (name, _) in props {
            Self::check_identifier(name)?;
        }
        let keys: Vec<u32> = props.iter().map(|(n, _)| self.keys.intern(n)).collect();
        let t = &mut self.etables[table as usize];
        let positions: Vec<usize> = keys.iter().map(|&k| t.ensure_column(k)).collect();
        let mut cells: Vec<Option<Value>> = vec![None; t.columns.len()];
        for (pos, (_, value)) in positions.iter().zip(props) {
            cells[*pos] = Some(value.clone());
        }
        let row = t.rows.len() as u64;
        t.rows.push(Some((src, dst, cells)));
        t.live += 1;
        t.src_index.insert((src, row), ());
        t.dst_index.insert((dst, row), ());
        Ok(gid(table, row))
    }

    fn resolve_key(&self, name: &str) -> Option<u32> {
        self.keys.get(name)
    }

    fn named_props(&self, columns: &[u32], cells: &[Option<Value>]) -> Props {
        columns
            .iter()
            .zip(cells)
            .filter_map(|(k, cell)| {
                cell.as_ref().map(|v| {
                    (
                        self.keys.resolve(*k).expect("known key").to_string(),
                        v.clone(),
                    )
                })
            })
            .collect()
    }
}

impl GraphSnapshot for RelationalGraph {
    fn name(&self) -> String {
        "relational".into()
    }

    fn features(&self) -> EngineFeatures {
        EngineFeatures {
            name: self.name(),
            system_type: "Hybrid (Relational)".into(),
            storage: "Tables (one per vertex/edge label)".into(),
            edge_traversal: "Table join".into(),
            optimized_adapter: true,
            async_writes: false,
            attribute_indexes: true,
        }
    }

    fn resolve_vertex(&self, canonical: u64) -> Option<Vid> {
        self.vmap.get(canonical as usize).map(|&v| Vid(v))
    }

    fn resolve_edge(&self, canonical: u64) -> Option<Eid> {
        self.emap.get(canonical as usize).map(|&e| Eid(e))
    }

    fn vertex_count(&self, ctx: &QueryCtx) -> GdbResult<u64> {
        let mut n = 0u64;
        for t in &self.vtables {
            for row in &t.rows {
                ctx.tick()?;
                if row.is_some() {
                    n += 1;
                }
            }
        }
        Ok(n)
    }

    fn edge_count(&self, ctx: &QueryCtx) -> GdbResult<u64> {
        let mut n = 0u64;
        for t in &self.etables {
            for row in &t.rows {
                ctx.tick()?;
                if row.is_some() {
                    n += 1;
                }
            }
        }
        Ok(n)
    }

    fn edge_label_set(&self, ctx: &QueryCtx) -> GdbResult<Vec<String>> {
        let mut out = Vec::new();
        for (table, t) in self.etables.iter().enumerate() {
            ctx.tick_n(t.rows.len() as u64)?;
            if t.live > 0 {
                out.push(
                    self.elabels
                        .resolve(table as u32)
                        .expect("table label")
                        .to_string(),
                );
            }
        }
        Ok(out)
    }

    fn vertices_with_property(
        &self,
        name: &str,
        value: &Value,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Vid>> {
        let Some(key) = self.resolve_key(name) else {
            return Ok(Vec::new());
        };
        let mut out = Vec::new();
        for (table, t) in self.vtables.iter().enumerate() {
            // Indexed probe when available.
            if let Some(idx) = t.indexes.get(&key) {
                ctx.tick()?;
                for ((_, row), _) in
                    idx.range(&(value.clone(), 0), Some(&(value.clone(), u64::MAX)))
                {
                    out.push(Vid(gid(table as u32, *row)));
                }
                continue;
            }
            // Column scan otherwise — cheap per row, no materialization.
            let Some(pos) = t.column_pos(key) else {
                continue; // table has no such column at all
            };
            for (row, cells) in t.rows.iter().enumerate() {
                ctx.tick()?;
                if let Some(cells) = cells {
                    if cells[pos].as_ref() == Some(value) {
                        out.push(Vid(gid(table as u32, row as u64)));
                    }
                }
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    fn edges_with_property(
        &self,
        name: &str,
        value: &Value,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Eid>> {
        let Some(key) = self.resolve_key(name) else {
            return Ok(Vec::new());
        };
        let mut out = Vec::new();
        for (table, t) in self.etables.iter().enumerate() {
            let Some(pos) = t.column_pos(key) else {
                continue;
            };
            for (row, cells) in t.rows.iter().enumerate() {
                ctx.tick()?;
                if let Some((_, _, cells)) = cells {
                    if cells[pos].as_ref() == Some(value) {
                        out.push(Eid(gid(table as u32, row as u64)));
                    }
                }
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    fn edges_with_label(&self, label: &str, ctx: &QueryCtx) -> GdbResult<Vec<Eid>> {
        let Some(table) = self.elabels.get(label) else {
            return Ok(Vec::new());
        };
        let t = &self.etables[table as usize];
        let mut out = Vec::with_capacity(t.live as usize);
        for (row, cells) in t.rows.iter().enumerate() {
            ctx.tick()?;
            if cells.is_some() {
                out.push(Eid(gid(table, row as u64)));
            }
        }
        Ok(out)
    }

    fn vertex(&self, v: Vid) -> GdbResult<Option<VertexData>> {
        match self.vrow(v.0) {
            Err(_) => Ok(None),
            Ok(cells) => {
                let t = &self.vtables[gid_table(v.0) as usize];
                Ok(Some(VertexData {
                    id: v,
                    label: self
                        .vlabels
                        .resolve(gid_table(v.0))
                        .unwrap_or("<unknown>")
                        .to_string(),
                    props: self.named_props(&t.columns, cells),
                }))
            }
        }
    }

    fn edge(&self, e: Eid) -> GdbResult<Option<EdgeData>> {
        match self.erow(e.0) {
            Err(_) => Ok(None),
            Ok((src, dst, cells)) => {
                let t = &self.etables[gid_table(e.0) as usize];
                Ok(Some(EdgeData {
                    id: e,
                    src: Vid(*src),
                    dst: Vid(*dst),
                    label: self
                        .elabels
                        .resolve(gid_table(e.0))
                        .unwrap_or("<unknown>")
                        .to_string(),
                    props: self.named_props(&t.columns, cells),
                }))
            }
        }
    }

    fn neighbors(
        &self,
        v: Vid,
        dir: Direction,
        label: Option<&str>,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Vid>> {
        Ok(self
            .vertex_edges(v, dir, label, ctx)?
            .into_iter()
            .map(|r| r.other)
            .collect())
    }

    fn vertex_edges(
        &self,
        v: Vid,
        dir: Direction,
        label: Option<&str>,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<EdgeRef>> {
        self.vrow(v.0)?;
        // Label given: single join table, indexed probe. No label: union
        // over every edge table (the expensive plan).
        let tables: Vec<u32> = match label {
            Some(l) => match self.elabels.get(l) {
                Some(t) => vec![t],
                None => return Ok(Vec::new()),
            },
            None => (0..self.etables.len() as u32).collect(),
        };
        let mut out = Vec::new();
        for table in tables {
            let t = &self.etables[table as usize];
            ctx.tick()?; // per-table probe cost (join setup)
            if matches!(dir, Direction::Out | Direction::Both) {
                for row in t.rows_by_endpoint(v.0, true) {
                    ctx.tick()?;
                    let (_, dst, _) = t.rows[row as usize].as_ref().expect("indexed row");
                    out.push(EdgeRef {
                        eid: Eid(gid(table, row)),
                        other: Vid(*dst),
                    });
                }
            }
            if matches!(dir, Direction::In | Direction::Both) {
                for row in t.rows_by_endpoint(v.0, false) {
                    ctx.tick()?;
                    let (src, _, _) = t.rows[row as usize].as_ref().expect("indexed row");
                    out.push(EdgeRef {
                        eid: Eid(gid(table, row)),
                        other: Vid(*src),
                    });
                }
            }
        }
        Ok(out)
    }

    fn vertex_degree(&self, v: Vid, dir: Direction, ctx: &QueryCtx) -> GdbResult<u64> {
        self.vrow(v.0)?;
        let mut n = 0u64;
        for t in &self.etables {
            ctx.tick()?;
            if matches!(dir, Direction::Out | Direction::Both) {
                n += t.rows_by_endpoint(v.0, true).len() as u64;
            }
            if matches!(dir, Direction::In | Direction::Both) {
                n += t.rows_by_endpoint(v.0, false).len() as u64;
            }
        }
        Ok(n)
    }

    fn vertex_edge_labels(&self, v: Vid, dir: Direction, ctx: &QueryCtx) -> GdbResult<Vec<String>> {
        self.vrow(v.0)?;
        let mut out = Vec::new();
        for (table, t) in self.etables.iter().enumerate() {
            ctx.tick()?;
            let mut any = false;
            if matches!(dir, Direction::Out | Direction::Both) {
                any |= !t.rows_by_endpoint(v.0, true).is_empty();
            }
            if !any && matches!(dir, Direction::In | Direction::Both) {
                any |= !t.rows_by_endpoint(v.0, false).is_empty();
            }
            if any {
                out.push(
                    self.elabels
                        .resolve(table as u32)
                        .expect("table label")
                        .to_string(),
                );
            }
        }
        Ok(out)
    }

    fn scan_vertices<'a>(
        &'a self,
        ctx: &'a QueryCtx,
    ) -> GdbResult<Box<dyn Iterator<Item = GdbResult<Vid>> + 'a>> {
        Ok(Box::new(self.vtables.iter().enumerate().flat_map(
            move |(table, t)| {
                t.rows.iter().enumerate().filter_map(move |(row, cells)| {
                    if let Err(e) = ctx.tick() {
                        return Some(Err(e));
                    }
                    cells
                        .as_ref()
                        .map(|_| Ok(Vid(gid(table as u32, row as u64))))
                })
            },
        )))
    }

    fn scan_edges<'a>(
        &'a self,
        ctx: &'a QueryCtx,
    ) -> GdbResult<Box<dyn Iterator<Item = GdbResult<Eid>> + 'a>> {
        Ok(Box::new(self.etables.iter().enumerate().flat_map(
            move |(table, t)| {
                t.rows.iter().enumerate().filter_map(move |(row, cells)| {
                    if let Err(e) = ctx.tick() {
                        return Some(Err(e));
                    }
                    cells
                        .as_ref()
                        .map(|_| Ok(Eid(gid(table as u32, row as u64))))
                })
            },
        )))
    }

    fn vertex_property(&self, v: Vid, name: &str) -> GdbResult<Option<Value>> {
        let cells = self.vrow(v.0)?;
        let Some(key) = self.resolve_key(name) else {
            return Ok(None);
        };
        let t = &self.vtables[gid_table(v.0) as usize];
        Ok(t.column_pos(key).and_then(|pos| cells[pos].clone()))
    }

    fn edge_property(&self, e: Eid, name: &str) -> GdbResult<Option<Value>> {
        let (_, _, cells) = self.erow(e.0)?;
        let Some(key) = self.resolve_key(name) else {
            return Ok(None);
        };
        let t = &self.etables[gid_table(e.0) as usize];
        Ok(t.column_pos(key).and_then(|pos| cells[pos].clone()))
    }

    fn edge_endpoints(&self, e: Eid) -> GdbResult<Option<(Vid, Vid)>> {
        match self.erow(e.0) {
            Err(_) => Ok(None),
            Ok((src, dst, _)) => Ok(Some((Vid(*src), Vid(*dst)))),
        }
    }

    fn edge_label(&self, e: Eid) -> GdbResult<Option<String>> {
        if self.erow(e.0).is_err() {
            return Ok(None);
        }
        Ok(self.elabels.resolve(gid_table(e.0)).map(String::from))
    }

    fn vertex_label(&self, v: Vid) -> GdbResult<Option<String>> {
        if self.vrow(v.0).is_err() {
            return Ok(None);
        }
        Ok(self.vlabels.resolve(gid_table(v.0)).map(String::from))
    }

    fn distinct_neighbor_scan(&self, dir: Direction, ctx: &QueryCtx) -> GdbResult<Vec<Vid>> {
        // The optimized adapter conflates `g.V.out.dedup()` into
        // `SELECT DISTINCT dst FROM <every edge table>` — one sequential
        // pass per table instead of a probe per vertex.
        let mut out = Vec::new();
        for t in &self.etables {
            for row in t.rows.iter().flatten() {
                ctx.tick()?;
                let (src, dst, _) = row;
                if matches!(dir, Direction::Out | Direction::Both) {
                    out.push(Vid(*dst));
                }
                if matches!(dir, Direction::In | Direction::Both) {
                    out.push(Vid(*src));
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        Ok(out)
    }

    fn has_vertex_index(&self, prop: &str) -> bool {
        self.keys
            .get(prop)
            .map(|k| self.vtables.iter().any(|t| t.indexes.contains_key(&k)))
            .unwrap_or(false)
    }

    fn space(&self) -> SpaceReport {
        let mut r = SpaceReport::default();
        r.add(
            "vertex tables",
            self.vtables.iter().map(|t| t.bytes()).sum::<u64>(),
        );
        r.add(
            "edge tables (incl. FK indexes)",
            self.etables.iter().map(|t| t.bytes()).sum::<u64>(),
        );
        r.add(
            "catalog",
            self.vlabels.bytes() + self.elabels.bytes() + self.keys.bytes(),
        );
        r
    }
}

impl GraphDb for RelationalGraph {
    fn bulk_load(&mut self, data: &Dataset, _opts: &LoadOptions) -> GdbResult<LoadStats> {
        if !self.vmap.is_empty() {
            return Err(GdbError::Invalid(
                "bulk_load requires an empty engine".into(),
            ));
        }
        // Declare the full schema first (one ALTER storm avoided), as Sqlg's
        // COPY-based loader effectively does.
        for v in &data.vertices {
            let table = self.vtable_for(&v.label)?;
            let keys: Vec<u32> = v.props.iter().map(|(n, _)| self.keys.intern(n)).collect();
            let t = &mut self.vtables[table as usize];
            for k in keys {
                t.ensure_column(k);
            }
        }
        for v in &data.vertices {
            let table = self.vtable_for(&v.label)?;
            let g = self.insert_vertex_row(table, &v.props)?;
            self.vmap.push(g);
        }
        for e in &data.edges {
            let table = self.etable_for(&e.label)?;
            let g = self.insert_edge_row(
                table,
                self.vmap[e.src as usize],
                self.vmap[e.dst as usize],
                &e.props,
            )?;
            self.emap.push(g);
        }
        Ok(LoadStats {
            vertices: data.vertices.len() as u64,
            edges: data.edges.len() as u64,
        })
    }

    fn add_vertex(&mut self, label: &str, props: &Props) -> GdbResult<Vid> {
        let table = self.vtable_for(label)?;
        Ok(Vid(self.insert_vertex_row(table, props)?))
    }

    fn add_edge(&mut self, src: Vid, dst: Vid, label: &str, props: &Props) -> GdbResult<Eid> {
        self.vrow(src.0)?;
        self.vrow(dst.0)?;
        let table = self.etable_for(label)?;
        Ok(Eid(self.insert_edge_row(table, src.0, dst.0, props)?))
    }

    fn set_vertex_property(&mut self, v: Vid, name: &str, value: Value) -> GdbResult<()> {
        self.vrow(v.0)?;
        Self::check_identifier(name)?;
        let key = self.keys.intern(name);
        let t = &mut self.vtables[gid_table(v.0) as usize];
        let pos = t.ensure_column(key);
        let row = gid_row(v.0);
        let cells = t.rows[row as usize].as_mut().expect("checked live");
        let old = cells[pos].replace(value.clone());
        if let Some(old) = old {
            t.index_remove(key, &old, row);
        }
        t.index_insert(key, &value, row);
        Ok(())
    }

    fn set_edge_property(&mut self, e: Eid, name: &str, value: Value) -> GdbResult<()> {
        self.erow(e.0)?;
        Self::check_identifier(name)?;
        let key = self.keys.intern(name);
        let t = &mut self.etables[gid_table(e.0) as usize];
        let pos = t.ensure_column(key);
        let row = gid_row(e.0);
        let cells = &mut t.rows[row as usize].as_mut().expect("checked live").2;
        cells[pos] = Some(value);
        Ok(())
    }

    fn remove_vertex(&mut self, v: Vid) -> GdbResult<()> {
        self.vrow(v.0)?;
        // Delete incident edges: probe the FK indexes of every edge table.
        let mut incident: Vec<u64> = Vec::new();
        for (table, t) in self.etables.iter().enumerate() {
            for row in t.rows_by_endpoint(v.0, true) {
                incident.push(gid(table as u32, row));
            }
            for row in t.rows_by_endpoint(v.0, false) {
                incident.push(gid(table as u32, row));
            }
        }
        incident.sort_unstable();
        incident.dedup();
        for e in incident {
            self.remove_edge(Eid(e))?;
        }
        let table = gid_table(v.0);
        let row = gid_row(v.0);
        let t = &mut self.vtables[table as usize];
        // Drop index entries for this row.
        let cells = t.rows[row as usize].take().expect("checked live");
        t.live -= 1;
        let columns = t.columns.clone();
        for (k, cell) in columns.iter().zip(cells) {
            if let Some(value) = cell {
                t.index_remove(*k, &value, row);
            }
        }
        Ok(())
    }

    fn remove_edge(&mut self, e: Eid) -> GdbResult<()> {
        self.erow(e.0)?;
        let table = gid_table(e.0);
        let row = gid_row(e.0);
        let t = &mut self.etables[table as usize];
        let (src, dst, _) = t.rows[row as usize].take().expect("checked live");
        t.live -= 1;
        t.src_index.remove(&(src, row));
        t.dst_index.remove(&(dst, row));
        Ok(())
    }

    fn remove_vertex_property(&mut self, v: Vid, name: &str) -> GdbResult<Option<Value>> {
        self.vrow(v.0)?;
        let Some(key) = self.resolve_key(name) else {
            return Ok(None);
        };
        let t = &mut self.vtables[gid_table(v.0) as usize];
        let Some(pos) = t.column_pos(key) else {
            return Ok(None);
        };
        let row = gid_row(v.0);
        let cells = t.rows[row as usize].as_mut().expect("checked live");
        let old = cells[pos].take();
        if let Some(old) = &old {
            t.index_remove(key, old, row);
        }
        Ok(old)
    }

    fn remove_edge_property(&mut self, e: Eid, name: &str) -> GdbResult<Option<Value>> {
        self.erow(e.0)?;
        let Some(key) = self.resolve_key(name) else {
            return Ok(None);
        };
        let t = &mut self.etables[gid_table(e.0) as usize];
        let Some(pos) = t.column_pos(key) else {
            return Ok(None);
        };
        let cells = &mut t.rows[gid_row(e.0) as usize]
            .as_mut()
            .expect("checked live")
            .2;
        Ok(cells[pos].take())
    }

    fn create_vertex_index(&mut self, prop: &str) -> GdbResult<()> {
        let key = self.keys.intern(prop);
        for t in self.vtables.iter_mut() {
            if t.indexes.contains_key(&key) {
                continue;
            }
            let Some(pos) = t.column_pos(key) else {
                continue;
            };
            let mut idx: BPlusTree<(Value, u64), ()> = BPlusTree::new();
            for (row, cells) in t.rows.iter().enumerate() {
                if let Some(cells) = cells {
                    if let Some(value) = &cells[pos] {
                        idx.insert((value.clone(), row as u64), ());
                    }
                }
            }
            t.indexes.insert(key, idx);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_model::testkit;

    #[test]
    fn conformance() {
        testkit::conformance_suite(&mut || Box::new(RelationalGraph::new()));
    }

    #[test]
    fn one_table_per_label() {
        let mut g = RelationalGraph::new();
        g.add_vertex("person", &vec![]).unwrap();
        g.add_vertex("city", &vec![]).unwrap();
        g.add_vertex("person", &vec![]).unwrap();
        assert_eq!(g.vtables.len(), 2);
        assert_eq!(g.vtables[0].live, 2);
        assert_eq!(g.vtables[1].live, 1);
    }

    #[test]
    fn new_property_triggers_alter_table() {
        let mut g = RelationalGraph::new();
        let vids: Vec<Vid> = (0..10)
            .map(|_| {
                g.add_vertex("n", &vec![("a".into(), Value::Int(1))])
                    .unwrap()
            })
            .collect();
        assert_eq!(g.vtables[0].alter_count, 1, "column 'a' added once");
        g.set_vertex_property(vids[0], "b", Value::Int(2)).unwrap();
        assert_eq!(g.vtables[0].alter_count, 2, "new column = ALTER TABLE");
        // Every row was rewritten to the new arity.
        for row in g.vtables[0].rows.iter().flatten() {
            assert_eq!(row.len(), 2);
        }
        // Setting an existing column does not alter.
        g.set_vertex_property(vids[1], "b", Value::Int(3)).unwrap();
        assert_eq!(g.vtables[0].alter_count, 2);
    }

    #[test]
    fn labeled_hop_probes_one_table() {
        let mut g = RelationalGraph::new();
        let a = g.add_vertex("n", &vec![]).unwrap();
        for i in 0..50 {
            let b = g.add_vertex("n", &vec![]).unwrap();
            g.add_edge(a, b, &format!("label{}", i % 10), &vec![])
                .unwrap();
        }
        let labeled = QueryCtx::unbounded();
        let hits = g
            .neighbors(a, Direction::Out, Some("label3"), &labeled)
            .unwrap();
        assert_eq!(hits.len(), 5);
        let unlabeled = QueryCtx::unbounded();
        g.neighbors(a, Direction::Out, None, &unlabeled).unwrap();
        assert!(
            labeled.work() * 3 < unlabeled.work(),
            "unlabeled hop unions all tables ({} vs {})",
            labeled.work(),
            unlabeled.work()
        );
    }

    #[test]
    fn long_identifiers_rejected() {
        let mut g = RelationalGraph::new();
        let long = "x".repeat(100);
        assert!(matches!(
            g.add_vertex(&long, &vec![]),
            Err(GdbError::Invalid(_))
        ));
        let v = g.add_vertex("ok", &vec![]).unwrap();
        assert!(matches!(
            g.set_vertex_property(v, &long, Value::Int(1)),
            Err(GdbError::Invalid(_))
        ));
    }

    #[test]
    fn index_probe_beats_column_scan() {
        let mut g = RelationalGraph::new();
        for i in 0..2000i64 {
            g.add_vertex("n", &vec![("x".into(), Value::Int(i % 100))])
                .unwrap();
        }
        let scan_ctx = QueryCtx::unbounded();
        let scan_hits = g
            .vertices_with_property("x", &Value::Int(7), &scan_ctx)
            .unwrap();
        g.create_vertex_index("x").unwrap();
        let idx_ctx = QueryCtx::unbounded();
        let idx_hits = g
            .vertices_with_property("x", &Value::Int(7), &idx_ctx)
            .unwrap();
        assert_eq!(scan_hits, idx_hits);
        assert!(
            idx_ctx.work() * 100 < scan_ctx.work(),
            "index probe is orders faster ({} vs {})",
            idx_ctx.work(),
            scan_ctx.work()
        );
    }

    #[test]
    fn fk_indexes_survive_deletions() {
        let mut g = RelationalGraph::new();
        let a = g.add_vertex("n", &vec![]).unwrap();
        let b = g.add_vertex("n", &vec![]).unwrap();
        let e1 = g.add_edge(a, b, "l", &vec![]).unwrap();
        let _e2 = g.add_edge(a, b, "l", &vec![]).unwrap();
        g.remove_edge(e1).unwrap();
        let ctx = QueryCtx::unbounded();
        assert_eq!(g.neighbors(a, Direction::Out, None, &ctx).unwrap(), vec![b]);
        assert_eq!(g.vertex_degree(b, Direction::In, &ctx).unwrap(), 1);
    }
}
