//! Criterion bench: three representative complex queries (Figure 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gm_core::complex::{self, ComplexParams, ComplexQuery};
use gm_datasets::{self as datasets, DatasetId, Scale};
use gm_model::api::LoadOptions;
use gm_model::QueryCtx;
use graphmark::registry::EngineKind;

fn bench_complex(c: &mut Criterion) {
    let data = datasets::generate(DatasetId::Ldbc, Scale::tiny(), 42);
    let params = ComplexParams::choose(&data, 7);
    for q in [
        ComplexQuery::PersonsInCity,
        ComplexQuery::FriendOfFriendRecommendation,
        ComplexQuery::PlacesHierarchy,
    ] {
        let mut group = c.benchmark_group(format!("complex/{}", q.name()));
        group.sample_size(10);
        for kind in EngineKind::ALL {
            let mut db = kind.make();
            db.bulk_load(&data, &LoadOptions::default()).expect("load");
            let p = params.resolve(db.as_ref()).expect("params");
            group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, _| {
                let ctx = QueryCtx::unbounded();
                b.iter(|| complex::execute(q, db.as_mut(), &p, &ctx).expect("query"));
            });
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10);
    targets = bench_complex
}
criterion_main!(benches);
