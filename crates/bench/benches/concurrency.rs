//! Criterion bench: the concurrent workload driver itself.
//!
//! Measures whole closed-loop runs at 1 and 4 workers on two engines, for
//! the read-heavy mix — the quick regression signal for lock overhead in
//! the driver hot path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gm_datasets::{self as datasets, DatasetId, Scale};
use gm_workload::{run, MixKind, WorkloadConfig};
use graphmark::registry::EngineKind;

fn bench_driver(c: &mut Criterion) {
    let data = datasets::generate(DatasetId::Yeast, Scale::tiny(), 42);
    let mut group = c.benchmark_group("workload/read-heavy");
    for kind in [EngineKind::LinkedV1, EngineKind::Document] {
        for threads in [1u32, 4] {
            let cfg = WorkloadConfig {
                mix: MixKind::ReadHeavy,
                threads,
                ops_per_worker: 64,
                ..WorkloadConfig::default()
            };
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("{}-t{threads}", kind.name())),
                &cfg,
                |b, cfg| {
                    let factory = move || kind.make();
                    b.iter(|| run(&factory, &data, cfg).expect("run"));
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(1000))
        .sample_size(10);
    targets = bench_driver
}
criterion_main!(benches);
