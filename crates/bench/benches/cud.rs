//! Criterion bench: create/update/delete primitives (Figure 3b/c).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gm_datasets::{self as datasets, DatasetId, Scale};
use gm_model::api::LoadOptions;
use gm_model::Value;
use graphmark::registry::EngineKind;

fn bench_cud(c: &mut Criterion) {
    let data = datasets::generate(DatasetId::Yeast, Scale::tiny(), 42);

    let mut group = c.benchmark_group("cud/Q2-add-vertex");
    group.sample_size(20);
    for kind in EngineKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, kind| {
                // Batched setup: one loaded engine, many inserts.
                let mut db = kind.make();
                db.bulk_load(&data, &LoadOptions::default()).expect("load");
                let props = vec![("name".to_string(), Value::Str("bench".into()))];
                b.iter(|| db.add_vertex("bench", &props).expect("add"));
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("cud/Q3-add-edge");
    group.sample_size(20);
    for kind in EngineKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, kind| {
                let mut db = kind.make();
                db.bulk_load(&data, &LoadOptions::default()).expect("load");
                let a = db.resolve_vertex(0).expect("v0");
                let z = db.resolve_vertex(1).expect("v1");
                b.iter(|| db.add_edge(a, z, "bench", &vec![]).expect("edge"));
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("cud/Q19-remove-edge");
    group.sample_size(10);
    for kind in EngineKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, kind| {
                b.iter_batched(
                    || {
                        let mut db = kind.make();
                        db.bulk_load(&data, &LoadOptions::default()).expect("load");
                        let e = db.resolve_edge(0).expect("e0");
                        (db, e)
                    },
                    |(mut db, e)| db.remove_edge(e).expect("remove"),
                    criterion::BatchSize::PerIteration,
                );
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10);
    targets = bench_cud
}
criterion_main!(benches);
