//! Criterion bench: the storage substrates in isolation — the ablation
//! level below the engines (B+Tree vs bitmap vs LSM vs record files), plus
//! the delta-encoding space/time trade-off behind the columnar engine.

use criterion::{criterion_group, criterion_main, Criterion};
use gm_storage::bptree::BPlusTree;
use gm_storage::codec::{delta_decode, delta_encode};
use gm_storage::lsm::{LsmConfig, LsmTable};
use gm_storage::{Bitmap, HashIndex, PageStore, RecordFile};

const N: u64 = 10_000;

fn bench_substrates(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/point-lookup");
    group.bench_function("bptree", |b| {
        let mut t: BPlusTree<u64, u64> = BPlusTree::new();
        for i in 0..N {
            t.insert(i, i);
        }
        b.iter(|| t.get(std::hint::black_box(&(N / 2))));
    });
    group.bench_function("bitmap", |b| {
        let bm: Bitmap = (0..N).collect();
        b.iter(|| bm.contains(std::hint::black_box(N / 2)));
    });
    group.bench_function("lsm", |b| {
        let mut l = LsmTable::new(LsmConfig::default());
        for i in 0..N {
            l.put(&i.to_be_bytes(), &i.to_le_bytes());
        }
        let key = (N / 2).to_be_bytes();
        b.iter(|| l.get(std::hint::black_box(&key)));
    });
    group.bench_function("record-file", |b| {
        let mut f = RecordFile::new(16);
        for i in 0..N {
            f.alloc(&i.to_le_bytes());
        }
        b.iter(|| f.get(std::hint::black_box(N / 2)));
    });
    group.bench_function("pagestore", |b| {
        let mut s = PageStore::new();
        for i in 0..N {
            s.alloc(&i.to_le_bytes());
        }
        b.iter(|| s.get(std::hint::black_box(N / 2)));
    });
    group.bench_function("hashidx", |b| {
        let mut h = HashIndex::new();
        for i in 0..N {
            h.insert(i, i);
        }
        b.iter(|| h.get(std::hint::black_box(N / 2)));
    });
    group.finish();

    let mut group = c.benchmark_group("substrate/insert");
    group.sample_size(20);
    group.bench_function("bptree", |b| {
        b.iter_batched(
            BPlusTree::<u64, u64>::new,
            |mut t| {
                for i in 0..1000u64 {
                    t.insert(i * 7919 % 1000, i);
                }
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.bench_function("lsm", |b| {
        b.iter_batched(
            || LsmTable::new(LsmConfig::default()),
            |mut l| {
                for i in 0..1000u64 {
                    l.put(&i.to_be_bytes(), b"v");
                }
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();

    // Delta encoding: the columnar engine's space trick, decode cost vs a
    // plain fixed-width copy.
    let ids: Vec<u64> = (0..10_000u64).map(|i| 1_000_000 + i * 3).collect();
    let encoded = delta_encode(&ids);
    let fixed: Vec<u8> = ids.iter().flat_map(|v| v.to_le_bytes()).collect();
    println!(
        "delta encoding: {} B vs fixed {} B ({:.1}x smaller)",
        encoded.len(),
        fixed.len(),
        fixed.len() as f64 / encoded.len() as f64
    );
    let mut group = c.benchmark_group("substrate/adjacency-decode");
    group.bench_function("delta", |b| {
        b.iter(|| delta_decode(std::hint::black_box(&encoded)).expect("decode"));
    });
    group.bench_function("fixed-width", |b| {
        b.iter(|| {
            std::hint::black_box(&fixed)
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("chunk")))
                .collect::<Vec<u64>>()
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10);
    targets = bench_substrates
}
criterion_main!(benches);
