//! Criterion bench: Q11 with and without an attribute index (Figure 4c).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gm_core::params::Workload;
use gm_datasets::{self as datasets, DatasetId, Scale};
use gm_model::api::LoadOptions;
use gm_model::QueryCtx;
use graphmark::registry::EngineKind;

/// §6.4, *Effect of Indexing*: "Insertions, updates, and deletions, as
/// expected, become slower since the index structures have to be
/// maintained" — ~10 % in general, ~30 % for linked(v2)-class and ~100 %
/// for cluster-class systems. This group measures the insert path with and
/// without a maintained attribute index.
fn bench_cud_with_index(c: &mut Criterion) {
    use gm_model::Value;
    let data = datasets::generate(DatasetId::Yeast, Scale::tiny(), 42);
    for indexed in [false, true] {
        let mut group = c.benchmark_group(if indexed {
            "index/Q2-insert-indexed"
        } else {
            "index/Q2-insert-plain"
        });
        group.sample_size(20);
        for kind in EngineKind::ALL {
            let mut db = kind.make();
            db.bulk_load(&data, &LoadOptions::default()).expect("load");
            if indexed && db.create_vertex_index("short_name").is_err() {
                continue;
            }
            let props = vec![("short_name".to_string(), Value::Str("bench".into()))];
            group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, _| {
                b.iter(|| db.add_vertex("bench", &props).expect("add"));
            });
        }
        group.finish();
    }
}

fn bench_index(c: &mut Criterion) {
    let data = datasets::generate(DatasetId::Mico, Scale::tiny(), 42);
    let workload = Workload::choose(&data, 7, 4);
    for indexed in [false, true] {
        let mut group = c.benchmark_group(if indexed {
            "index/Q11-indexed"
        } else {
            "index/Q11-scan"
        });
        for kind in EngineKind::ALL {
            let mut db = kind.make();
            db.bulk_load(&data, &LoadOptions::default()).expect("load");
            if indexed && db.create_vertex_index(&workload.vertex_prop.0).is_err() {
                continue; // triple engine has no attribute indexes
            }
            group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &db, |b, db| {
                let ctx = QueryCtx::unbounded();
                b.iter(|| {
                    db.vertices_with_property(
                        &workload.vertex_prop.0,
                        &workload.vertex_prop.1,
                        &ctx,
                    )
                    .expect("search")
                });
            });
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10);
    targets = bench_index, bench_cud_with_index
}
criterion_main!(benches);
