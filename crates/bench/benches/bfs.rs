//! Criterion bench: BFS (Q32) and shortest path (Q34) — Figures 6 / 7a.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gm_core::params::Workload;
use gm_datasets::{self as datasets, DatasetId, Scale};
use gm_model::api::LoadOptions;
use gm_model::QueryCtx;
use gm_traversal::algo;
use graphmark::registry::EngineKind;

fn bench_paths(c: &mut Criterion) {
    let data = datasets::generate(DatasetId::Mico, Scale::tiny(), 42);
    let workload = Workload::choose(&data, 7, 4);

    for depth in [2usize, 3] {
        let mut group = c.benchmark_group(format!("bfs/Q32-depth-{depth}"));
        group.sample_size(10);
        for kind in EngineKind::ALL {
            let mut db = kind.make();
            db.bulk_load(&data, &LoadOptions::default()).expect("load");
            let v = db.resolve_vertex(workload.vertex).expect("resolve");
            group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &db, |b, db| {
                let ctx = QueryCtx::unbounded();
                b.iter(|| algo::bfs(db.as_ref(), v, depth, None, &ctx).expect("bfs"));
            });
        }
        group.finish();
    }

    let mut group = c.benchmark_group("bfs/Q34-shortest-path");
    group.sample_size(10);
    for kind in EngineKind::ALL {
        let mut db = kind.make();
        db.bulk_load(&data, &LoadOptions::default()).expect("load");
        let v1 = db.resolve_vertex(workload.vertex).expect("resolve");
        let v2 = db.resolve_vertex(workload.vertex2).expect("resolve");
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &db, |b, db| {
            let ctx = QueryCtx::unbounded();
            b.iter(|| algo::shortest_path(db.as_ref(), v1, v2, None, &ctx).expect("sp"));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10);
    targets = bench_paths
}
criterion_main!(benches);
