//! Criterion bench: read queries Q8/Q11/Q14 per engine (Figure 4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gm_core::params::Workload;
use gm_datasets::{self as datasets, DatasetId, Scale};
use gm_model::api::{GraphDb, LoadOptions};
use gm_model::QueryCtx;
use graphmark::registry::EngineKind;

fn loaded(kind: EngineKind, data: &gm_model::Dataset) -> Box<dyn GraphDb> {
    let mut db = kind.make();
    db.bulk_load(data, &LoadOptions::default()).expect("load");
    db
}

fn bench_reads(c: &mut Criterion) {
    let data = datasets::generate(DatasetId::Yeast, Scale::tiny(), 42);
    let workload = Workload::choose(&data, 7, 4);

    let mut group = c.benchmark_group("read/Q8-vertex-count");
    for kind in EngineKind::ALL {
        let db = loaded(kind, &data);
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &db, |b, db| {
            let ctx = QueryCtx::unbounded();
            b.iter(|| db.vertex_count(&ctx).expect("count"));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("read/Q11-property-search");
    for kind in EngineKind::ALL {
        let db = loaded(kind, &data);
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &db, |b, db| {
            let ctx = QueryCtx::unbounded();
            b.iter(|| {
                db.vertices_with_property(&workload.vertex_prop.0, &workload.vertex_prop.1, &ctx)
                    .expect("search")
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("read/Q14-by-id");
    for kind in EngineKind::ALL {
        let db = loaded(kind, &data);
        let v = db.resolve_vertex(workload.vertex).expect("resolve");
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &db, |b, db| {
            b.iter(|| db.vertex(v).expect("vertex"));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10);
    targets = bench_reads
}
criterion_main!(benches);
