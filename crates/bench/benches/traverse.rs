//! Criterion bench: neighborhood and degree primitives (Figure 5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gm_core::params::Workload;
use gm_datasets::{self as datasets, DatasetId, Scale};
use gm_model::api::{Direction, LoadOptions};
use gm_model::QueryCtx;
use graphmark::registry::EngineKind;

fn bench_traversals(c: &mut Criterion) {
    let data = datasets::generate(DatasetId::Mico, Scale::tiny(), 42);
    let workload = Workload::choose(&data, 7, 4);

    let mut group = c.benchmark_group("traverse/Q23-out-neighbors");
    for kind in EngineKind::ALL {
        let mut db = kind.make();
        db.bulk_load(&data, &LoadOptions::default()).expect("load");
        let v = db.resolve_vertex(workload.vertex).expect("resolve");
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &db, |b, db| {
            let ctx = QueryCtx::unbounded();
            b.iter(|| db.neighbors(v, Direction::Out, None, &ctx).expect("out"));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("traverse/Q24-labeled-both");
    for kind in EngineKind::ALL {
        let mut db = kind.make();
        db.bulk_load(&data, &LoadOptions::default()).expect("load");
        let v = db.resolve_vertex(workload.vertex).expect("resolve");
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &db, |b, db| {
            let ctx = QueryCtx::unbounded();
            b.iter(|| {
                db.neighbors(v, Direction::Both, Some(&workload.vertex_edge_label), &ctx)
                    .expect("both")
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("traverse/Q30-degree-scan");
    group.sample_size(10);
    for kind in EngineKind::ALL {
        let mut db = kind.make();
        db.bulk_load(&data, &LoadOptions::default()).expect("load");
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &db, |b, db| {
            let ctx = QueryCtx::unbounded();
            b.iter(|| {
                // The bitmap engine may exhaust its materialization budget —
                // that outcome is part of what this group shows.
                let _ = db.degree_scan(Direction::Both, workload.k, &ctx);
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10);
    targets = bench_traversals
}
criterion_main!(benches);
