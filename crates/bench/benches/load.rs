//! Criterion bench: bulk load per engine (Figure 3a microscope).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gm_datasets::{self as datasets, DatasetId, Scale};
use gm_model::api::LoadOptions;
use graphmark::registry::EngineKind;

fn bench_load(c: &mut Criterion) {
    let data = datasets::generate(DatasetId::Yeast, Scale::tiny(), 42);
    let mut group = c.benchmark_group("load/yeast-tiny");
    group.sample_size(10);
    for kind in EngineKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, kind| {
                b.iter(|| {
                    let mut db = kind.make();
                    db.bulk_load(&data, &LoadOptions::default()).expect("load");
                    std::hint::black_box(db.space().total())
                });
            },
        );
    }
    group.finish();

    // The load ablation: triple engine with and without the bulk option.
    let mut group = c.benchmark_group("load/triple-bulk-ablation");
    group.sample_size(10);
    for (name, bulk) in [("bulk", true), ("per-statement", false)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut db = EngineKind::Triple.make();
                db.bulk_load(
                    &data,
                    &LoadOptions {
                        bulk,
                        index_during_load: false,
                    },
                )
                .expect("load");
                std::hint::black_box(db.space().total())
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10);
    targets = bench_load
}
criterion_main!(benches);
