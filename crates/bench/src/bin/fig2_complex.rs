//! Figure 2 — complex (LDBC-style) query performance on the ldbc dataset.

use std::time::Instant;

use gm_bench::{DataBank, Env};
use gm_core::complex::{self, ComplexParams, ComplexQuery};
use gm_datasets::DatasetId;
use gm_model::{GdbError, QueryCtx};

fn main() {
    let env = Env::from_env();
    let bank = DataBank::generate(&env);
    let data = bank.get(DatasetId::Ldbc);
    let params = ComplexParams::choose(data, env.seed);

    println!("\n=== Figure 2 — complex queries on ldbc (ms) ===");
    print!("{:<18}", "query");
    for kind in &env.engines {
        print!(" | {:>14}", kind.name());
    }
    println!();
    println!("{}", "-".repeat(18 + env.engines.len() * 17));
    for q in ComplexQuery::ALL {
        print!("{:<18}", q.name());
        for kind in &env.engines {
            let mut db = kind.make();
            db.bulk_load(data, &gm_model::api::LoadOptions::default())
                .expect("load");
            let p = params.resolve(db.as_ref()).expect("params");
            let ctx = QueryCtx::with_timeout(env.timeout);
            let start = Instant::now();
            let cell = match complex::execute(q, db.as_mut(), &p, &ctx) {
                Ok(_) => format!("{:.3}", start.elapsed().as_secs_f64() * 1e3),
                Err(GdbError::Timeout) => "TIMEOUT".to_string(),
                Err(e) => format!("ERR:{e:.8}"),
            };
            print!(" | {cell:>14}");
        }
        println!();
    }
    println!(
        "\nExpected shape (paper): relational fastest on city/company/university\n\
         (single-label conditional joins) and slowest on places (multi-label\n\
         traversal with large intermediates); triple times out; native engines\n\
         dominate friend-of-friend and triangle."
    );
}
