//! Figure 4 — selections: (a) whole-graph reads Q8–Q13, (b) id lookups
//! Q14–Q15, (c) Q11 with an attribute index.

use gm_bench::{instances_for, print_block, run_queries, DataBank, Env};
use gm_core::report::RunMode;

fn main() {
    let env = Env::from_env();
    let bank = DataBank::generate(&env);
    for (id, data) in bank.freebase() {
        let rep = run_queries(
            &env,
            data,
            &instances_for(8..=13),
            &[RunMode::Isolation],
            false,
        );
        print_block(
            "Figure 4(a) — selections Q8–Q13",
            id,
            &rep,
            RunMode::Isolation,
        );
        let rep = run_queries(
            &env,
            data,
            &instances_for(14..=15),
            &[RunMode::Isolation],
            false,
        );
        print_block(
            "Figure 4(b) — id search Q14–Q15",
            id,
            &rep,
            RunMode::Isolation,
        );
        let rep = run_queries(
            &env,
            data,
            &instances_for(11..=11),
            &[RunMode::Isolation],
            true, // build the attribute index first
        );
        print_block(
            "Figure 4(c) — Q11 with attribute index",
            id,
            &rep,
            RunMode::Isolation,
        );
    }
    println!(
        "\nExpected shape (paper): bitmap fastest counts; document slowest\n\
         whole-graph reads (materializes every document); relational an order\n\
         faster on Q11–Q13; the index helps linked/cluster/relational/columnar\n\
         by orders of magnitude but changes nothing for bitmap and document."
    );
}
