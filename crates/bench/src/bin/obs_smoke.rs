//! Observability smoke — the CI gate for the gm-obs layer.
//!
//! Two claims, both cheap enough to check on every push:
//!
//! 1. **`GM_OBS=phases` is honest.** A snapshot-mode workload populates the
//!    per-phase columns (engine exec, snapshot pin, clone/publish), and on
//!    a scan-heavy run — where per-op driver overhead is negligible against
//!    the instrumented regions — the phase sum lands within 20% of the
//!    end-to-end latency sum: the spans cover the op, and self-time
//!    attribution never double-counts a nanosecond.
//! 2. **`GM_OBS=off` costs nothing.** The same workload with observability
//!    off reports zero for every span-fed phase column, and its best-of-3
//!    throughput is no worse than 95% of the phases-mode best — the off
//!    path resolves no metrics handles and reads no clocks.
//!
//! The binary drives the modes itself via `gm_obs::set_mode` (both run in
//! one process), so `GM_OBS` in the environment is ignored here.

use gm_core::summary;
use gm_datasets::{self as datasets, DatasetId, Scale};
use gm_obs::ObsMode;
use gm_workload::{run_snapshot, MixKind, RunReport, WorkloadConfig};
use graphmark::mvcc::{SnapshotMode, SnapshotSource};
use graphmark::registry::EngineKind;

fn fail(msg: &str) -> ! {
    eprintln!("[obs_smoke] FAIL: {msg}");
    std::process::exit(1);
}

fn run_once(data: &gm_model::Dataset, mix: MixKind, ops: u64) -> RunReport {
    let kind = EngineKind::LinkedV2;
    let cfg = WorkloadConfig {
        mix,
        threads: 2,
        ops_per_worker: ops,
        seed: 42,
        ..WorkloadConfig::default()
    };
    let factory =
        move || -> Box<dyn SnapshotSource> { kind.make_snapshot_source(SnapshotMode::Cow) };
    run_snapshot(&factory, data, &cfg).unwrap_or_else(|e| fail(&format!("{mix:?} run: {e}")))
}

fn main() {
    let data = datasets::generate(DatasetId::Yeast, Scale::tiny(), 42);
    eprintln!(
        "[obs_smoke] dataset {} |V|={} |E|={}",
        data.name,
        data.vertex_count(),
        data.edge_count()
    );

    // --- phases mode: the columns are populated -------------------------
    gm_obs::set_mode(ObsMode::Phases);
    let mixed = run_once(&data, MixKind::Mixed, 300);
    let row = mixed.scaling_row();
    if row.engine_exec_nanos == 0 {
        fail("phases mode: engine_exec column is zero");
    }
    if row.snapshot_pin_nanos == 0 {
        fail("phases mode: snapshot_pin column is zero on a snapshot run");
    }
    if row.clone_publish_nanos == 0 {
        fail("phases mode: clone_publish column is zero on a mixed (writing) cow run");
    }
    let csv = summary::scaling_to_csv(std::slice::from_ref(&row));
    for col in [
        "lock_wait",
        "engine_exec",
        "snapshot_pin",
        "clone_publish",
        "wire",
    ] {
        if !csv.contains(col) {
            fail(&format!("CSV export is missing the {col} phase column"));
        }
    }
    eprintln!(
        "[obs_smoke] phases: exec {}ns pin {}ns clone {}ns over {} ops — columns populated",
        row.engine_exec_nanos, row.snapshot_pin_nanos, row.clone_publish_nanos, row.ops
    );

    // --- phases mode: the split is honest -------------------------------
    // Scan-heavy ops spend nearly all their time inside the instrumented
    // regions, so the phase sum must land within 20% of the end-to-end
    // latency sum — and self-time attribution must keep it from exceeding
    // the wall clock (10% slack for timer granularity).
    let scans = run_once(&data, MixKind::ScanHeavy, 150);
    let phase_sum = scans.phase_nanos().total() as f64;
    let wall = scans.hist.sum_nanos() as f64;
    let ratio = phase_sum / wall.max(1.0);
    eprintln!(
        "[obs_smoke] phases: phase sum {:.2}ms vs end-to-end {:.2}ms (ratio {ratio:.3})",
        phase_sum / 1e6,
        wall / 1e6
    );
    if ratio < 0.80 {
        fail(&format!(
            "phase sum covers only {:.0}% of end-to-end latency (want ≥80%)",
            ratio * 100.0
        ));
    }
    if ratio > 1.10 {
        fail(&format!(
            "phase sum exceeds end-to-end latency by {:.0}% — phases double-counted",
            (ratio - 1.0) * 100.0
        ));
    }

    // --- off mode: columns empty, throughput unharmed -------------------
    let best = |label: &str| -> f64 {
        (0..3)
            .map(|i| {
                let r = run_once(&data, MixKind::Mixed, 300);
                eprintln!("[obs_smoke] {label} run {i}: {:>9.0} ops/s", r.throughput());
                r.throughput()
            })
            .fold(0.0, f64::max)
    };
    let phases_tput = best("phases");
    gm_obs::set_mode(ObsMode::Off);
    let off = run_once(&data, MixKind::Mixed, 300);
    let off_row = off.scaling_row();
    if off_row.engine_exec_nanos != 0
        || off_row.snapshot_pin_nanos != 0
        || off_row.clone_publish_nanos != 0
        || off_row.wire_encode_nanos != 0
        || off_row.wire_io_nanos != 0
    {
        fail("off mode: span-fed phase columns must stay zero");
    }
    let off_tput = best("off");
    if off_tput < 0.95 * phases_tput {
        fail(&format!(
            "off-mode throughput {off_tput:.0} ops/s fell below 95% of phases-mode \
             {phases_tput:.0} ops/s — the off path must cost nothing"
        ));
    }
    eprintln!(
        "[obs_smoke] off: columns empty, best {off_tput:.0} ops/s vs phases best \
         {phases_tput:.0} ops/s — PASS"
    );
}
