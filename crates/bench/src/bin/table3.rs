//! Table 3 — dataset characteristics.
//!
//! Regenerates the statistics row for every dataset: |V|, |E|, |L|,
//! connected components, density, modularity, degrees and diameter.

use gm_bench::{DataBank, Env};
use gm_datasets::stats::{dataset_stats, render_table};

fn main() {
    let env = Env::from_env();
    let bank = DataBank::generate(&env);
    let rows: Vec<_> = bank.all().map(|(_, d)| dataset_stats(d)).collect();
    println!(
        "\nTable 3 — dataset characteristics (scale '{}'):\n",
        env.scale.name
    );
    print!("{}", render_table(&rows));
    println!(
        "\nPaper shape checks: Frb samples fragmented & modular; ldbc single\n\
         component with edge properties; MiCo/Frb sparse; Yeast/ldbc denser."
    );
}
