//! Trace smoke — the CI gate for the gm-trace flight recorder.
//!
//! Three claims, all cheap enough to check on every push:
//!
//! 1. **Attribution is honest.** A synthetic backend injects a ~2 ms
//!    `EngineExec` delay into 4% of its ops (every `op_index % 50 == 7`).
//!    The run's `p99_exemplar` must resolve in the flight recorder to one
//!    of those injected ops, retained as a tail record whose phase vector
//!    attributes ≥80% of the end-to-end latency to the injected phase —
//!    the recorder finds the op a tail investigation would need.
//! 2. **Ids are replay-stable.** The record retrieved through the exemplar
//!    carries the (worker, op_index) that [`gm_obs::trace::derive_id`]
//!    maps back to the same id, so a printed id alone identifies the op.
//! 3. **`GM_TRACE=off` costs nothing.** With tracing off, `derive_id`
//!    returns 0 (no mixing, no clock reads), a full run adds nothing to
//!    the ring, and best-of-3 throughput on a delay-free workload is no
//!    worse than 95% of tail-mode best.
//!
//! The binary drives the modes itself via `gm_obs::trace::set_mode` (both
//! run in one process), so `GM_TRACE` in the environment is ignored here.

use std::time::{Duration, Instant};

use gm_model::GdbResult;
use gm_obs::trace::{self, TraceMode, TraceOrigin};
use gm_obs::{phase, Phase};
use gm_workload::{
    run_backend, Backend, MixKind, Op, OpResult, RunReport, Session, WorkloadConfig,
};

const SEED: u64 = 42;
const THREADS: u32 = 2;
const OPS: u64 = 400;
/// Ops whose `op_index % VICTIM_MOD == VICTIM_REM` get the injected delay:
/// 4% of the run, comfortably wider than the p99 cut so the p99 exemplar
/// must land inside the injected population.
const VICTIM_MOD: u64 = 50;
const VICTIM_REM: u64 = 7;
const DELAY: Duration = Duration::from_millis(2);

fn fail(msg: &str) -> ! {
    eprintln!("[trace_smoke] FAIL: {msg}");
    std::process::exit(1);
}

/// A backend whose "engine" is a spin-wait: fast no-op for most ops, a
/// [`DELAY`]-long `EngineExec` span for the victim ops. No real graph —
/// the smoke measures the recorder, not an engine.
struct DelayBackend {
    inject: bool,
}

struct DelaySession<'a> {
    b: &'a DelayBackend,
}

impl Backend for DelayBackend {
    fn engine(&self) -> String {
        "delay-injector".into()
    }

    fn open_session(&self, _worker: usize) -> GdbResult<Box<dyn Session + '_>> {
        Ok(Box::new(DelaySession { b: self }))
    }
}

impl Session for DelaySession<'_> {
    fn execute(&mut self, _op: Op, _worker: usize, op_index: u64) -> GdbResult<OpResult> {
        phase::reset_op();
        if self.b.inject && op_index % VICTIM_MOD == VICTIM_REM {
            let _span = phase::span_always(Phase::EngineExec);
            let start = Instant::now();
            while start.elapsed() < DELAY {
                std::hint::spin_loop();
            }
        }
        Ok(OpResult::plain(1).with_phases(phase::take_all()))
    }
}

fn run_once(inject: bool, ops: u64) -> RunReport {
    let backend = DelayBackend { inject };
    let cfg = WorkloadConfig {
        mix: MixKind::ReadHeavy,
        threads: THREADS,
        ops_per_worker: ops,
        seed: SEED,
        ..WorkloadConfig::default()
    };
    run_backend(&backend, "synthetic", &cfg).unwrap_or_else(|e| fail(&format!("run: {e}")))
}

fn main() {
    // --- tail mode: the injected delay surfaces as the p99 exemplar ------
    trace::set_mode(TraceMode::Tail);
    let report = run_once(true, OPS);
    let row = report.scaling_row();
    if row.p99_exemplar == 0 {
        fail("tail mode: no p99 exemplar was stamped");
    }
    let rec = trace::global_ring()
        .find(row.p99_exemplar)
        .unwrap_or_else(|| {
            fail(&format!(
                "p99 exemplar {:#018x} does not resolve in the flight recorder",
                row.p99_exemplar
            ))
        });
    if !rec.tail {
        fail("the p99 exemplar's record is not tagged as a tail record");
    }
    if rec.origin != TraceOrigin::Client {
        fail("an in-process run must record client-origin traces");
    }
    if rec.op_index % VICTIM_MOD != VICTIM_REM {
        fail(&format!(
            "p99 exemplar resolved to op (worker {}, index {}) — not an injected-delay op",
            rec.worker, rec.op_index
        ));
    }
    if trace::derive_id(SEED, rec.worker, rec.op_index) != rec.id {
        fail("record's (worker, op_index) does not re-derive its own trace id");
    }
    let exec = rec.phases.get(Phase::EngineExec);
    if exec < rec.total_nanos.saturating_mul(4) / 5 {
        fail(&format!(
            "injected phase covers only {exec} of {} ns end-to-end (want ≥80%)",
            rec.total_nanos
        ));
    }
    eprintln!(
        "[trace_smoke] tail: exemplar {:#018x} → (worker {}, op {}) exec {:.2}ms of {:.2}ms \
         e2e — attribution honest",
        rec.id,
        rec.worker,
        rec.op_index,
        exec as f64 / 1e6,
        rec.total_nanos as f64 / 1e6
    );

    // --- off mode: no ids, no records, no cost ---------------------------
    let best = |label: &str| -> f64 {
        (0..3)
            .map(|i| {
                let r = run_once(false, 20_000);
                eprintln!(
                    "[trace_smoke] {label} run {i}: {:>9.0} ops/s",
                    r.throughput()
                );
                r.throughput()
            })
            .fold(0.0, f64::max)
    };
    let tail_tput = best("tail");
    trace::set_mode(TraceMode::Off);
    if trace::derive_id(SEED, 0, 0) != 0 {
        fail("off mode: derive_id must return 0 (the no-trace id)");
    }
    let before = trace::global_ring().snapshot().len();
    let off_report = run_once(true, OPS);
    if off_report.scaling_row().p99_exemplar != 0 {
        fail("off mode: a p99 exemplar was stamped");
    }
    let after = trace::global_ring().snapshot().len();
    if after != before {
        fail(&format!(
            "off mode: the ring grew from {before} to {after} records"
        ));
    }
    let off_tput = best("off");
    if off_tput < 0.95 * tail_tput {
        fail(&format!(
            "off-mode throughput {off_tput:.0} ops/s fell below 95% of tail-mode \
             {tail_tput:.0} ops/s — the off path must cost nothing"
        ));
    }
    eprintln!(
        "[trace_smoke] off: zero ids, ring unchanged, best {off_tput:.0} ops/s vs tail best \
         {tail_tput:.0} ops/s — PASS"
    );
}
