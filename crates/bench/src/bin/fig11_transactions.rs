//! Figure 11 (beyond the paper): epoch-pinned write transactions — atomic
//! cross-shard commit cost vs autocommit, with conflict accounting.
//!
//! The sharding PRs made *reads* atomic across shards (composite epochs
//! under a seqlock); the transactions PR makes *writes* atomic too: a
//! `WriteTxn` pins a read epoch at `begin`, buffers its write set with
//! read-your-writes overlay semantics, and `commit` validates
//! first-committer-wins against the source's transaction log before
//! replaying and publishing every touched shard inside one seqlock window.
//! This binary measures what that buys and what it costs:
//!
//! * `snapshot-*` rows — the autocommit baseline: every driver write goes
//!   straight through `SnapshotSource::with_write`;
//! * `snapshot-*+txn` rows — the same deterministic workload with each
//!   worker buffering `GM_TXN_OPS` writes per epoch-pinned transaction;
//!   commits that lose first-committer-wins validation are counted in the
//!   `txn_conflicts` column (the whole buffered set is discarded — that is
//!   the semantics, not an error).
//!
//! Rendered through the same `ScalingRow`/`render_scaling`/CSV machinery as
//! fig8–fig10; the CSV gains a trailing `txn_conflicts` column.
//!
//! Environment knobs on top of the `GM_*` set (see `gm_bench::config`):
//!
//! | var | default | meaning |
//! |---|---|---|
//! | `GM_SHARDS` | `1,4` | shard counts to sweep |
//! | `GM_THREADS` | `2,4` | worker-thread counts to sweep |
//! | `GM_MIXES` | `write-heavy,mixed` | workload mixes |
//! | `GM_WL_OPS` | `400` | ops per worker |
//! | `GM_TXN_OPS` | `8` | writes buffered per transaction (0 = autocommit) |
//! | `GM_SNAPSHOT_MODE` | `cow` | `cow` / `native` snapshot cells |
//!
//! `--smoke` replaces the sweep with the PR's correctness gates, enforced
//! in CI (any violation exits non-zero):
//!
//! 1. **replay equality** — a single worker running the whole write-heavy
//!    sequence inside one transaction committed at the end must land the
//!    exact same graph as the autocommit run;
//! 2. **atomicity** — a concurrent pinner racing cross-shard transactional
//!    commits must never observe a partial write set (counts stay on the
//!    commit-granularity lattice);
//! 3. **conflict semantics** — of two transactions racing on the same
//!    vertex, the loser fails with the distinct `GdbError::TxnConflict`
//!    and its whole write set is discarded;
//! 4. **driver accounting** — a concurrent transactional driver run
//!    completes with zero op errors, conflicts counted separately.

use gm_bench::{config, Env};
use gm_core::summary::{self, ScalingRow};
use gm_datasets::{self as datasets, DatasetId, Scale};
use gm_obs::trace;
use gm_workload::{
    prepare_snapshot, run_backend, run_snapshot, run_snapshot_txn, txn_ops_from_env, MixKind,
    RunReport, SnapshotBackend, WorkloadConfig,
};
use graphmark::model::{GdbError, GraphDb, GraphSnapshot, QueryCtx, Value, Vid};
use graphmark::mvcc::{SnapshotMode, SnapshotSource, WriteTxn};
use graphmark::registry::EngineKind;

struct Sweep {
    env: Env,
    shards: Vec<u32>,
    threads: Vec<u32>,
    mixes: Vec<MixKind>,
    ops_per_worker: u64,
    txn_ops: u64,
    mode: SnapshotMode,
}

fn sweep_from_env() -> Sweep {
    Sweep {
        env: Env::from_env(),
        shards: config::var_list_u32("GM_SHARDS", "1,4"),
        threads: config::var_list_u32("GM_THREADS", "2,4"),
        mixes: config::var_mixes("GM_MIXES", "write-heavy,mixed"),
        ops_per_worker: config::var_u64("GM_WL_OPS", 400),
        txn_ops: txn_ops_from_env(),
        // Transactions need a snapshot source; "off" makes no sense here.
        mode: config::var_snapshot_mode(Some(SnapshotMode::Cow)).unwrap_or(SnapshotMode::Cow),
    }
}

fn wl_config(mix: MixKind, threads: u32, sweep: &Sweep) -> WorkloadConfig {
    WorkloadConfig {
        mix,
        threads,
        ops_per_worker: sweep.ops_per_worker,
        seed: sweep.env.seed,
        op_timeout: sweep.env.timeout,
        ..WorkloadConfig::default()
    }
}

fn log_row(r: &RunReport) {
    eprintln!(
        "[fig11]   {:<20} {:<11} t={:<2} {:<22} {:>9.0} ops/s  conflicts {}",
        r.engine,
        r.mix,
        r.threads,
        r.isolation,
        r.throughput(),
        r.txn_conflicts(),
    );
}

fn main() {
    config::apply_obs_mode();
    config::apply_trace_mode();
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let sweep = sweep_from_env();
    if sweep.shards.is_empty() || sweep.threads.is_empty() || sweep.mixes.is_empty() {
        eprintln!(
            "[fig11] nothing to run: GM_SHARDS, GM_THREADS or GM_MIXES left no valid entries"
        );
        std::process::exit(2);
    }

    let data = datasets::generate(DatasetId::Yeast, sweep.env.scale, sweep.env.seed);
    eprintln!(
        "[fig11] dataset {} |V|={} |E|={}, {} engines × shards {:?} × threads {:?} × {:?}, \
         txn batch {} writes, snapshot mode {}",
        data.name,
        data.vertex_count(),
        data.edge_count(),
        sweep.env.engines.len(),
        sweep.shards,
        sweep.threads,
        sweep.mixes.iter().map(|m| m.name()).collect::<Vec<_>>(),
        sweep.txn_ops,
        sweep.mode.name(),
    );

    let mut rows: Vec<ScalingRow> = Vec::new();
    for kind in &sweep.env.engines {
        for mix in &sweep.mixes {
            for &t in &sweep.threads {
                let cfg = wl_config(*mix, t, &sweep);
                for &n in &sweep.shards {
                    let kind = *kind;
                    let mode = sweep.mode;
                    let src_factory = move || -> Box<dyn SnapshotSource> {
                        Box::new(kind.make_sharded_source(n as usize, mode))
                    };
                    // Autocommit baseline, then the same deterministic
                    // workload with transactional sessions.
                    match run_snapshot(&src_factory, &data, &cfg) {
                        Ok(r) => {
                            log_row(&r);
                            rows.push(r.scaling_row());
                        }
                        Err(e) => eprintln!(
                            "[fig11]   {} {} t={t} s={n} autocommit FAILED: {e}",
                            kind.name(),
                            mix.name()
                        ),
                    }
                    if sweep.txn_ops > 0 {
                        match run_snapshot_txn(&src_factory, &data, &cfg, sweep.txn_ops) {
                            Ok(r) => {
                                log_row(&r);
                                rows.push(r.scaling_row());
                            }
                            Err(e) => eprintln!(
                                "[fig11]   {} {} t={t} s={n} txn FAILED: {e}",
                                kind.name(),
                                mix.name()
                            ),
                        }
                    }
                }
            }
        }
    }

    println!(
        "\n=== Figure 11 — transactional vs autocommit writes (dataset {}) ===",
        data.name
    );
    print!("{}", summary::render_scaling(&rows));
    println!("\n--- csv ---");
    print!("{}", summary::scaling_to_csv(&rows));

    if trace::enabled() {
        let ring = trace::global_ring();
        let stamped = rows.iter().filter(|r| r.p99_exemplar != 0).count();
        let resolved = rows
            .iter()
            .filter(|r| r.p99_exemplar != 0 && ring.find(r.p99_exemplar).is_some())
            .count();
        eprintln!(
            "[fig11] trace: {resolved}/{stamped} p99 exemplars resolve in the flight recorder"
        );
    }
    if let Some(base) = config::trace_dump_path() {
        match trace::dump_to(&base, &trace::global_ring().snapshot()) {
            Ok(()) => eprintln!("[fig11] traces dumped to {base}.txt and {base}.json"),
            Err(e) => eprintln!("[fig11] GM_TRACE_DUMP to {base} failed: {e}"),
        }
    }
}

fn fail(why: String) -> ! {
    eprintln!("[fig11] smoke FAILED: {why}");
    std::process::exit(1);
}

fn counts(source: &dyn SnapshotSource) -> (u64, u64) {
    let snap = source
        .snapshot()
        .unwrap_or_else(|e| fail(format!("count pin: {e}")));
    let ctx = QueryCtx::unbounded();
    (
        snap.vertex_count(&ctx)
            .unwrap_or_else(|e| fail(format!("vertex count: {e}"))),
        snap.edge_count(&ctx)
            .unwrap_or_else(|e| fail(format!("edge count: {e}"))),
    )
}

/// The CI gates: replay equality, cross-shard atomicity under a racing
/// pinner, distinct conflict semantics, and clean driver accounting — all
/// on a tiny fixed configuration.
fn smoke() {
    let env = Env::from_env();
    let kind = *env.engines.first().unwrap_or(&EngineKind::LinkedV2);
    let data = datasets::generate(DatasetId::Yeast, Scale::tiny(), env.seed);
    eprintln!(
        "[fig11] smoke: engine {}, dataset {} |V|={} |E|={} [smoke]",
        kind.name(),
        data.name,
        data.vertex_count(),
        data.edge_count(),
    );

    // Gate 1: one transaction spanning a single worker's whole write-heavy
    // sequence, committed at session finish, must land the same graph as
    // the autocommit run of the same deterministic sequence.
    let cfg = WorkloadConfig {
        mix: MixKind::WriteHeavy,
        threads: 1,
        ops_per_worker: config::var_u64("GM_WL_OPS", 300),
        seed: env.seed,
        op_timeout: env.timeout,
        ..WorkloadConfig::default()
    };
    let src_factory =
        || -> Box<dyn SnapshotSource> { Box::new(kind.make_sharded_source(4, SnapshotMode::Cow)) };
    let (txn_src, txn_params) = prepare_snapshot(&src_factory, &data, &cfg)
        .unwrap_or_else(|e| fail(format!("txn prepare: {e}")));
    let backend =
        SnapshotBackend::new(txn_src.as_ref(), &txn_params, cfg.op_timeout).with_txn_ops(u64::MAX);
    let txn_report =
        run_backend(&backend, &data.name, &cfg).unwrap_or_else(|e| fail(format!("txn run: {e}")));
    if txn_report.errors() > 0 || txn_report.txn_conflicts() > 0 {
        fail(format!(
            "single-worker txn run: {} errors, {} conflicts (both must be 0)",
            txn_report.errors(),
            txn_report.txn_conflicts()
        ));
    }
    let (auto_src, auto_params) = prepare_snapshot(&src_factory, &data, &cfg)
        .unwrap_or_else(|e| fail(format!("autocommit prepare: {e}")));
    let backend = SnapshotBackend::new(auto_src.as_ref(), &auto_params, cfg.op_timeout);
    let auto_report = run_backend(&backend, &data.name, &cfg)
        .unwrap_or_else(|e| fail(format!("autocommit run: {e}")));
    if auto_report.errors() > 0 {
        fail(format!("autocommit run: {} errors", auto_report.errors()));
    }
    let (tv, te) = counts(txn_src.as_ref());
    let (av, ae) = counts(auto_src.as_ref());
    if (tv, te) != (av, ae) {
        fail(format!(
            "transactional replay diverged from autocommit: |V|/|E| {tv}/{te} vs {av}/{ae}"
        ));
    }
    eprintln!(
        "[fig11] smoke: replay equality holds over {} buffered writes (|V|={tv} |E|={te})",
        cfg.ops_per_worker
    );

    // Gate 2: a pinner racing cross-shard transactional commits never sees
    // a partial write set. Each transaction adds exactly 3 vertices across
    // shards, so every pinned count must sit on the 3-vertex lattice.
    let source = kind.make_sharded_source(4, SnapshotMode::Cow);
    source
        .with_write(&mut |db: &mut dyn GraphDb| {
            for i in 0..16u64 {
                let v = db.add_vertex("base", &vec![("seq".into(), Value::Int(i as i64))])?;
                let _ = v;
            }
            Ok(0)
        })
        .unwrap_or_else(|e| fail(format!("atomicity seed: {e}")));
    let base = counts(&source).0;
    let commits = 30u64;
    let done = std::sync::atomic::AtomicBool::new(false);
    let torn = std::thread::scope(|s| {
        let src = &source;
        let done_ref = &done;
        let pinner = s.spawn(move || -> u64 {
            let ctx = QueryCtx::unbounded();
            let mut torn = 0u64;
            while !done_ref.load(std::sync::atomic::Ordering::Acquire) {
                let snap = match src.snapshot() {
                    Ok(s) => s,
                    Err(_) => continue,
                };
                let n = snap.vertex_count(&ctx).unwrap_or(base);
                if n < base || !(n - base).is_multiple_of(3) {
                    torn += 1;
                }
            }
            torn
        });
        for i in 0..commits {
            let mut txn = WriteTxn::begin(src).unwrap_or_else(|e| fail(format!("begin: {e}")));
            for j in 0..3u64 {
                txn.add_vertex("txn", &vec![("id".into(), Value::Int((i * 3 + j) as i64))])
                    .unwrap_or_else(|e| fail(format!("buffer: {e}")));
            }
            txn.commit(src)
                .unwrap_or_else(|e| fail(format!("commit {i}: {e}")));
        }
        done.store(true, std::sync::atomic::Ordering::Release);
        pinner
            .join()
            .unwrap_or_else(|_| fail("pinner panicked".into()))
    });
    if torn > 0 {
        fail(format!(
            "{torn} pinned reads observed a partial cross-shard write set"
        ));
    }
    let after = counts(&source).0;
    if after != base + commits * 3 {
        fail(format!(
            "committed vertex count drifted: expected {}, got {after}",
            base + commits * 3
        ));
    }
    eprintln!(
        "[fig11] smoke: 0 torn reads across {commits} racing cross-shard commits \
         ({base} → {after} vertices)"
    );

    // Gate 3: first-committer-wins with the distinct error variant. Both
    // transactions touch the same vertex; the loser's whole set (including
    // an unrelated vertex creation) is discarded.
    let victim = {
        let snap = source.snapshot().unwrap_or_else(|e| fail(e.to_string()));
        let ctx = QueryCtx::unbounded();
        let mut it = snap
            .scan_vertices(&ctx)
            .unwrap_or_else(|e| fail(e.to_string()));
        match it.next() {
            Some(Ok(v)) => v,
            _ => fail("no vertex to race on".into()),
        }
    };
    let set_prop = |txn: &mut WriteTxn, v: Vid, who: &str| {
        txn.set_vertex_property(v, "fig11_who", Value::Str(who.into()))
            .unwrap_or_else(|e| fail(format!("buffer prop: {e}")));
    };
    let mut t1 = WriteTxn::begin(&source).unwrap_or_else(|e| fail(e.to_string()));
    let mut t2 = WriteTxn::begin(&source).unwrap_or_else(|e| fail(e.to_string()));
    set_prop(&mut t1, victim, "first");
    set_prop(&mut t2, victim, "second");
    t2.add_vertex("loser-extra", &Vec::new())
        .unwrap_or_else(|e| fail(e.to_string()));
    let before_loser = counts(&source).0;
    t1.commit(&source)
        .unwrap_or_else(|e| fail(format!("winner commit: {e}")));
    match t2.commit(&source) {
        Err(GdbError::TxnConflict(_)) => {}
        Err(e) => fail(format!("loser failed with the wrong variant: {e}")),
        Ok(_) => fail("conflicting commit succeeded — first-committer-wins is broken".into()),
    }
    let snap = source.snapshot().unwrap_or_else(|e| fail(e.to_string()));
    match snap.vertex_property(victim, "fig11_who") {
        Ok(Some(Value::Str(s))) if s == "first" => {}
        other => fail(format!("winner's write did not survive: {other:?}")),
    }
    if counts(&source).0 != before_loser {
        fail("loser's discarded set leaked a vertex".into());
    }
    eprintln!("[fig11] smoke: conflicting commit failed with TxnConflict, loser's set discarded");

    // Gate 4: the concurrent transactional driver completes cleanly —
    // conflicts (if any) are accounted, never surfaced as op errors.
    let cfg = WorkloadConfig {
        mix: MixKind::WriteHeavy,
        threads: 4,
        ops_per_worker: config::var_u64("GM_WL_OPS", 300),
        seed: env.seed,
        op_timeout: env.timeout,
        ..WorkloadConfig::default()
    };
    let report = run_snapshot_txn(&src_factory, &data, &cfg, txn_ops_from_env().max(1))
        .unwrap_or_else(|e| fail(format!("driver txn run: {e}")));
    log_row(&report);
    if report.errors() > 0 {
        fail(format!(
            "concurrent txn run surfaced {} op errors (conflicts must be counted, not errored)",
            report.errors()
        ));
    }
    if report.ops() != cfg.threads as u64 * cfg.ops_per_worker {
        fail(format!(
            "concurrent txn run completed {} of {} ops",
            report.ops(),
            cfg.threads as u64 * cfg.ops_per_worker
        ));
    }
    let row = report.scaling_row();
    if row.txn_conflicts != report.txn_conflicts() {
        fail("txn_conflicts accounting diverged between report and scaling row".into());
    }
    eprintln!(
        "[fig11] smoke: concurrent txn run clean — {} ops, {} conflicts counted, 0 errors",
        report.ops(),
        report.txn_conflicts()
    );
    eprintln!("[fig11] smoke: all transaction gates passed");
}
