//! Table 2 — the test queries by category, with their Gremlin 2.6 text.

use gm_core::catalog::QueryId;

fn main() {
    println!(
        "{:<5} | {:<72} | {:<42} | Cat",
        "#", "Query (Gremlin 2.6)", "Description"
    );
    println!("{}", "-".repeat(130));
    let mut last_cat = None;
    for q in QueryId::ALL {
        let cat = q.category();
        let tag = if last_cat == Some(cat) {
            ' '
        } else {
            last_cat = Some(cat);
            cat.tag()
        };
        println!(
            "Q{:<4} | {:<72} | {:<42} | {}",
            q.number(),
            q.gremlin(),
            q.description(),
            tag
        );
    }
}
