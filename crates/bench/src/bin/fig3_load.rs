//! Figure 3 (a) — data loading time per engine and dataset, plus the
//! bulk-load ablation (§6.2: BlazeGraph's "bulk loading" option; Titan's
//! schema-inference cost).

use gm_bench::{DataBank, Env};
use gm_core::params::Workload;
use gm_core::runner::{BenchConfig, Runner};
use gm_model::api::LoadOptions;
use graphmark::registry::EngineKind;

fn main() {
    let env = Env::from_env();
    let bank = DataBank::generate(&env);

    println!("\n=== Figure 3(a) — load time (ms) ===");
    print!("{:<14}", "engine");
    for (id, _) in bank.all() {
        print!(" | {:>10}", id.name());
    }
    println!();
    println!("{}", "-".repeat(14 + 7 * 13));
    for kind in &env.engines {
        print!("{:<14}", kind.name());
        for (_, data) in bank.all() {
            let workload = Workload::choose(data, env.seed, 4);
            let factory = move || kind.make();
            let runner = Runner::new(&factory, data, &workload, env.config());
            let (m, _, _) = runner.measure_load();
            print!(" | {:>10.1}", m.millis());
        }
        println!();
    }

    // Ablation: bulk vs per-statement load for the engines where the paper
    // calls the difference out.
    println!("\n=== Load ablation — bulk vs per-item path (frb-m, ms) ===");
    let data = bank.get(gm_datasets::DatasetId::FrbM);
    let workload = Workload::choose(data, env.seed, 4);
    for kind in [
        EngineKind::Triple,
        EngineKind::ColumnarV05,
        EngineKind::ColumnarV10,
    ] {
        let mut cells = Vec::new();
        for bulk in [true, false] {
            let factory = move || kind.make();
            let runner = Runner::new(
                &factory,
                data,
                &workload,
                BenchConfig {
                    load: LoadOptions {
                        bulk,
                        index_during_load: false,
                    },
                    ..env.config()
                },
            );
            let (m, _, _) = runner.measure_load();
            cells.push(m.millis());
        }
        println!(
            "{:<14}  bulk: {:>10.1}   per-item: {:>10.1}   slowdown: {:>5.1}x",
            kind.name(),
            cells[0],
            cells[1],
            cells[1] / cells[0].max(1e-9)
        );
    }
    println!(
        "\nExpected shape (paper): document/linked fastest; cluster sensitive to\n\
         |L| (frb-s); triple orders slower without bulk loading."
    );
}
