//! Figure 3 (b, c) — insertions (Q2–Q7) and updates/deletions (Q16–Q21)
//! across the Freebase samples.

use gm_bench::{instances_for, print_block, run_queries, DataBank, Env};
use gm_core::report::RunMode;

fn main() {
    let env = Env::from_env();
    let bank = DataBank::generate(&env);
    let insertions = instances_for(2..=7);
    let cud = instances_for(16..=21);
    for (id, data) in bank.freebase() {
        let rep = run_queries(&env, data, &insertions, &[RunMode::Isolation], false);
        print_block(
            "Figure 3(b) — insertions Q2–Q7",
            id,
            &rep,
            RunMode::Isolation,
        );
        let rep = run_queries(&env, data, &cud, &[RunMode::Isolation], false);
        print_block(
            "Figure 3(c) — updates/deletions Q16–Q21",
            id,
            &rep,
            RunMode::Isolation,
        );
    }
    println!(
        "\nExpected shape (paper): bitmap/document/linked(v1) fastest CUD;\n\
         linked(v2) pays the wrapper shim; columnar slowest on inserts\n\
         (consistency checks + schema inference) but competitive on deletes\n\
         (tombstones); relational fast on Q2 but slow when a new column\n\
         forces an ALTER TABLE (Q5/Q6)."
    );
}
