//! Figure 7 — (a) unlabeled shortest path Q34 on the Freebase samples;
//! (b) label-constrained BFS Q33 (depths 2–5) and shortest path Q35 on ldbc
//! (on Freebase the label filter empties after one hop — §6.4).

use gm_bench::{print_block, run_queries, DataBank, Env};
use gm_core::catalog::QueryId;
use gm_core::report::RunMode;
use gm_core::QueryInstance;
use gm_datasets::DatasetId;

fn main() {
    let env = Env::from_env();
    let bank = DataBank::generate(&env);

    let q34 = vec![QueryInstance::plain(QueryId::Q34)];
    for (id, data) in bank.freebase() {
        let rep = run_queries(&env, data, &q34, &[RunMode::Isolation], false);
        print_block(
            "Figure 7(a) — shortest path Q34",
            id,
            &rep,
            RunMode::Isolation,
        );
    }

    let mut labeled: Vec<QueryInstance> = (2..=5u8)
        .map(|d| QueryInstance {
            id: QueryId::Q33,
            depth: Some(d),
            k: None,
        })
        .collect();
    labeled.push(QueryInstance::plain(QueryId::Q35));
    let data = bank.get(DatasetId::Ldbc);
    let rep = run_queries(&env, data, &labeled, &[RunMode::Isolation], false);
    print_block(
        "Figure 7(b) — labeled BFS Q33 (d2–5) + SP Q35",
        DatasetId::Ldbc,
        &rep,
        RunMode::Isolation,
    );
    println!(
        "\nExpected shape (paper): linked fastest; bitmap second on labeled\n\
         BFS (bitmap AND); columnar(v10) second on labeled shortest path;\n\
         relational slowest (joins over every edge table)."
    );
}
