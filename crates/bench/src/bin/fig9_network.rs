//! Figure 9 (beyond the paper): in-process vs **network-attached** latency.
//!
//! The paper evaluates every system in its real client/server deployment —
//! queries cross a driver/wire boundary before touching the store — whereas
//! the in-process harness hides dispatch and serialization cost entirely.
//! This binary makes that cost visible: for every engine and mix it sweeps
//! client counts twice, once in-process (the fig8 configuration) and once
//! through `gm-net` against a loopback `gm-server` (rows suffixed `@net`),
//! then adds one open-loop pair paced at the measured in-process capacity
//! with a bounded backlog, so the wire's latency penalty shows up at a
//! matched offered rate too. Everything reports through the same
//! `ScalingRow`/`render_scaling`/CSV pipeline as the other figures.
//!
//! Extra environment knobs on top of the `GM_*` set (registry in
//! `gm_bench::config`):
//!
//! * `GM_NET_CLIENTS` (default `1,2,4`) — client-connection counts;
//! * `GM_SERVER_ADDR` (default: spawn a loopback server per engine) — an
//!   external `gm-server` to benchmark against; the sweep then runs only
//!   that server's engine, and in-process rows use the matching local
//!   engine for the side-by-side comparison;
//! * `GM_MIXES`, `GM_WL_OPS`, `GM_MAX_LATENESS_MS` as in `fig8`.
//!
//! `--smoke` runs a tiny fixed loopback configuration and exits nonzero on
//! any op error or protocol failure — CI's end-to-end check that the wire
//! path stays sound.

use std::time::Duration;

use gm_bench::{config, Env};
use gm_core::summary::{self, ScalingRow};
use gm_datasets::{self as datasets, DatasetId, Scale};
use gm_net::{run_remote, Connection, Server, ServerHandle};
use gm_obs::trace;
use gm_workload::{run, MixKind, Pacing, RunReport, WorkloadConfig};
use graphmark::registry::EngineKind;

struct Sweep {
    env: Env,
    clients: Vec<u32>,
    mixes: Vec<MixKind>,
    ops_per_worker: u64,
    max_lateness: Duration,
    server_addr: Option<String>,
}

fn sweep_from_env() -> Sweep {
    let server_addr = std::env::var("GM_SERVER_ADDR").ok();
    Sweep {
        env: Env::from_env(),
        clients: config::var_list_u32("GM_NET_CLIENTS", "1,2,4"),
        mixes: config::var_mixes("GM_MIXES", "read-heavy,mixed"),
        ops_per_worker: config::var_u64("GM_WL_OPS", 400),
        max_lateness: config::var_millis("GM_MAX_LATENESS_MS", 50),
        server_addr,
    }
}

/// The fixed tiny configuration behind `--smoke`: one engine, two mixes,
/// two clients, a short closed-loop sweep plus one paced pair — enough to
/// exercise handshake, dataset shipping, server-side execution, and the
/// in-process/network comparison end to end in seconds.
fn sweep_smoke() -> Sweep {
    let mut env = Env::from_env();
    env.scale = Scale::tiny();
    if std::env::var("GM_ENGINES").is_err() {
        env.engines = vec![EngineKind::LinkedV2];
    }
    Sweep {
        env,
        clients: vec![2],
        mixes: vec![MixKind::ReadHeavy, MixKind::Mixed],
        ops_per_worker: 150,
        max_lateness: Duration::from_millis(5),
        server_addr: std::env::var("GM_SERVER_ADDR").ok(),
    }
}

/// A loopback server owned by this run, or an external address.
enum ServerSlot {
    Spawned(ServerHandle),
    External(String),
}

impl ServerSlot {
    fn addr(&self) -> String {
        match self {
            ServerSlot::Spawned(handle) => handle.addr().to_string(),
            ServerSlot::External(addr) => addr.clone(),
        }
    }

    fn finish(self) {
        if let ServerSlot::Spawned(handle) = self {
            handle.shutdown();
        }
    }
}

fn main() {
    config::apply_obs_mode();
    config::apply_trace_mode();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sweep = if smoke {
        sweep_smoke()
    } else {
        sweep_from_env()
    };
    if sweep.clients.is_empty() || sweep.mixes.is_empty() {
        eprintln!("[fig9] nothing to run: GM_NET_CLIENTS or GM_MIXES left no valid entries");
        std::process::exit(2);
    }

    // With an external server the hosted engine is fixed: sweep just that
    // engine so every network row has its in-process twin.
    let engines: Vec<EngineKind> = match &sweep.server_addr {
        None => sweep.env.engines.clone(),
        Some(addr) => match Connection::connect(addr) {
            Ok(conn) => match EngineKind::parse(conn.engine_name()) {
                Some(kind) => vec![kind],
                None => {
                    eprintln!(
                        "[fig9] server at {addr} hosts unknown engine {:?}",
                        conn.engine_name()
                    );
                    std::process::exit(2);
                }
            },
            Err(e) => {
                eprintln!("[fig9] cannot reach GM_SERVER_ADDR {addr}: {e}");
                std::process::exit(1);
            }
        },
    };

    let data = datasets::generate(DatasetId::Yeast, sweep.env.scale, sweep.env.seed);
    eprintln!(
        "[fig9] dataset {} |V|={} |E|={}, {} engines × {:?} clients × {:?}{}{}",
        data.name,
        data.vertex_count(),
        data.edge_count(),
        engines.len(),
        sweep.clients,
        sweep.mixes.iter().map(|m| m.name()).collect::<Vec<_>>(),
        match &sweep.server_addr {
            Some(addr) => format!(" [server {addr}]"),
            None => " [loopback]".to_string(),
        },
        if smoke { " [smoke]" } else { "" }
    );

    let mut rows: Vec<ScalingRow> = Vec::new();
    let mut total_errors = 0u64;
    let mut failures = 0u32;
    let mut unresolved_exemplars = 0u32;
    let mut exemplar_rows = 0u32;
    let mut stitched_traces = 0u32;

    let mut push = |report: RunReport, net: bool, rows: &mut Vec<ScalingRow>| -> f64 {
        let mut row = report.scaling_row();
        if net {
            row.engine.push_str("@net");
        }
        // Resolve the row's p99 exemplar against the flight recorder *now*,
        // while the run's records are freshest in the ring: every reported
        // exemplar must name a retrievable trace record.
        if row.p99_exemplar != 0 {
            exemplar_rows += 1;
            match trace::global_ring().find(row.p99_exemplar) {
                Some(rec) => eprintln!(
                    "[fig9]     p99 exemplar {:#018x}: {} worker {} op {} took {}",
                    rec.id,
                    trace::op_code_label(rec.op_code),
                    rec.worker,
                    rec.op_index,
                    summary::format_nanos(rec.total_nanos),
                ),
                None => {
                    eprintln!(
                        "[fig9]     p99 exemplar {:#018x} NOT in the flight recorder",
                        row.p99_exemplar
                    );
                    unresolved_exemplars += 1;
                }
            }
        }
        // Stitched cross-process traces: network-attached closed-loop runs
        // ship the server's phase spans back under the client's trace id, so
        // a client record's phase self-times should account for (nearly all
        // of) its end-to-end latency. Open-loop latency includes schedule
        // queueing, which no phase attributes — skip those rows.
        if net && report.offered_ops_per_sec.is_none() {
            stitched_traces += trace::global_ring()
                .snapshot()
                .iter()
                .filter(|r| {
                    r.origin == trace::TraceOrigin::Client
                        && r.phases.wire() > 0
                        && r.phases.total() >= r.total_nanos.saturating_mul(4) / 5
                        && r.phases.total() <= r.total_nanos
                })
                .count() as u32;
        }
        eprintln!(
            "[fig9]   {:<20} {:<11} c={:<2} {:>9.0} ops/s  p50 {:>9} p99 {:>9}{}",
            row.engine,
            row.mix,
            row.threads,
            row.throughput(),
            summary::format_nanos(row.p50_nanos),
            summary::format_nanos(row.p99_nanos),
            if row.shed > 0 {
                format!("  shed {}", row.shed)
            } else {
                String::new()
            },
        );
        let throughput = row.throughput();
        total_errors += report.errors();
        rows.push(row);
        throughput
    };

    for kind in &engines {
        let slot = match &sweep.server_addr {
            Some(addr) => ServerSlot::External(addr.clone()),
            None => {
                let kind = *kind;
                match Server::bind("127.0.0.1:0", Box::new(move || kind.make()))
                    .and_then(Server::spawn)
                {
                    Ok(handle) => ServerSlot::Spawned(handle),
                    Err(e) => {
                        eprintln!("[fig9] {}: cannot spawn loopback server: {e}", kind.name());
                        failures += 1;
                        continue;
                    }
                }
            }
        };
        let addr = slot.addr();

        for mix in &sweep.mixes {
            let mut capacity = 0.0f64;
            let mut top_clients = 1;
            // Closed-loop client sweep: in-process vs network-attached.
            for &c in &sweep.clients {
                let cfg = WorkloadConfig {
                    mix: *mix,
                    threads: c,
                    ops_per_worker: sweep.ops_per_worker,
                    seed: sweep.env.seed,
                    op_timeout: sweep.env.timeout,
                    ..WorkloadConfig::default()
                };
                let factory = move || kind.make();
                match run(&factory, &data, &cfg) {
                    Ok(r) => {
                        capacity = capacity.max(push(r, false, &mut rows));
                        top_clients = top_clients.max(c);
                    }
                    Err(e) => {
                        eprintln!("[fig9]   {} {} c={c}: FAILED: {e}", kind.name(), mix.name());
                        failures += 1;
                    }
                }
                match run_remote(&addr, &data, &cfg) {
                    Ok(r) => {
                        push(r, true, &mut rows);
                    }
                    Err(e) => {
                        eprintln!(
                            "[fig9]   {}@net {} c={c}: FAILED: {e}",
                            kind.name(),
                            mix.name()
                        );
                        failures += 1;
                    }
                }
            }

            // One open-loop pair at the measured in-process capacity, with a
            // bounded backlog: same offered rate, so the latency columns
            // isolate what the wire adds under matched load.
            if capacity <= 0.0 {
                continue;
            }
            let cfg = WorkloadConfig {
                mix: *mix,
                threads: top_clients,
                ops_per_worker: sweep.ops_per_worker,
                seed: sweep.env.seed,
                op_timeout: sweep.env.timeout,
                pacing: Pacing::open_bounded(capacity, sweep.max_lateness),
                ..WorkloadConfig::default()
            };
            let factory = move || kind.make();
            match run(&factory, &data, &cfg) {
                Ok(r) => {
                    push(r, false, &mut rows);
                }
                Err(e) => {
                    eprintln!("[fig9]   {} {} paced: FAILED: {e}", kind.name(), mix.name());
                    failures += 1;
                }
            }
            match run_remote(&addr, &data, &cfg) {
                Ok(r) => {
                    push(r, true, &mut rows);
                }
                Err(e) => {
                    eprintln!(
                        "[fig9]   {}@net {} paced: FAILED: {e}",
                        kind.name(),
                        mix.name()
                    );
                    failures += 1;
                }
            }
        }
        slot.finish();
    }

    println!(
        "\n=== Figure 9 — in-process vs network-attached (dataset {}) ===",
        data.name
    );
    println!("(rows suffixed @net ran through gm-net client connections)");
    print!("{}", summary::render_scaling(&rows));
    println!("\n--- csv ---");
    print!("{}", summary::scaling_to_csv(&rows));

    if let Some(base) = config::trace_dump_path() {
        match trace::dump_to(&base, &trace::global_ring().snapshot()) {
            Ok(()) => eprintln!("[fig9] traces dumped to {base}.txt and {base}.json"),
            Err(e) => eprintln!("[fig9] GM_TRACE_DUMP to {base} failed: {e}"),
        }
    }

    if smoke {
        if failures > 0 || total_errors > 0 {
            eprintln!(
                "[fig9] smoke FAILED: {failures} failed runs, {total_errors} op errors \
                 (protocol or engine trouble over loopback)"
            );
            std::process::exit(1);
        }
        if unresolved_exemplars > 0 || (trace::enabled() && exemplar_rows == 0) {
            eprintln!(
                "[fig9] smoke FAILED: {unresolved_exemplars} of {exemplar_rows} p99 exemplars \
                 did not resolve to a flight-recorder record"
            );
            std::process::exit(1);
        }
        if trace::enabled() && stitched_traces == 0 {
            eprintln!(
                "[fig9] smoke FAILED: no stitched cross-process trace (no client record's \
                 phase self-times covered >=80% of its end-to-end latency)"
            );
            std::process::exit(1);
        }
        eprintln!(
            "[fig9] smoke: loopback sweep clean — wire path sound \
             ({exemplar_rows} exemplars resolved, {stitched_traces} stitched traces)"
        );
    }
}
