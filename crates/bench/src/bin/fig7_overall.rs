//! Figure 7 (c, d) — cumulative suite time per engine, single and batch
//! executions, across the Freebase samples. Also reports the batch/single
//! ratio analysis of §6.4 (CUD amortizes setup; reads scale linearly).

use gm_bench::{DataBank, Env};
use gm_core::params::Workload;
use gm_core::report::{Report, RunMode};
use gm_core::runner::Runner;

fn main() {
    let env = Env::from_env();
    let bank = DataBank::generate(&env);
    let mut report = Report::default();
    for (id, data) in bank.freebase() {
        let workload = Workload::choose(data, env.seed, (env.batch as usize).max(16));
        for kind in &env.engines {
            eprintln!("[fig7] {} on {} …", kind.name(), id.name());
            let factory = move || kind.make();
            let mut runner = Runner::new(&factory, data, &workload, env.config());
            report.extend(runner.run_suite(&[RunMode::Isolation, RunMode::Batch]));
        }
    }
    println!("\n=== Figure 7(c) — total completed time, single executions (s) ===");
    for (engine, secs) in report.total_seconds_by_engine(RunMode::Isolation) {
        println!("{engine:<14} {secs:>10.3}");
    }
    println!("\n=== Figure 7(d) — total completed time, batch executions (s) ===");
    for (engine, secs) in report.total_seconds_by_engine(RunMode::Batch) {
        println!("{engine:<14} {secs:>10.3}");
    }

    // §6.4 single-vs-batch ratio: batch/(single × batch_len) per category.
    println!(
        "\n=== Single vs batch ratio (batch / (single × {})) ===",
        env.batch
    );
    println!("values < 1 mean per-query setup dominates the single run");
    let mut by_engine: std::collections::BTreeMap<String, (f64, f64)> =
        std::collections::BTreeMap::new();
    for r in &report.rows {
        if r.mode != RunMode::Isolation || r.outcome.is_dnf() {
            continue;
        }
        if let Some(batch_ms) = report.millis_of(&r.engine, &r.query, RunMode::Batch) {
            let entry = by_engine.entry(r.engine.clone()).or_insert((0.0, 0.0));
            entry.0 += batch_ms;
            entry.1 += r.millis() * env.batch as f64;
        }
    }
    for (engine, (batch, scaled_single)) in by_engine {
        if scaled_single > 0.0 {
            println!("{engine:<14} {:>8.3}", batch / scaled_single);
        }
    }
}
