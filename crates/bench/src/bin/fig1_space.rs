//! Figure 1 (a, b) — space occupancy per engine and dataset, with the raw
//! GraphSON size as the reference series.

use gm_bench::{DataBank, Env};
use gm_datasets::DatasetId;
use gm_model::graphson;

fn main() {
    let env = Env::from_env();
    let bank = DataBank::generate(&env);
    // The paper splits the figure: (a) Frb-O/M/L, (b) Frb-S/LDBC/MiCo.
    let panels: [(&str, &[DatasetId]); 2] = [
        (
            "Figure 1(a)",
            &[DatasetId::FrbO, DatasetId::FrbM, DatasetId::FrbL],
        ),
        (
            "Figure 1(b)",
            &[DatasetId::FrbS, DatasetId::Ldbc, DatasetId::Mico],
        ),
    ];
    for (panel, ids) in panels {
        println!("\n=== {panel} — space occupancy (KiB) ===");
        print!("{:<14}", "engine");
        for id in ids {
            print!(" | {:>12}", id.name());
        }
        println!();
        println!("{}", "-".repeat(14 + ids.len() * 15));
        for kind in &env.engines {
            print!("{:<14}", kind.name());
            for id in ids {
                let data = bank.get(*id);
                let mut db = kind.make();
                db.bulk_load(data, &gm_model::api::LoadOptions::default())
                    .expect("load");
                print!(" | {:>12.1}", db.space().total() as f64 / 1024.0);
            }
            println!();
        }
        print!("{:<14}", "raw json");
        for id in ids {
            print!(
                " | {:>12.1}",
                graphson::raw_json_bytes(bank.get(*id)) as f64 / 1024.0
            );
        }
        println!();
    }
    println!(
        "\nExpected shape (paper): columnar smallest on Frb (delta encoding);\n\
         triple ≈ 3× everyone (three B+Trees + fixed-extent journal);\n\
         cluster competitive on ldbc (value dictionary) but penalized on\n\
         Frb-S (per-label cluster metadata)."
    );
}
