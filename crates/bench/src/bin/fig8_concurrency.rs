//! Figure 8 (beyond the paper): multi-client scalability sweep, plus an
//! **overload sweep** that makes the figure's overload region meaningful.
//!
//! The paper measures everything single-threaded; this binary sweeps worker
//! threads (default 1 → 2 → 4 → 8) across every engine under test and two
//! workload mixes, reporting throughput, speedup over one thread, and the
//! p50/p95/p99/max latency tail — through the same `core::report` /
//! `core::summary` machinery as the paper's figures.
//!
//! After the closed-loop sweep, each (engine, mix) pair is driven **open
//! loop** at 0.5×/1×/2×/4× of its measured closed-loop capacity with a
//! bounded arrival backlog: arrivals that slip further behind schedule than
//! the lateness bound are shed (counted, never executed), so the ≥1× rows
//! terminate in bounded time and report offered vs achieved rate plus a shed
//! column instead of queueing forever.
//!
//! Extra environment variables on top of the `GM_*` set (see `gm_bench`):
//!
//! | var | default | meaning |
//! |---|---|---|
//! | `GM_THREADS` | `1,2,4,8` | thread counts to sweep |
//! | `GM_MIXES` | `read-heavy,mixed` | mix names to sweep |
//! | `GM_WL_OPS` | `400` | ops per worker |
//! | `GM_OVERLOAD_FACTORS` | `0.5,1,2,4` | open-loop rates as multiples of measured capacity (empty disables the overload sweep) |
//! | `GM_MAX_LATENESS_MS` | `50` | backlog bound: arrivals later than this are shed |
//!
//! `--smoke` replaces the environment-driven configuration with a tiny fixed
//! one (tiny dataset, one engine, 2 threads, aggressive overload) so CI can
//! exercise shed accounting on every push in a few seconds.

use std::time::Duration;

use gm_bench::{config, Env};
use gm_core::report::{Report, RunMode};
use gm_core::summary::{self, ScalingRow};
use gm_datasets::{self as datasets, DatasetId, Scale};
use gm_workload::{run, MixKind, Pacing, WorkloadConfig};
use graphmark::registry::EngineKind;

struct Sweep {
    env: Env,
    threads: Vec<u32>,
    mixes: Vec<MixKind>,
    ops_per_worker: u64,
    overload_factors: Vec<f64>,
    max_lateness: Duration,
}

fn sweep_from_env() -> Sweep {
    Sweep {
        env: Env::from_env(),
        threads: config::var_list_u32("GM_THREADS", "1,2,4,8"),
        mixes: config::var_mixes("GM_MIXES", "read-heavy,mixed"),
        ops_per_worker: config::var_u64("GM_WL_OPS", 400),
        overload_factors: config::var_list_f64("GM_OVERLOAD_FACTORS", "0.5,1,2,4"),
        max_lateness: config::var_millis("GM_MAX_LATENESS_MS", 50),
    }
}

/// The fixed tiny configuration behind `--smoke`: one engine, 2 threads, an
/// aggressive overload sweep with a tight lateness bound, so shed accounting
/// is exercised end-to-end in seconds.
fn sweep_smoke() -> Sweep {
    let mut env = Env::from_env();
    env.scale = Scale::tiny();
    if std::env::var("GM_ENGINES").is_err() {
        env.engines = vec![EngineKind::LinkedV2];
    }
    Sweep {
        env,
        threads: vec![2],
        mixes: vec![MixKind::ReadHeavy],
        ops_per_worker: 1_000,
        overload_factors: vec![0.5, 4.0, 32.0],
        max_lateness: Duration::from_millis(1),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sweep = if smoke {
        sweep_smoke()
    } else {
        sweep_from_env()
    };
    if sweep.threads.is_empty() || sweep.mixes.is_empty() {
        eprintln!("[fig8] nothing to run: GM_THREADS or GM_MIXES left no valid entries");
        std::process::exit(2);
    }

    let data = datasets::generate(DatasetId::Yeast, sweep.env.scale, sweep.env.seed);
    eprintln!(
        "[fig8] dataset {} |V|={} |E|={}, {} engines × {:?} threads × {:?}{}",
        data.name,
        data.vertex_count(),
        data.edge_count(),
        sweep.env.engines.len(),
        sweep.threads,
        sweep.mixes.iter().map(|m| m.name()).collect::<Vec<_>>(),
        if smoke { " [smoke]" } else { "" }
    );

    let mut rows: Vec<ScalingRow> = Vec::new();
    let mut report = Report::default();
    let mut total_shed = 0u64;
    for kind in &sweep.env.engines {
        for mix in &sweep.mixes {
            // Closed-loop sweep: each thread count, measuring capacity.
            let mut capacity = 0.0f64;
            for &t in &sweep.threads {
                let cfg = WorkloadConfig {
                    mix: *mix,
                    threads: t,
                    ops_per_worker: sweep.ops_per_worker,
                    seed: sweep.env.seed,
                    op_timeout: sweep.env.timeout,
                    ..WorkloadConfig::default()
                };
                let factory = move || kind.make();
                match run(&factory, &data, &cfg) {
                    Ok(r) => {
                        eprintln!(
                            "[fig8]   {:<14} {:<11} t={:<2} {:>9.0} ops/s  p99 {}",
                            r.engine,
                            r.mix,
                            t,
                            r.throughput(),
                            gm_workload::format_nanos(r.hist.p99()),
                        );
                        capacity = capacity.max(r.throughput());
                        report.push(r.to_measurement());
                        rows.push(r.scaling_row());
                    }
                    Err(e) => {
                        eprintln!("[fig8]   {} {} t={t}: FAILED: {e}", kind.name(), mix.name())
                    }
                }
            }

            // Overload sweep: open loop at multiples of the measured
            // closed-loop capacity, with a bounded backlog so the >1× rows
            // shed instead of queueing without bound.
            if capacity <= 0.0 || sweep.overload_factors.is_empty() {
                continue;
            }
            let threads = sweep.threads.iter().copied().max().unwrap_or(1);
            for &factor in &sweep.overload_factors {
                let rate = capacity * factor;
                let cfg = WorkloadConfig {
                    mix: *mix,
                    threads,
                    ops_per_worker: sweep.ops_per_worker,
                    seed: sweep.env.seed,
                    op_timeout: sweep.env.timeout,
                    pacing: Pacing::open_bounded(rate, sweep.max_lateness),
                    ..WorkloadConfig::default()
                };
                let factory = move || kind.make();
                match run(&factory, &data, &cfg) {
                    Ok(r) => {
                        eprintln!(
                            "[fig8]   {:<14} {:<11} t={threads:<2} open @{factor:>4}x \
                             ({rate:>9.0}/s offered) {:>9.0} ops/s achieved, shed {} ({:.1}%), p99 {}",
                            r.engine,
                            r.mix,
                            r.throughput(),
                            r.shed(),
                            r.scaling_row().shed_fraction() * 100.0,
                            gm_workload::format_nanos(r.hist.p99()),
                        );
                        total_shed += r.shed();
                        report.push(r.to_measurement());
                        rows.push(r.scaling_row());
                    }
                    Err(e) => eprintln!(
                        "[fig8]   {} {} open @{factor}x: FAILED: {e}",
                        kind.name(),
                        mix.name()
                    ),
                }
            }
        }
    }

    println!(
        "\n=== Figure 8 — concurrency scalability (dataset {}) ===",
        data.name
    );
    print!("{}", summary::render_scaling(&rows));
    println!("\n--- run durations via core::report ---");
    print!("{}", report.render_matrix(RunMode::Batch));
    println!("\n--- csv ---");
    print!("{}", summary::scaling_to_csv(&rows));

    if smoke {
        // The smoke run exists to exercise shed accounting: at up to 32×
        // measured capacity with a 1 ms bound, a zero shed count means
        // backpressure never engaged — fail loudly so CI catches a
        // regression.
        if total_shed == 0 {
            eprintln!("[fig8] smoke: overload sweep shed 0 ops — backpressure did not engage");
            std::process::exit(1);
        }
        eprintln!("[fig8] smoke: overload sweep shed {total_shed} ops — backpressure engaged");
    }
}
