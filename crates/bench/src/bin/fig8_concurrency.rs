//! Figure 8 (beyond the paper): multi-client scalability sweep.
//!
//! The paper measures everything single-threaded; this binary sweeps worker
//! threads (default 1 → 2 → 4 → 8) across every engine under test and two
//! workload mixes, reporting throughput, speedup over one thread, and the
//! p50/p95/p99/max latency tail — through the same `core::report` /
//! `core::summary` machinery as the paper's figures.
//!
//! Extra environment variables on top of the `GM_*` set (see `gm_bench`):
//!
//! | var | default | meaning |
//! |---|---|---|
//! | `GM_THREADS` | `1,2,4,8` | thread counts to sweep |
//! | `GM_MIXES` | `read-heavy,mixed` | mix names to sweep |
//! | `GM_WL_OPS` | `400` | ops per worker |

use gm_bench::Env;
use gm_core::report::{Report, RunMode};
use gm_core::summary;
use gm_datasets::{self as datasets, DatasetId};
use gm_workload::{run, MixKind, WorkloadConfig};

fn main() {
    let env = Env::from_env();
    let threads: Vec<u32> = std::env::var("GM_THREADS")
        .unwrap_or_else(|_| "1,2,4,8".into())
        .split(',')
        .filter_map(|t| match t.trim().parse() {
            Ok(0) | Err(_) => {
                eprintln!("[fig8] ignoring GM_THREADS entry {t:?} (want a positive integer)");
                None
            }
            Ok(n) => Some(n),
        })
        .collect();
    let mixes: Vec<MixKind> = std::env::var("GM_MIXES")
        .unwrap_or_else(|_| "read-heavy,mixed".into())
        .split(',')
        .filter_map(|m| {
            let kind = MixKind::parse(m.trim());
            if kind.is_none() {
                let known: Vec<&str> = MixKind::ALL.iter().map(|k| k.name()).collect();
                eprintln!("[fig8] ignoring unknown GM_MIXES entry {m:?} (known: {known:?})");
            }
            kind
        })
        .collect();
    let ops_per_worker: u64 = std::env::var("GM_WL_OPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    if threads.is_empty() || mixes.is_empty() {
        eprintln!("[fig8] nothing to run: GM_THREADS or GM_MIXES left no valid entries");
        std::process::exit(2);
    }

    let data = datasets::generate(DatasetId::Yeast, env.scale, env.seed);
    eprintln!(
        "[fig8] dataset {} |V|={} |E|={}, {} engines × {:?} threads × {:?}",
        data.name,
        data.vertex_count(),
        data.edge_count(),
        env.engines.len(),
        threads,
        mixes.iter().map(|m| m.name()).collect::<Vec<_>>()
    );

    let mut rows = Vec::new();
    let mut report = Report::default();
    for kind in &env.engines {
        for mix in &mixes {
            for &t in &threads {
                let cfg = WorkloadConfig {
                    mix: *mix,
                    threads: t,
                    ops_per_worker,
                    seed: env.seed,
                    op_timeout: env.timeout,
                    ..WorkloadConfig::default()
                };
                let factory = move || kind.make();
                match run(&factory, &data, &cfg) {
                    Ok(r) => {
                        eprintln!(
                            "[fig8]   {:<14} {:<11} t={:<2} {:>9.0} ops/s  p99 {}",
                            r.engine,
                            r.mix,
                            t,
                            r.throughput(),
                            gm_workload::format_nanos(r.hist.p99()),
                        );
                        report.push(r.to_measurement());
                        rows.push(r.scaling_row());
                    }
                    Err(e) => {
                        eprintln!("[fig8]   {} {} t={t}: FAILED: {e}", kind.name(), mix.name())
                    }
                }
            }
        }
    }

    println!(
        "\n=== Figure 8 — concurrency scalability (dataset {}) ===",
        data.name
    );
    print!("{}", summary::render_scaling(&rows));
    println!("\n--- run durations via core::report ---");
    print!("{}", report.render_matrix(RunMode::Batch));
    println!("\n--- csv ---");
    print!("{}", summary::scaling_to_csv(&rows));
}
