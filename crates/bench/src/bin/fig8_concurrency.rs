//! Figure 8 (beyond the paper): multi-client scalability sweep, plus an
//! **overload sweep** and a **locked-vs-snapshot isolation comparison**.
//!
//! The paper measures everything single-threaded; this binary sweeps worker
//! threads (default 1 → 2 → 4 → 8) across every engine under test and two
//! workload mixes, reporting throughput, speedup over one thread, and the
//! p50/p95/p99/max latency tail — through the same `core::report` /
//! `core::summary` machinery as the paper's figures.
//!
//! Each (engine, mix, threads) cell runs under **both read paths** unless
//! `GM_SNAPSHOT_MODE=off`:
//!
//! * `locked` — the original shared-`RwLock` contract (scans block writers,
//!   write-heavy mixes collapse to one effective writer);
//! * `snapshot-cow` / `snapshot-native` — reads pin immutable gm-mvcc
//!   epochs and run lock-free, so the isolation cost (and the read-
//!   throughput scaling it buys under write-heavy mixes) is itself a
//!   measured microbenchmark, rendered as adjacent sections of the scaling
//!   table and distinct `isolation` values in the CSV.
//!
//! After the closed-loop sweep, each (engine, mix) pair is driven **open
//! loop** at 0.5×/1×/2×/4× of its measured closed-loop capacity with a
//! bounded arrival backlog: arrivals that slip further behind schedule than
//! the lateness bound are shed (counted, never executed), so the ≥1× rows
//! terminate in bounded time and report offered vs achieved rate plus a shed
//! column instead of queueing forever.
//!
//! Extra environment variables on top of the `GM_*` set (see `gm_bench`):
//!
//! | var | default | meaning |
//! |---|---|---|
//! | `GM_THREADS` | `1,2,4,8` | thread counts to sweep |
//! | `GM_MIXES` | `read-heavy,mixed` | mix names to sweep |
//! | `GM_WL_OPS` | `400` | ops per worker |
//! | `GM_OVERLOAD_FACTORS` | `0.5,1,2,4` | open-loop rates as multiples of measured capacity (empty disables the overload sweep) |
//! | `GM_MAX_LATENESS_MS` | `50` | backlog bound: arrivals later than this are shed |
//! | `GM_SNAPSHOT_MODE` | `cow` | `off` / `cow` / `native` snapshot read path |
//!
//! `--smoke` replaces the environment-driven configuration with a tiny fixed
//! one (tiny dataset, one engine, 2 threads) so CI can exercise the binary
//! on every push in a few seconds. Two smoke personalities:
//!
//! * `GM_SNAPSHOT_MODE` unset/`off` — the overload smoke: fails if the
//!   aggressive open-loop sweep never sheds;
//! * `GM_SNAPSHOT_MODE=cow|native` — the isolation smoke: runs the same
//!   read-only workload under locked and snapshot reads and **fails if the
//!   two disagree on any per-op result count**, then checks that snapshot
//!   reads observed zero epoch skew.

use std::time::Duration;

use gm_bench::{config, Env};
use gm_core::report::{Report, RunMode};
use gm_core::summary::{self, ScalingRow};
use gm_datasets::{self as datasets, DatasetId, Scale};
use gm_obs::trace;
use gm_workload::{run, run_snapshot, MixKind, Pacing, WorkloadConfig};
use graphmark::mvcc::{SnapshotMode, SnapshotSource};
use graphmark::registry::EngineKind;

struct Sweep {
    env: Env,
    threads: Vec<u32>,
    mixes: Vec<MixKind>,
    ops_per_worker: u64,
    overload_factors: Vec<f64>,
    max_lateness: Duration,
    snapshot: Option<SnapshotMode>,
}

fn sweep_from_env() -> Sweep {
    Sweep {
        env: Env::from_env(),
        threads: config::var_list_u32("GM_THREADS", "1,2,4,8"),
        mixes: config::var_mixes("GM_MIXES", "read-heavy,mixed"),
        ops_per_worker: config::var_u64("GM_WL_OPS", 400),
        overload_factors: config::var_list_f64("GM_OVERLOAD_FACTORS", "0.5,1,2,4"),
        max_lateness: config::var_millis("GM_MAX_LATENESS_MS", 50),
        snapshot: config::var_snapshot_mode(Some(SnapshotMode::Cow)),
    }
}

/// The fixed tiny configuration behind `--smoke`: one engine, 2 threads.
/// With snapshots off it keeps the aggressive overload sweep (shed
/// accounting must engage); with snapshots on it swaps the overload sweep
/// for the locked-vs-snapshot consistency check, so each CI step stays
/// focused and fast.
fn sweep_smoke() -> Sweep {
    let mut env = Env::from_env();
    env.scale = Scale::tiny();
    if std::env::var("GM_ENGINES").is_err() {
        env.engines = vec![EngineKind::LinkedV2];
    }
    let snapshot = config::var_snapshot_mode(None);
    Sweep {
        env,
        threads: if snapshot.is_some() {
            vec![2, 4]
        } else {
            vec![2]
        },
        mixes: if snapshot.is_some() {
            vec![MixKind::WriteHeavy]
        } else {
            vec![MixKind::ReadHeavy]
        },
        ops_per_worker: if snapshot.is_some() { 400 } else { 1_000 },
        overload_factors: if snapshot.is_some() {
            Vec::new()
        } else {
            vec![0.5, 4.0, 32.0]
        },
        max_lateness: Duration::from_millis(1),
        snapshot,
    }
}

/// Report how many of the sweep's `p99_exemplar` ids resolve against the
/// flight recorder, and fail a smoke run on any dangling id: the driver
/// promises it only stamps an exemplar whose record landed in the ring.
fn check_exemplars(rows: &[ScalingRow], smoke: bool) {
    if !trace::enabled() {
        return;
    }
    let ring = trace::global_ring();
    let stamped: Vec<u64> = rows
        .iter()
        .map(|r| r.p99_exemplar)
        .filter(|&id| id != 0)
        .collect();
    let dangling = stamped
        .iter()
        .filter(|&&id| ring.find(id).is_none())
        .count();
    eprintln!(
        "[fig8] trace: {}/{} p99 exemplars resolve in the flight recorder",
        stamped.len() - dangling,
        stamped.len()
    );
    if smoke && (dangling > 0 || stamped.is_empty()) {
        eprintln!(
            "[fig8] smoke FAILED: {dangling} dangling p99 exemplars of {} stamped",
            stamped.len()
        );
        std::process::exit(1);
    }
}

fn main() {
    config::apply_obs_mode();
    config::apply_trace_mode();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sweep = if smoke {
        sweep_smoke()
    } else {
        sweep_from_env()
    };
    if sweep.threads.is_empty() || sweep.mixes.is_empty() {
        eprintln!("[fig8] nothing to run: GM_THREADS or GM_MIXES left no valid entries");
        std::process::exit(2);
    }

    let data = datasets::generate(DatasetId::Yeast, sweep.env.scale, sweep.env.seed);
    eprintln!(
        "[fig8] dataset {} |V|={} |E|={}, {} engines × {:?} threads × {:?}, snapshot mode {}{}",
        data.name,
        data.vertex_count(),
        data.edge_count(),
        sweep.env.engines.len(),
        sweep.threads,
        sweep.mixes.iter().map(|m| m.name()).collect::<Vec<_>>(),
        sweep.snapshot.map(|m| m.name()).unwrap_or("off"),
        if smoke { " [smoke]" } else { "" }
    );

    let mut rows: Vec<ScalingRow> = Vec::new();
    let mut report = Report::default();
    let mut total_shed = 0u64;
    let mut total_skew = 0u64;
    for kind in &sweep.env.engines {
        for mix in &sweep.mixes {
            // Closed-loop sweep: each thread count, measuring capacity —
            // under the locked read path and (unless off) under snapshots,
            // so the isolation cost is itself a measured row pair.
            let mut capacity = 0.0f64;
            for &t in &sweep.threads {
                let cfg = WorkloadConfig {
                    mix: *mix,
                    threads: t,
                    ops_per_worker: sweep.ops_per_worker,
                    seed: sweep.env.seed,
                    op_timeout: sweep.env.timeout,
                    ..WorkloadConfig::default()
                };
                let factory = move || kind.make();
                match run(&factory, &data, &cfg) {
                    Ok(r) => {
                        eprintln!(
                            "[fig8]   {:<14} {:<11} t={:<2} {:<16} {:>9.0} ops/s  p99 {}",
                            r.engine,
                            r.mix,
                            t,
                            r.isolation,
                            r.throughput(),
                            gm_workload::format_nanos(r.hist.p99()),
                        );
                        capacity = capacity.max(r.throughput());
                        report.push(r.to_measurement());
                        rows.push(r.scaling_row());
                    }
                    Err(e) => {
                        eprintln!("[fig8]   {} {} t={t}: FAILED: {e}", kind.name(), mix.name())
                    }
                }
                if let Some(mode) = sweep.snapshot {
                    let kind = *kind;
                    let src_factory =
                        move || -> Box<dyn SnapshotSource> { kind.make_snapshot_source(mode) };
                    match run_snapshot(&src_factory, &data, &cfg) {
                        Ok(r) => {
                            eprintln!(
                                "[fig8]   {:<14} {:<11} t={:<2} {:<16} {:>9.0} ops/s  p99 {}",
                                r.engine,
                                r.mix,
                                t,
                                r.isolation,
                                r.throughput(),
                                gm_workload::format_nanos(r.hist.p99()),
                            );
                            total_skew += r.epoch_skew();
                            report.push(r.to_measurement());
                            rows.push(r.scaling_row());
                        }
                        Err(e) => eprintln!(
                            "[fig8]   {} {} t={t} snapshot: FAILED: {e}",
                            kind.name(),
                            mix.name()
                        ),
                    }
                }
            }

            // Overload sweep: open loop at multiples of the measured
            // closed-loop capacity, with a bounded backlog so the >1× rows
            // shed instead of queueing without bound.
            if capacity <= 0.0 || sweep.overload_factors.is_empty() {
                continue;
            }
            let threads = sweep.threads.iter().copied().max().unwrap_or(1);
            for &factor in &sweep.overload_factors {
                let rate = capacity * factor;
                let cfg = WorkloadConfig {
                    mix: *mix,
                    threads,
                    ops_per_worker: sweep.ops_per_worker,
                    seed: sweep.env.seed,
                    op_timeout: sweep.env.timeout,
                    pacing: Pacing::open_bounded(rate, sweep.max_lateness),
                    ..WorkloadConfig::default()
                };
                let factory = move || kind.make();
                match run(&factory, &data, &cfg) {
                    Ok(r) => {
                        eprintln!(
                            "[fig8]   {:<14} {:<11} t={threads:<2} open @{factor:>4}x \
                             ({rate:>9.0}/s offered) {:>9.0} ops/s achieved, shed {} ({:.1}%), p99 {}",
                            r.engine,
                            r.mix,
                            r.throughput(),
                            r.shed(),
                            r.scaling_row().shed_fraction() * 100.0,
                            gm_workload::format_nanos(r.hist.p99()),
                        );
                        total_shed += r.shed();
                        report.push(r.to_measurement());
                        rows.push(r.scaling_row());
                    }
                    Err(e) => eprintln!(
                        "[fig8]   {} {} open @{factor}x: FAILED: {e}",
                        kind.name(),
                        mix.name()
                    ),
                }
            }
        }
    }

    println!(
        "\n=== Figure 8 — concurrency scalability (dataset {}) ===",
        data.name
    );
    print!("{}", summary::render_scaling(&rows));
    println!("\n--- run durations via core::report ---");
    print!("{}", report.render_matrix(RunMode::Batch));
    println!("\n--- csv ---");
    print!("{}", summary::scaling_to_csv(&rows));

    check_exemplars(&rows, smoke);
    if let Some(base) = config::trace_dump_path() {
        match trace::dump_to(&base, &trace::global_ring().snapshot()) {
            Ok(()) => eprintln!("[fig8] traces dumped to {base}.txt and {base}.json"),
            Err(e) => eprintln!("[fig8] GM_TRACE_DUMP to {base} failed: {e}"),
        }
    }

    if smoke {
        match sweep.snapshot {
            // The overload smoke exercises shed accounting: at up to 32×
            // measured capacity with a 1 ms bound, a zero shed count means
            // backpressure never engaged — fail loudly.
            None => {
                if total_shed == 0 {
                    eprintln!(
                        "[fig8] smoke: overload sweep shed 0 ops — backpressure did not engage"
                    );
                    std::process::exit(1);
                }
                eprintln!(
                    "[fig8] smoke: overload sweep shed {total_shed} ops — backpressure engaged"
                );
            }
            // The isolation smoke: snapshot reads and locked reads must
            // agree on every per-op result count of a read-only workload
            // (the two read paths may differ in cost, never in answers),
            // and in-process snapshot epochs must never skew.
            Some(mode) => {
                let kind = sweep.env.engines[0];
                let cfg = WorkloadConfig {
                    mix: MixKind::ReadOnly,
                    threads: 2,
                    ops_per_worker: 200,
                    seed: sweep.env.seed,
                    op_timeout: sweep.env.timeout,
                    record_cardinalities: true,
                    ..WorkloadConfig::default()
                };
                let factory = move || kind.make();
                let locked = run(&factory, &data, &cfg).expect("locked smoke run");
                let src_factory =
                    move || -> Box<dyn SnapshotSource> { kind.make_snapshot_source(mode) };
                let snap = run_snapshot(&src_factory, &data, &cfg).expect("snapshot smoke run");
                if locked.cardinality_trace() != snap.cardinality_trace() {
                    eprintln!(
                        "[fig8] smoke: snapshot ({}) and locked reads DISAGREE on result \
                         counts for {} — isolation must never change answers",
                        mode.name(),
                        kind.name()
                    );
                    std::process::exit(1);
                }
                if snap.epoch_skew() + total_skew > 0 {
                    eprintln!(
                        "[fig8] smoke: in-process snapshot runs observed epoch skew \
                         ({} + {total_skew}) — epochs must be monotone",
                        snap.epoch_skew()
                    );
                    std::process::exit(1);
                }
                eprintln!(
                    "[fig8] smoke: snapshot-{} and locked reads agree on {} per-op counts, \
                     zero epoch skew",
                    mode.name(),
                    locked.cardinality_trace().len()
                );
            }
        }
    }
}
