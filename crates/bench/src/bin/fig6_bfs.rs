//! Figure 6 — breadth-first traversal (Q32) at depths 2, 3, 4, 5.

use gm_bench::{print_block, run_queries, DataBank, Env};
use gm_core::catalog::QueryId;
use gm_core::report::RunMode;
use gm_core::QueryInstance;

fn main() {
    let env = Env::from_env();
    let bank = DataBank::generate(&env);
    let instances: Vec<QueryInstance> = (2..=5u8)
        .map(|d| QueryInstance {
            id: QueryId::Q32,
            depth: Some(d),
            k: None,
        })
        .collect();
    for (id, data) in bank.freebase() {
        let rep = run_queries(&env, data, &instances, &[RunMode::Isolation], false);
        print_block(
            "Figure 6 — BFS Q32 at depths 2–5",
            id,
            &rep,
            RunMode::Isolation,
        );
    }
    println!(
        "\nExpected shape (paper): linked scales best across depths; cluster\n\
         and columnar(v10) second at depth 2 with cluster edging ahead at\n\
         depth ≥ 3; relational and bitmap slowest."
    );
}
