//! Table 4 — the evaluation summary matrix, derived from a full run over
//! the Freebase samples.

use gm_bench::{DataBank, Env};
use gm_core::params::Workload;
use gm_core::report::{Report, RunMode};
use gm_core::runner::Runner;
use gm_core::summary;

fn main() {
    let env = Env::from_env();
    let bank = DataBank::generate(&env);
    let mut report = Report::default();
    for (id, data) in bank.freebase() {
        let workload = Workload::choose(data, env.seed, (env.batch as usize).max(16));
        for kind in &env.engines {
            eprintln!("[table4] {} on {} …", kind.name(), id.name());
            let factory = move || kind.make();
            let mut runner = Runner::new(&factory, data, &workload, env.config());
            report.extend(runner.run_suite(&[RunMode::Isolation]));
        }
    }
    println!("\nTable 4 — evaluation summary (✓ near-best · ⚠ slow/problems · blank mid):\n");
    println!("{}", summary::derive(&report).render());
}
