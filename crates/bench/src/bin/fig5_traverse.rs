//! Figure 5 — traversals: (a) local neighborhoods Q22–Q27, (b) whole-graph
//! degree filters Q28–Q31.

use gm_bench::{instances_for, print_block, run_queries, DataBank, Env};
use gm_core::report::RunMode;

fn main() {
    let env = Env::from_env();
    let bank = DataBank::generate(&env);
    for (id, data) in bank.freebase() {
        let rep = run_queries(
            &env,
            data,
            &instances_for(22..=27),
            &[RunMode::Isolation],
            false,
        );
        print_block(
            "Figure 5(a) — neighborhood Q22–Q27",
            id,
            &rep,
            RunMode::Isolation,
        );
        let rep = run_queries(
            &env,
            data,
            &instances_for(28..=31),
            &[RunMode::Isolation],
            false,
        );
        print_block(
            "Figure 5(b) — degree filters Q28–Q31",
            id,
            &rep,
            RunMode::Isolation,
        );
    }
    println!(
        "\nExpected shape (paper): cluster/linked/document lead Q22–Q27;\n\
         relational slowest unless label-filtered (Q24); linked best on\n\
         Q28–Q31 with bitmap failing on the larger Freebase samples."
    );
}
