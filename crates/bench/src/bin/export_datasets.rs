//! Export every benchmark dataset as a GraphSON file — the interchange
//! format the paper's suite distributes its datasets in (§5, Test Suite:
//! "to perform the tests on a new dataset, one only needs to place the
//! dataset in GraphSON file (plain JSON) in the dedicated directory").
//!
//! ```sh
//! GM_SCALE=small cargo run --release -p gm-bench --bin export_datasets -- ./data
//! ```

use gm_bench::{config, DataBank, Env};
use gm_model::graphson;

fn main() {
    let env = Env::from_env();
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| config::var_str("GM_EXPORT_DIR", "./data"));
    let dir = std::path::Path::new(&out_dir);
    std::fs::create_dir_all(dir).expect("create output directory");

    let bank = DataBank::generate(&env);
    for (id, data) in bank.all() {
        let path = dir.join(format!("{}-{}.graphson.json", id.name(), env.scale.name));
        graphson::write_file(data, &path).expect("write graphson");
        println!(
            "wrote {} ({} vertices, {} edges, {} bytes)",
            path.display(),
            data.vertex_count(),
            data.edge_count(),
            std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0)
        );
    }
}
