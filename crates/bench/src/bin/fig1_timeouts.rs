//! Figure 1 (c) — number of non-completions (timeouts/failures) per engine
//! in Interactive (isolation) and Batch modes over the full suite on the
//! Freebase samples.

use gm_bench::{DataBank, Env};
use gm_core::params::Workload;
use gm_core::report::{Report, RunMode};
use gm_core::runner::Runner;

fn main() {
    let env = Env::from_env();
    let bank = DataBank::generate(&env);
    let mut report = Report::default();
    for (id, data) in bank.freebase() {
        let workload = Workload::choose(data, env.seed, (env.batch as usize).max(16));
        for kind in &env.engines {
            eprintln!("[fig1c] {} on {} …", kind.name(), id.name());
            let factory = move || kind.make();
            let mut runner = Runner::new(&factory, data, &workload, env.config());
            report.extend(runner.run_suite(&[RunMode::Isolation, RunMode::Batch]));
        }
    }
    println!("\n=== Figure 1(c) — non-completions over the full suite (Frb-S/O/M/L) ===");
    println!("{:<14} | {:>12} | {:>12}", "engine", "interactive", "batch");
    println!("{}", "-".repeat(45));
    let single = report.timeouts_by_engine(RunMode::Isolation);
    let batch = report.timeouts_by_engine(RunMode::Batch);
    for kind in &env.engines {
        let name = kind.name();
        println!(
            "{:<14} | {:>12} | {:>12}",
            name,
            single.get(name).copied().unwrap_or(0),
            batch.get(name).copied().unwrap_or(0)
        );
    }
    println!(
        "\nExpected shape (paper): linked completes everything; triple collects\n\
         the most non-completions; bitmap fails the degree filters on the\n\
         larger Freebase samples (resource exhaustion)."
    );
}
