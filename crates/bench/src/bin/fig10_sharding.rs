//! Figure 10 (beyond the paper): hash-partitioned sharding sweep — shards ×
//! threads × isolation, with per-shard lock-wait accounting.
//!
//! The fig8 concurrency sweep showed where a single engine-wide `RwLock`
//! stops scaling; this binary measures what per-partition locks buy.
//! For every engine under test and every workload mix it drives the same
//! deterministic workload through three concurrency regimes:
//!
//! * `locked` — the original single-`RwLock` engine (`LocalBackend`), the
//!   baseline every sharded row is read against;
//! * `sharded-locked` — a `gm-shard` composite of `N` engines, each behind
//!   its own lock: reads see one consistent cross-shard state, writes lock
//!   only the shard they land on;
//! * `snapshot-sharded-*` — one MVCC cell per shard (unless
//!   `GM_SNAPSHOT_MODE=off`): reads pin composite epochs (min over shard
//!   epochs), writers on different shards share no mutex at all.
//!
//! Every row carries the **lock-wait** column (nanoseconds ops spent
//! queueing on engine locks, measured through `gm_model::lockwait` at every
//! acquisition site): the single-lock vs per-partition-lock comparison is a
//! measured number, not a claim. Rendered through the same
//! `ScalingRow`/`render_scaling`/CSV machinery as fig8/fig9.
//!
//! Environment knobs on top of the `GM_*` set (see `gm_bench::config`):
//!
//! | var | default | meaning |
//! |---|---|---|
//! | `GM_SHARDS` | `1,2,4` | shard counts to sweep |
//! | `GM_THREADS` | `2,4` | worker-thread counts to sweep |
//! | `GM_MIXES` | `write-heavy,mixed` | workload mixes |
//! | `GM_WL_OPS` | `400` | ops per worker |
//! | `GM_SNAPSHOT_MODE` | `cow` | `off` / `cow` / `native` snapshot cells |
//! | `GM_FLEET` | `0` | spawn an N-server loopback fleet and add `@fleet` rows |
//! | `GM_FLEET_ADDRS` | (none) | drive an already-running fleet instead (shard order) |
//!
//! With `GM_FLEET=N` (or `GM_FLEET_ADDRS` pointing at running `gm-server
//! --shard-id i --fleet-size N` processes) every mix × thread point gains a
//! **`@fleet` row**: the same workload driven through `gm-net`'s fleet
//! coordinator — cross-process sharding over batched, pipelined
//! connections — so single-lock, in-process-sharded and fleet-sharded
//! regimes land in one table.
//!
//! `--smoke` replaces the environment-driven sweep with a fixed tiny
//! configuration (one engine, write-heavy, 4 workers, shards 1 vs 4) and
//! **fails if the 4-shard composite does not out-run the 1-shard one** on
//! write-heavy throughput — the scaling claim of the sharding PR, enforced
//! in CI. Each side takes the best of a few attempts so scheduler noise on
//! small CI boxes doesn't fail an honest win; on a runner with fewer than
//! 4 cores the throughput gate is reported but not enforced (4-way
//! parallel speedup is not a deterministic claim there). When a fleet is
//! configured, the smoke also gates the fleet contract: per-op results
//! identical to the in-process sharded replay, zero routing errors, fewer
//! wire round trips than ops, and a monotone fleet epoch.

use gm_bench::{config, Env};
use gm_core::summary::{self, ScalingRow};
use gm_datasets::{self as datasets, DatasetId, Scale};
use gm_net::{run_fleet, run_fleet_sequential, Fleet, Server, ServerHandle};
use gm_obs::trace;
use gm_workload::{run, run_snapshot, MixKind, RunReport, WorkloadConfig};
use graphmark::model::{Dataset, GdbResult, GraphDb};
use graphmark::mvcc::{SnapshotMode, SnapshotSource};
use graphmark::registry::EngineKind;
use graphmark::shard::{run_sharded, run_sharded_sequential};

struct Sweep {
    env: Env,
    shards: Vec<u32>,
    threads: Vec<u32>,
    mixes: Vec<MixKind>,
    ops_per_worker: u64,
    snapshot: Option<SnapshotMode>,
}

fn sweep_from_env() -> Sweep {
    Sweep {
        env: Env::from_env(),
        shards: config::var_list_u32("GM_SHARDS", "1,2,4"),
        threads: config::var_list_u32("GM_THREADS", "2,4"),
        mixes: config::var_mixes("GM_MIXES", "write-heavy,mixed"),
        ops_per_worker: config::var_u64("GM_WL_OPS", 400),
        snapshot: config::var_snapshot_mode(Some(SnapshotMode::Cow)),
    }
}

fn wl_config(mix: MixKind, threads: u32, sweep: &Sweep) -> WorkloadConfig {
    WorkloadConfig {
        mix,
        threads,
        ops_per_worker: sweep.ops_per_worker,
        seed: sweep.env.seed,
        op_timeout: sweep.env.timeout,
        ..WorkloadConfig::default()
    }
}

fn log_row(r: &RunReport) {
    eprintln!(
        "[fig10]   {:<20} {:<11} t={:<2} {:<18} {:>9.0} ops/s  lockw/op {}",
        r.engine,
        r.mix,
        r.threads,
        r.isolation,
        r.throughput(),
        gm_workload::format_nanos(r.scaling_row().lock_wait_per_op()),
    );
}

/// A fleet under test: shard servers this process spawned (empty when
/// `GM_FLEET_ADDRS` points at external ones) plus the connected
/// coordinator.
struct AttachedFleet {
    handles: Vec<ServerHandle>,
    fleet: Fleet,
}

impl AttachedFleet {
    fn shutdown(self) {
        for h in self.handles {
            h.shutdown();
        }
    }
}

/// Resolve the fleet knobs: `GM_FLEET_ADDRS` attaches to running servers
/// (shard order must match their announced identities); otherwise
/// `GM_FLEET=N` (N ≥ 2) spawns N identity-tagged loopback servers hosting
/// `kind`. `None` means no fleet was requested; a requested fleet that
/// cannot be attached is a hard error — a misconfigured gate must not
/// silently pass by skipping itself.
fn attach_fleet(kind: EngineKind) -> Option<AttachedFleet> {
    if let Ok(spec) = std::env::var("GM_FLEET_ADDRS") {
        let addrs: Vec<String> = spec
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        if !addrs.is_empty() {
            match Fleet::connect(addrs) {
                Ok(fleet) => {
                    return Some(AttachedFleet {
                        handles: Vec::new(),
                        fleet,
                    })
                }
                Err(e) => {
                    eprintln!("[fig10] GM_FLEET_ADDRS fleet attach FAILED: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
    let n: usize = std::env::var("GM_FLEET")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0);
    if n < 2 {
        return None;
    }
    let mut handles = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for s in 0..n {
        let spawned = Server::bind("127.0.0.1:0", Box::new(move || kind.make()))
            .map(|srv| srv.with_shard_identity(s as u32, n as u32))
            .and_then(Server::spawn);
        match spawned {
            Ok(h) => {
                addrs.push(h.addr().to_string());
                handles.push(h);
            }
            Err(e) => {
                eprintln!("[fig10] GM_FLEET={n}: shard server {s} spawn FAILED: {e}");
                std::process::exit(1);
            }
        }
    }
    match Fleet::connect(addrs) {
        Ok(fleet) => Some(AttachedFleet { handles, fleet }),
        Err(e) => {
            eprintln!("[fig10] GM_FLEET={n} fleet attach FAILED: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    config::apply_obs_mode();
    config::apply_trace_mode();
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let sweep = sweep_from_env();
    if sweep.shards.is_empty() || sweep.threads.is_empty() || sweep.mixes.is_empty() {
        eprintln!(
            "[fig10] nothing to run: GM_SHARDS, GM_THREADS or GM_MIXES left no valid entries"
        );
        std::process::exit(2);
    }

    let data = datasets::generate(DatasetId::Yeast, sweep.env.scale, sweep.env.seed);
    eprintln!(
        "[fig10] dataset {} |V|={} |E|={}, {} engines × shards {:?} × threads {:?} × {:?}, snapshot mode {}",
        data.name,
        data.vertex_count(),
        data.edge_count(),
        sweep.env.engines.len(),
        sweep.shards,
        sweep.threads,
        sweep.mixes.iter().map(|m| m.name()).collect::<Vec<_>>(),
        sweep.snapshot.map(|m| m.name()).unwrap_or("off"),
    );

    let mut rows: Vec<ScalingRow> = Vec::new();
    for kind in &sweep.env.engines {
        for mix in &sweep.mixes {
            for &t in &sweep.threads {
                let cfg = wl_config(*mix, t, &sweep);
                // Single-lock baseline: the unsharded engine behind one
                // RwLock — what every sharded row is read against.
                let factory = move || kind.make();
                match run(&factory, &data, &cfg) {
                    Ok(r) => {
                        log_row(&r);
                        rows.push(r.scaling_row());
                    }
                    Err(e) => eprintln!(
                        "[fig10]   {} {} t={t} baseline FAILED: {e}",
                        kind.name(),
                        mix.name()
                    ),
                }
                for &n in &sweep.shards {
                    let sharded_factory = move || -> Box<dyn GraphDb> { kind.make() };
                    match run_sharded(&sharded_factory, n as usize, &data, &cfg) {
                        Ok(r) => {
                            log_row(&r);
                            rows.push(r.scaling_row());
                        }
                        Err(e) => eprintln!(
                            "[fig10]   {} {} t={t} s={n} sharded FAILED: {e}",
                            kind.name(),
                            mix.name()
                        ),
                    }
                    if let Some(mode) = sweep.snapshot {
                        let kind = *kind;
                        let src_factory = move || -> Box<dyn SnapshotSource> {
                            Box::new(kind.make_sharded_source(n as usize, mode))
                        };
                        match run_snapshot(&src_factory, &data, &cfg) {
                            Ok(r) => {
                                log_row(&r);
                                rows.push(r.scaling_row());
                            }
                            Err(e) => eprintln!(
                                "[fig10]   {} {} t={t} s={n} snapshot FAILED: {e}",
                                kind.name(),
                                mix.name()
                            ),
                        }
                    }
                }
            }
        }
    }

    // @fleet rows: the same points through the cross-process coordinator.
    // External fleets host one fixed engine, so attach once; spawned
    // fleets get one per engine under test.
    let fleet_engines: &[EngineKind] = if std::env::var("GM_FLEET_ADDRS").is_ok() {
        &sweep.env.engines[..1.min(sweep.env.engines.len())]
    } else {
        &sweep.env.engines
    };
    for kind in fleet_engines {
        let Some(att) = attach_fleet(*kind) else {
            break; // no fleet requested
        };
        for mix in &sweep.mixes {
            for &t in &sweep.threads {
                let cfg = wl_config(*mix, t, &sweep);
                match run_fleet(&att.fleet, &data, &cfg) {
                    Ok(r) => {
                        log_row(&r);
                        rows.push(r.scaling_row());
                    }
                    Err(e) => eprintln!(
                        "[fig10]   @fleet {} {} t={t} FAILED: {e}",
                        att.fleet.name(),
                        mix.name()
                    ),
                }
            }
        }
        eprintln!(
            "[fig10] @fleet {}: {} wire frames, {} batched ops, {} routing errors",
            att.fleet.name(),
            att.fleet.round_trips(),
            att.fleet.batched_ops(),
            att.fleet.routing_errors(),
        );
        att.shutdown();
    }

    println!(
        "\n=== Figure 10 — sharded locks vs one big lock (dataset {}) ===",
        data.name
    );
    print!("{}", summary::render_scaling(&rows));
    println!("\n--- csv ---");
    print!("{}", summary::scaling_to_csv(&rows));

    if trace::enabled() {
        let ring = trace::global_ring();
        let stamped = rows.iter().filter(|r| r.p99_exemplar != 0).count();
        let resolved = rows
            .iter()
            .filter(|r| r.p99_exemplar != 0 && ring.find(r.p99_exemplar).is_some())
            .count();
        eprintln!(
            "[fig10] trace: {resolved}/{stamped} p99 exemplars resolve in the flight recorder"
        );
    }
    if let Some(base) = config::trace_dump_path() {
        match trace::dump_to(&base, &trace::global_ring().snapshot()) {
            Ok(()) => eprintln!("[fig10] traces dumped to {base}.txt and {base}.json"),
            Err(e) => eprintln!("[fig10] GM_TRACE_DUMP to {base} failed: {e}"),
        }
    }
}

/// The CI gate: on a tiny fixed configuration, a 4-shard write-heavy run
/// must out-run the 1-shard run of the *same composite machinery* (so the
/// comparison isolates the lock split, not the composite overhead) on at
/// least one engine.
///
/// The candidate list leads with the triple engine: its per-statement cost
/// (three B+Trees per write) is large enough that single-lock serialization
/// dominates scheduler noise, so the structural win shows reliably even on
/// a 2-core CI box. The linked engine's sub-µs ops are run too for the log,
/// but cache-line bouncing on tiny ops can mask the lock split there, which
/// is itself a finding worth seeing next to the triple rows.
fn smoke() {
    let env = Env::from_env();
    let candidates: Vec<EngineKind> = if std::env::var("GM_ENGINES").is_ok() {
        env.engines.clone()
    } else {
        vec![EngineKind::Triple, EngineKind::LinkedV2]
    };
    let data = datasets::generate(DatasetId::Yeast, Scale::tiny(), env.seed);
    let cfg = WorkloadConfig {
        mix: MixKind::WriteHeavy,
        threads: 4,
        ops_per_worker: config::var_u64("GM_WL_OPS", 3_000),
        seed: env.seed,
        op_timeout: env.timeout,
        ..WorkloadConfig::default()
    };
    eprintln!(
        "[fig10] smoke: write-heavy, 4 workers × {} ops, shards 1 vs 4, engines {:?} [smoke]",
        cfg.ops_per_worker,
        candidates.iter().map(|k| k.name()).collect::<Vec<_>>(),
    );

    // Best of three attempts per side: the gate is about structure (lock
    // splitting), and a single descheduled run must not fail an honest win.
    let attempt = |kind: EngineKind, shards: usize| -> GdbResult<(f64, u64)> {
        let factory = move || -> Box<dyn GraphDb> { kind.make() };
        let r = run_sharded(&factory, shards, &data, &cfg)?;
        log_row(&r);
        Ok((r.throughput(), r.scaling_row().lock_wait_per_op()))
    };
    let best = |kind: EngineKind, shards: usize| -> GdbResult<(f64, u64)> {
        let mut best = (0.0f64, u64::MAX);
        for _ in 0..3 {
            let (thr, lw) = attempt(kind, shards)?;
            if thr > best.0 {
                best = (thr, lw);
            }
        }
        Ok(best)
    };

    let mut scaled = false;
    for kind in &candidates {
        let ((thr1, lw1), (thr4, lw4)) = match (best(*kind, 1), best(*kind, 4)) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("[fig10] smoke: {} run FAILED: {e}", kind.name());
                std::process::exit(1);
            }
        };
        eprintln!(
            "[fig10] smoke: {:<14} 1 shard {thr1:>8.0} ops/s (lockw/op {:>7}) | \
             4 shards {thr4:>8.0} ops/s (lockw/op {:>7}) — {:.2}×",
            kind.name(),
            gm_workload::format_nanos(lw1),
            gm_workload::format_nanos(lw4),
            thr4 / thr1,
        );
        if thr4 > thr1 {
            scaled = true;
        }
    }
    if !scaled {
        // Minimum-core guard: 4 workers on fewer than 4 cores time-slice
        // one or two cores, so "4 shards out-run 1 shard" is not a
        // deterministic claim there — the gate logs instead of failing.
        // On ≥4 cores it stays a hard failure.
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cores < 4 {
            eprintln!(
                "[fig10] smoke: no 1→4-shard throughput win, but this is a {cores}-core \
                 runner — parallel speedup is not deterministic here, gate relaxed \
                 (the per-op lock-wait columns above still show the lock split)"
            );
        } else {
            eprintln!(
                "[fig10] smoke: no engine scaled write-heavy throughput from 1 → 4 shards — \
                 per-partition locks bought nothing"
            );
            std::process::exit(1);
        }
    } else {
        eprintln!("[fig10] smoke: per-partition locks beat the single lock (>1× on ≥1 engine)");
    }

    fleet_smoke(&env, &data);
}

/// The fleet contract gate, run when `GM_FLEET`/`GM_FLEET_ADDRS` is set: a
/// multi-process fleet must complete the write-heavy mix with per-op
/// results **identical** to the in-process sharded replay, zero routing
/// errors, fewer wire round trips than ops (batched dispatch), and a
/// monotone fleet epoch. Any violation exits non-zero.
fn fleet_smoke(env: &Env, data: &Dataset) {
    let kind = *env.engines.first().unwrap_or(&EngineKind::LinkedV2);
    let Some(att) = attach_fleet(kind) else {
        return; // no fleet requested: the plain smoke already passed
    };
    let fleet = &att.fleet;
    let shards = fleet.shard_count();
    // The local replay must drive the same engine the servers host; the
    // composite name carries it as "{engine}/f{N}".
    let inner = fleet.name().split("/f").next().unwrap_or("").to_string();
    let Some(kind) = EngineKind::parse(&inner) else {
        eprintln!("[fig10] @fleet smoke: servers host unknown engine {inner:?}");
        std::process::exit(1);
    };
    let cfg = WorkloadConfig {
        mix: MixKind::WriteHeavy,
        threads: 4,
        ops_per_worker: config::var_u64("GM_WL_OPS", 300).min(3_000),
        seed: env.seed,
        op_timeout: env.timeout,
        record_cardinalities: true,
        ..WorkloadConfig::default()
    };
    let total_ops = cfg.threads as u64 * cfg.ops_per_worker;
    eprintln!(
        "[fig10] @fleet smoke: {} — write-heavy, {} workers × {} ops, replay equality \
         vs in-process {shards}-shard composite",
        fleet.name(),
        cfg.threads,
        cfg.ops_per_worker,
    );

    let fail = |why: String| -> ! {
        eprintln!("[fig10] @fleet smoke FAILED: {why}");
        std::process::exit(1);
    };
    let epoch_before = fleet
        .epoch()
        .unwrap_or_else(|e| fail(format!("epoch probe: {e}")));
    let trips_before = fleet.round_trips();
    let remote =
        run_fleet_sequential(fleet, data, &cfg).unwrap_or_else(|e| fail(format!("fleet run: {e}")));
    let window = fleet.round_trips() - trips_before;
    log_row(&remote);

    let factory = move || -> Box<dyn GraphDb> { kind.make() };
    let local = run_sharded_sequential(&factory, shards, data, &cfg)
        .unwrap_or_else(|e| fail(format!("local sharded replay: {e}")));
    if remote.cardinality_trace() != local.cardinality_trace() {
        fail(format!(
            "per-op results diverge from the in-process sharded replay \
             ({} vs {} recorded cardinalities)",
            remote.cardinality_trace().len(),
            local.cardinality_trace().len()
        ));
    }
    if remote.errors() > 0 {
        fail(format!("{} op errors", remote.errors()));
    }
    if fleet.routing_errors() > 0 {
        fail(format!("{} routing errors", fleet.routing_errors()));
    }
    // Setup traffic is deterministic, so re-running it isolates the run's
    // own frames from the measured window.
    let before_setup = fleet.round_trips();
    fleet
        .setup(data, &cfg)
        .unwrap_or_else(|e| fail(format!("setup re-measure: {e}")));
    let run_frames = window.saturating_sub(fleet.round_trips() - before_setup);
    if run_frames >= total_ops {
        fail(format!(
            "batched dispatch spent {run_frames} wire frames on {total_ops} ops — \
             pipelining is not engaging"
        ));
    }
    let epoch_after = fleet
        .epoch()
        .unwrap_or_else(|e| fail(format!("epoch probe: {e}")));
    if epoch_after < epoch_before {
        fail(format!(
            "fleet epoch went backwards ({epoch_before} → {epoch_after})"
        ));
    }
    eprintln!(
        "[fig10] @fleet smoke: replay equality holds over {total_ops} ops; \
         {run_frames} wire frames (< {total_ops} ops), {} batched, 0 routing errors, \
         epoch {epoch_before} → {epoch_after}",
        fleet.batched_ops(),
    );
    att.shutdown();
}
