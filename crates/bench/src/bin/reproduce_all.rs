//! Run every experiment in sequence (the `EXPERIMENTS.md` regenerator).
//!
//! ```sh
//! GM_SCALE=small cargo run --release -p gm-bench --bin reproduce_all
//! ```
//!
//! Each experiment is also available as an individual binary; this driver
//! simply chains them in paper order by spawning the sibling binaries so
//! that their output is identical either way.

use std::process::Command;

use gm_bench::config;

const SEQUENCE: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "fig1_space",
    "fig3_load",
    "fig2_complex",
    "fig3_cud",
    "fig4_read",
    "fig5_traverse",
    "fig6_bfs",
    "fig7_paths",
    "fig1_timeouts",
    "fig7_overall",
    "table4",
    // Beyond the paper: the multi-client concurrency sweep (gm-workload),
    // the network-attached comparison (gm-net), and the sharded-locks
    // comparison (gm-shard).
    "fig8_concurrency",
    "fig9_network",
    "fig10_sharding",
];

fn main() {
    eprint!("{}", config::render_knobs());
    let self_path = std::env::current_exe().expect("current exe");
    let bin_dir = self_path.parent().expect("bin dir");
    for name in SEQUENCE {
        println!("\n########################################################");
        println!("###  {name}");
        println!("########################################################");
        let status = Command::new(bin_dir.join(name))
            .status()
            .unwrap_or_else(|e| panic!("failed to spawn {name}: {e}"));
        if !status.success() {
            eprintln!("experiment {name} failed with {status}");
            std::process::exit(1);
        }
    }
    println!("\nAll experiments completed.");
}
