//! Table 1 — features and characteristics of the tested systems.

use graphmark::registry::EngineKind;

fn main() {
    println!(
        "{:<14} | {:<20} | {:<22} | {:<50} | {:<14} | {:<9} | {:<5} | {:<5}",
        "engine", "emulates", "type", "storage", "edge traversal", "optimized", "async", "index"
    );
    println!("{}", "-".repeat(160));
    for kind in EngineKind::ALL {
        let f = kind.make().features();
        println!(
            "{:<14} | {:<20} | {:<22} | {:<50} | {:<14} | {:<9} | {:<5} | {:<5}",
            f.name,
            kind.emulates(),
            f.system_type,
            f.storage,
            f.edge_traversal,
            if f.optimized_adapter { "yes" } else { "no" },
            if f.async_writes { "yes" } else { "no" },
            if f.attribute_indexes { "yes" } else { "no" },
        );
    }
}
