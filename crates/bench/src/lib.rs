//! # gm-bench — the figure/table reproduction harness
//!
//! One binary per paper artifact (see DESIGN.md §4): `table1`, `table3`,
//! `fig1_space`, `fig1_timeouts`, `fig2_complex`, `fig3_load`, `fig3_cud`,
//! `fig4_read`, `fig5_traverse`, `fig6_bfs`, `fig7_paths`, `fig7_overall`,
//! `table4`, and `reproduce_all` — plus the beyond-the-paper sweeps
//! `fig8_concurrency` (multi-client scaling), `fig9_network`
//! (network-attached), and `fig10_sharding` (per-partition locks vs one
//! big lock). Criterion micro-benches live in `benches/`.
//!
//! All binaries honour the `GM_*` environment knobs; the typed parsers and
//! the authoritative registry (names, defaults, docs) live in [`config`] —
//! `reproduce_all` prints the full table. Core set: `GM_SCALE`
//! (`tiny`/`small`/`medium`/`a/b`), `GM_SEED`, `GM_TIMEOUT_SECS`,
//! `GM_BATCH`, `GM_ENGINES`; the concurrency/network/sharding sweeps add
//! `GM_THREADS`, `GM_MIXES`, `GM_WL_OPS`, `GM_OVERLOAD_FACTORS`,
//! `GM_MAX_LATENESS_MS`, `GM_SERVER_ADDR`, `GM_NET_CLIENTS`, and
//! `GM_SHARDS`. Observability is controlled by `GM_OBS` (metrics/phases)
//! and `GM_TRACE`/`GM_TRACE_CAP`/`GM_TRACE_DUMP` (the per-op trace flight
//! recorder behind the sweeps' `p99_exemplar` column; `trace_smoke` gates
//! its attribution and off-mode overhead).

use std::time::Duration;

use gm_core::params::Workload;
use gm_core::report::{Report, RunMode};
use gm_core::runner::{BenchConfig, Runner};
use gm_core::QueryInstance;
use gm_datasets::{self as datasets, DatasetId, Scale};
use gm_model::api::LoadOptions;
use gm_model::Dataset;
use graphmark::registry::EngineKind;

pub mod config;

/// Parsed harness environment.
#[derive(Debug, Clone)]
pub struct Env {
    /// Dataset scale.
    pub scale: Scale,
    /// Generator/workload seed.
    pub seed: u64,
    /// Per-query deadline.
    pub timeout: Duration,
    /// Batch length.
    pub batch: u32,
    /// Engines under test.
    pub engines: Vec<EngineKind>,
}

impl Env {
    /// Read the `GM_*` environment variables (see [`config`] for the typed
    /// parsers and the full knob registry).
    pub fn from_env() -> Env {
        Env {
            scale: config::var_scale(),
            seed: config::var_u64("GM_SEED", 42),
            timeout: config::var_secs("GM_TIMEOUT_SECS", 5),
            batch: config::var_u32("GM_BATCH", 10),
            engines: config::var_engines(),
        }
    }

    /// The bench config derived from this environment.
    pub fn config(&self) -> BenchConfig {
        BenchConfig {
            timeout: self.timeout,
            batch: self.batch,
            load: LoadOptions::default(),
            with_index: false,
        }
    }
}

/// All seven datasets, generated once (the Freebase family shares one
/// synthetic KB).
pub struct DataBank {
    datasets: Vec<(DatasetId, Dataset)>,
}

impl DataBank {
    /// Generate every dataset for the environment.
    pub fn generate(env: &Env) -> DataBank {
        eprintln!(
            "[gm-bench] generating datasets at scale '{}' (seed {}) …",
            env.scale.name, env.seed
        );
        let fam = datasets::freebase::generate_all(env.scale, env.seed);
        let datasets = vec![
            (
                DatasetId::Yeast,
                datasets::yeast::generate(env.scale, env.seed),
            ),
            (
                DatasetId::Mico,
                datasets::mico::generate(env.scale, env.seed),
            ),
            (DatasetId::FrbS, fam.frb_s),
            (DatasetId::FrbO, fam.frb_o),
            (DatasetId::FrbM, fam.frb_m),
            (DatasetId::FrbL, fam.frb_l),
            (
                DatasetId::Ldbc,
                datasets::ldbc::generate(env.scale, env.seed),
            ),
        ];
        for (id, d) in &datasets {
            eprintln!(
                "[gm-bench]   {:<6} |V|={:<8} |E|={:<8} |L|={}",
                id.name(),
                d.vertex_count(),
                d.edge_count(),
                d.edge_label_set().len()
            );
        }
        DataBank { datasets }
    }

    /// Get one dataset.
    pub fn get(&self, id: DatasetId) -> &Dataset {
        &self
            .datasets
            .iter()
            .find(|(i, _)| *i == id)
            .expect("dataset generated")
            .1
    }

    /// The four Freebase samples in size order (Frb-S, Frb-O, Frb-M, Frb-L),
    /// as the result figures sweep them.
    pub fn freebase(&self) -> Vec<(DatasetId, &Dataset)> {
        DatasetId::FREEBASE
            .iter()
            .map(|id| (*id, self.get(*id)))
            .collect()
    }

    /// All datasets.
    pub fn all(&self) -> impl Iterator<Item = (DatasetId, &Dataset)> {
        self.datasets.iter().map(|(id, d)| (*id, d))
    }
}

/// Run a list of query instances for every engine on one dataset.
pub fn run_queries(
    env: &Env,
    data: &Dataset,
    instances: &[QueryInstance],
    modes: &[RunMode],
    with_index: bool,
) -> Report {
    let workload = Workload::choose(data, env.seed, (env.batch as usize).max(16));
    let mut report = Report::default();
    for kind in &env.engines {
        let factory = move || kind.make();
        let mut runner = Runner::new(
            &factory,
            data,
            &workload,
            BenchConfig {
                with_index,
                ..env.config()
            },
        );
        for inst in instances {
            for &mode in modes {
                report.push(runner.run_instance(inst, mode));
            }
        }
    }
    report
}

/// Print a figure-style block: one matrix per dataset.
pub fn print_block(title: &str, dataset: DatasetId, report: &Report, mode: RunMode) {
    println!("\n=== {title} — dataset {} ({mode}) ===", dataset.name());
    print!("{}", report.render_matrix(mode));
}

/// Instances for a contiguous query range (inclusive numbers, e.g. 22..=27).
pub fn instances_for(numbers: std::ops::RangeInclusive<u8>) -> Vec<QueryInstance> {
    gm_core::catalog::QueryId::ALL
        .iter()
        .filter(|q| numbers.contains(&q.number()))
        .map(|q| QueryInstance::plain(*q))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults() {
        let env = Env::from_env();
        assert!(env.batch >= 1);
        assert!(!env.engines.is_empty());
    }

    #[test]
    fn instances_for_ranges() {
        let neigh = instances_for(22..=27);
        assert_eq!(neigh.len(), 6);
        assert_eq!(neigh[0].name(), "Q22");
        assert_eq!(neigh[5].name(), "Q27");
    }

    #[test]
    fn databank_tiny() {
        let env = Env {
            scale: Scale::tiny(),
            seed: 1,
            timeout: Duration::from_secs(5),
            batch: 2,
            engines: vec![EngineKind::LinkedV1],
        };
        let bank = DataBank::generate(&env);
        assert_eq!(bank.all().count(), 7);
        assert!(bank.get(DatasetId::Ldbc).vertex_count() > 0);
        assert_eq!(bank.freebase().len(), 4);
    }
}
