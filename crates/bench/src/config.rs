//! Typed `GM_*` environment configuration — the single home for every knob.
//!
//! The harness binaries used to parse environment variables ad hoc, each
//! with its own defaults and error handling; this module centralizes the
//! parsing (with uniform "ignored invalid entry" warnings) and registers
//! every knob in [`KNOBS`] so `reproduce_all` can print an accurate table
//! and new knobs cannot silently drift undocumented.

use std::time::Duration;

use gm_datasets::Scale;
use gm_workload::MixKind;
use graphmark::mvcc::SnapshotMode;
use graphmark::registry::EngineKind;

/// One documented environment knob.
#[derive(Debug, Clone, Copy)]
pub struct Knob {
    /// Variable name (`GM_…`).
    pub name: &'static str,
    /// Default value, as the user would type it.
    pub default: &'static str,
    /// What it does.
    pub doc: &'static str,
}

/// Every environment knob the harness binaries honour.
pub const KNOBS: &[Knob] = &[
    Knob {
        name: "GM_SCALE",
        default: "small",
        doc: "dataset scale preset (tiny/small/medium/a/b)",
    },
    Knob {
        name: "GM_SEED",
        default: "42",
        doc: "generator + workload seed",
    },
    Knob {
        name: "GM_TIMEOUT_SECS",
        default: "5",
        doc: "per-query deadline (the paper's 2h analog)",
    },
    Knob {
        name: "GM_BATCH",
        default: "10",
        doc: "batch length (the paper uses 10)",
    },
    Knob {
        name: "GM_ENGINES",
        default: "(all)",
        doc: "comma-separated engine-name filter",
    },
    Knob {
        name: "GM_THREADS",
        default: "1,2,4,8",
        doc: "fig8: thread counts to sweep",
    },
    Knob {
        name: "GM_MIXES",
        default: "read-heavy,mixed",
        doc: "fig8/fig9: workload mix names to sweep",
    },
    Knob {
        name: "GM_WL_OPS",
        default: "400",
        doc: "fig8/fig9: ops per worker",
    },
    Knob {
        name: "GM_OVERLOAD_FACTORS",
        default: "0.5,1,2,4",
        doc: "fig8: open-loop rates as multiples of measured capacity",
    },
    Knob {
        name: "GM_MAX_LATENESS_MS",
        default: "50",
        doc: "fig8/fig9: backlog bound; later arrivals are shed",
    },
    Knob {
        name: "GM_SNAPSHOT_MODE",
        default: "cow",
        doc: "fig8/fig10/gm-server: MVCC snapshot reads (off = locked only; cow = generic \
              copy-on-write; native = engine-native where available, cow fallback)",
    },
    Knob {
        name: "GM_SHARDS",
        default: "1,2,4",
        doc: "fig10: shard counts to sweep; gm-server: shard count to host (single value)",
    },
    Knob {
        name: "GM_SERVER_ADDR",
        default: "(spawn loopback)",
        doc: "fig9/gm-server: engine server address; fig9 spawns a loopback server per engine when unset",
    },
    Knob {
        name: "GM_FLEET",
        default: "0",
        doc: "fig10: spawn an N-process-equivalent loopback fleet (N shard servers, one per \
              identity) and run the @fleet rows against it (0 = off)",
    },
    Knob {
        name: "GM_FLEET_ADDRS",
        default: "(none)",
        doc: "fig10: comma-separated shard-server addresses, in shard order, of an \
              already-running fleet; overrides GM_FLEET (each server must announce the \
              matching --shard-id/--fleet-size identity)",
    },
    Knob {
        name: "GM_FLEET_BATCH",
        default: "16",
        doc: "fleet client: queued single-shard writes per connection before an ExecBatch \
              frame ships (reads flush their shard's queue first)",
    },
    Knob {
        name: "GM_NET_CLIENTS",
        default: "1,2,4",
        doc: "fig9: client-connection counts to sweep",
    },
    Knob {
        name: "GM_EXPORT_DIR",
        default: "./data",
        doc: "export_datasets: output directory (positional arg wins)",
    },
    Knob {
        name: "GM_OBS",
        default: "phases",
        doc: "observability mode (off = legacy lock-wait only; counters = gm-obs registry; \
              phases = counters + per-op phase spans in the fig8/fig9/fig10 tables and CSV)",
    },
    Knob {
        name: "GM_STATS_INTERVAL_MS",
        default: "0",
        doc: "gm-server: log a one-line registry stats snapshot every N ms (0 = off)",
    },
    Knob {
        name: "GM_TRACE",
        default: "tail",
        doc: "per-op trace flight recorder (off = record nothing, zero overhead; tail = \
              tail-biased retention via a moving latency threshold; all = record every op)",
    },
    Knob {
        name: "GM_TRACE_CAP",
        default: "4096",
        doc: "flight-recorder ring capacity in records (clamped to [16, 1M]; takes effect \
              before the first record)",
    },
    Knob {
        name: "GM_TRACE_DUMP",
        default: "(none)",
        doc: "base path to dump retained traces on exit (<base>.txt aligned table + \
              <base>.json Chrome trace_event)",
    },
    Knob {
        name: "GM_TXN_OPS",
        default: "8",
        doc: "fig11_transactions: writes buffered per transaction before commit \
              (0 = autocommit, no transactional rows)",
    },
    Knob {
        name: "GM_TXN_LOG_CAP",
        default: "1024",
        doc: "commit-log retention window for first-committer-wins validation; \
              transactions older than the window conflict conservatively",
    },
];

/// Render the knob table (for `reproduce_all`'s header).
pub fn render_knobs() -> String {
    let mut out = String::from("environment knobs (see gm-bench::config):\n");
    for k in KNOBS {
        out.push_str(&format!(
            "  {:<22} default {:<18} {}\n",
            k.name, k.default, k.doc
        ));
    }
    out
}

fn warn_ignored(var: &str, entry: &str, want: &str) {
    eprintln!("[gm-bench] ignoring {var} entry {entry:?} (want {want})");
}

/// A `u64` knob.
pub fn var_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Err(_) => default,
        Ok(s) => s.trim().parse().unwrap_or_else(|_| {
            warn_ignored(name, &s, "an unsigned integer");
            default
        }),
    }
}

/// A `u32` knob.
pub fn var_u32(name: &str, default: u32) -> u32 {
    match std::env::var(name) {
        Err(_) => default,
        Ok(s) => s.trim().parse().unwrap_or_else(|_| {
            warn_ignored(name, &s, "an unsigned integer");
            default
        }),
    }
}

/// A duration knob given in whole seconds.
pub fn var_secs(name: &str, default_secs: u64) -> Duration {
    Duration::from_secs(var_u64(name, default_secs))
}

/// A duration knob given in whole milliseconds.
pub fn var_millis(name: &str, default_millis: u64) -> Duration {
    Duration::from_millis(var_u64(name, default_millis))
}

/// A plain string knob.
pub fn var_str(name: &str, default: &str) -> String {
    std::env::var(name).unwrap_or_else(|_| default.to_string())
}

/// A comma-separated list of positive finite floats; invalid entries are
/// warned about and skipped, so a typo narrows the sweep instead of
/// silently replacing it with the default.
pub fn var_list_f64(name: &str, default: &str) -> Vec<f64> {
    std::env::var(name)
        .unwrap_or_else(|_| default.into())
        .split(',')
        .filter(|s| !s.trim().is_empty())
        .filter_map(|s| match s.trim().parse::<f64>() {
            Ok(f) if f > 0.0 && f.is_finite() => Some(f),
            _ => {
                warn_ignored(name, s, "a positive number");
                None
            }
        })
        .collect()
}

/// A comma-separated list of positive integers.
pub fn var_list_u32(name: &str, default: &str) -> Vec<u32> {
    std::env::var(name)
        .unwrap_or_else(|_| default.into())
        .split(',')
        .filter(|s| !s.trim().is_empty())
        .filter_map(|s| match s.trim().parse::<u32>() {
            Ok(n) if n > 0 => Some(n),
            _ => {
                warn_ignored(name, s, "a positive integer");
                None
            }
        })
        .collect()
}

/// A comma-separated list of workload mix names.
pub fn var_mixes(name: &str, default: &str) -> Vec<MixKind> {
    std::env::var(name)
        .unwrap_or_else(|_| default.into())
        .split(',')
        .filter(|s| !s.trim().is_empty())
        .filter_map(|s| {
            let kind = MixKind::parse(s.trim());
            if kind.is_none() {
                let known: Vec<&str> = MixKind::ALL.iter().map(|k| k.name()).collect();
                warn_ignored(name, s, &format!("one of {known:?}"));
            }
            kind
        })
        .collect()
}

/// The dataset scale preset (`GM_SCALE`).
pub fn var_scale() -> Scale {
    match std::env::var("GM_SCALE") {
        Err(_) => Scale::small(),
        Ok(s) => Scale::parse(&s).unwrap_or_else(|| {
            warn_ignored("GM_SCALE", &s, "tiny/small/medium/a/b");
            Scale::small()
        }),
    }
}

/// The MVCC snapshot mode (`GM_SNAPSHOT_MODE`): `None` disables snapshot
/// runs (`"off"`), `Some(mode)` selects the implementation. Unset defaults
/// to `default` (the knob registry documents `"cow"` for fig8).
pub fn var_snapshot_mode(default: Option<SnapshotMode>) -> Option<SnapshotMode> {
    snapshot_mode_from(std::env::var("GM_SNAPSHOT_MODE").ok().as_deref(), default)
}

/// Pure parsing core of [`var_snapshot_mode`] (testable without mutating
/// the process environment, which other tests in this binary share).
fn snapshot_mode_from(value: Option<&str>, default: Option<SnapshotMode>) -> Option<SnapshotMode> {
    match value {
        None => default,
        Some(s) if s.trim() == "off" => None,
        Some(s) => match SnapshotMode::parse(s) {
            Some(mode) => Some(mode),
            None => {
                warn_ignored("GM_SNAPSHOT_MODE", s, "off/cow/native");
                default
            }
        },
    }
}

/// Apply the observability mode knob (`GM_OBS`) to the process-global
/// gm-obs state. Every harness binary calls this first thing in `main`,
/// before any metrics handle is resolved — handles cache the mode at
/// construction.
pub fn apply_obs_mode() {
    gm_obs::set_mode(obs_mode_from(std::env::var("GM_OBS").ok().as_deref()));
}

/// Pure parsing core of [`apply_obs_mode`]: unset keeps the default
/// (`phases`); garbage warns and keeps the default.
fn obs_mode_from(value: Option<&str>) -> gm_obs::ObsMode {
    match value {
        None => gm_obs::ObsMode::Phases,
        Some(s) => gm_obs::ObsMode::parse(s).unwrap_or_else(|| {
            warn_ignored("GM_OBS", s, "off/counters/phases");
            gm_obs::ObsMode::Phases
        }),
    }
}

/// Apply the trace knobs (`GM_TRACE`, `GM_TRACE_CAP`) to the process-global
/// gm-obs trace state. Harness binaries call this right after
/// [`apply_obs_mode`]: the capacity must land before the first record
/// allocates the ring, and the mode gates every `derive_id` call after it.
pub fn apply_trace_mode() {
    gm_obs::trace::set_capacity(var_u64("GM_TRACE_CAP", 4096) as usize);
    gm_obs::trace::set_mode(trace_mode_from(std::env::var("GM_TRACE").ok().as_deref()));
}

/// Pure parsing core of [`apply_trace_mode`]: unset keeps the default
/// (`tail`); garbage warns and keeps the default.
fn trace_mode_from(value: Option<&str>) -> gm_obs::TraceMode {
    match value {
        None => gm_obs::TraceMode::Tail,
        Some(s) => gm_obs::TraceMode::parse(s).unwrap_or_else(|| {
            warn_ignored("GM_TRACE", s, "off/tail/all");
            gm_obs::TraceMode::Tail
        }),
    }
}

/// The trace dump base path (`GM_TRACE_DUMP`): `None` when unset or blank.
/// Binaries that honour it write `<base>.txt` and `<base>.json` on exit via
/// `gm_obs::trace::dump_to`.
pub fn trace_dump_path() -> Option<String> {
    std::env::var("GM_TRACE_DUMP")
        .ok()
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
}

/// The engine filter (`GM_ENGINES`; unset = all variants).
pub fn var_engines() -> Vec<EngineKind> {
    match std::env::var("GM_ENGINES") {
        Ok(list) => list
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .filter_map(|n| {
                let kind = EngineKind::parse(n.trim());
                if kind.is_none() {
                    let known: Vec<&str> = EngineKind::ALL.iter().map(|k| k.name()).collect();
                    warn_ignored("GM_ENGINES", n, &format!("one of {known:?}"));
                }
                kind
            })
            .collect(),
        Err(_) => EngineKind::ALL.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env-var tests set process-global state; keep each test's variables
    // distinct so parallel execution cannot interfere.

    #[test]
    fn u64_default_and_parse() {
        assert_eq!(var_u64("GM_TEST_ABSENT_U64", 7), 7);
        std::env::set_var("GM_TEST_U64", "12");
        assert_eq!(var_u64("GM_TEST_U64", 7), 12);
        std::env::set_var("GM_TEST_U64_BAD", "nope");
        assert_eq!(var_u64("GM_TEST_U64_BAD", 7), 7);
    }

    #[test]
    fn lists_skip_invalid_entries() {
        std::env::set_var("GM_TEST_LIST_F64", "0.5, nope, 2, -1");
        assert_eq!(var_list_f64("GM_TEST_LIST_F64", "1"), vec![0.5, 2.0]);
        std::env::set_var("GM_TEST_LIST_U32", "1,0,x,4");
        assert_eq!(var_list_u32("GM_TEST_LIST_U32", "1"), vec![1, 4]);
        assert_eq!(var_list_u32("GM_TEST_LIST_ABSENT", "2,8"), vec![2, 8]);
    }

    #[test]
    fn mixes_parse_by_name() {
        std::env::set_var("GM_TEST_MIXES", "read-only, bogus ,mixed");
        assert_eq!(
            var_mixes("GM_TEST_MIXES", "read-heavy"),
            vec![MixKind::ReadOnly, MixKind::Mixed]
        );
        assert_eq!(
            var_mixes("GM_TEST_MIXES_ABSENT", "read-heavy,mixed"),
            vec![MixKind::ReadHeavy, MixKind::Mixed]
        );
    }

    #[test]
    fn snapshot_mode_knob() {
        // The pure core only: mutating the real GM_SNAPSHOT_MODE here would
        // race other tests in this process and break under
        // `GM_SNAPSHOT_MODE=… cargo test`.
        // Unset: the caller's default wins.
        assert_eq!(
            snapshot_mode_from(None, Some(SnapshotMode::Cow)),
            Some(SnapshotMode::Cow)
        );
        assert_eq!(snapshot_mode_from(None, None), None);
        // Set: "off" disables, names select, garbage warns + keeps default.
        assert_eq!(
            snapshot_mode_from(Some("off"), Some(SnapshotMode::Cow)),
            None
        );
        assert_eq!(
            snapshot_mode_from(Some("native"), Some(SnapshotMode::Cow)),
            Some(SnapshotMode::Native)
        );
        assert_eq!(
            snapshot_mode_from(Some("bogus"), Some(SnapshotMode::Cow)),
            Some(SnapshotMode::Cow)
        );
    }

    #[test]
    fn obs_mode_knob() {
        use gm_obs::ObsMode;
        // Pure core only — the real GM_OBS is process-global state shared
        // with other tests.
        assert_eq!(obs_mode_from(None), ObsMode::Phases);
        assert_eq!(obs_mode_from(Some("off")), ObsMode::Off);
        assert_eq!(obs_mode_from(Some("counters")), ObsMode::Counters);
        assert_eq!(obs_mode_from(Some("phases")), ObsMode::Phases);
        assert_eq!(obs_mode_from(Some("bogus")), ObsMode::Phases);
    }

    #[test]
    fn trace_mode_knob() {
        use gm_obs::TraceMode;
        // Pure core only — the real GM_TRACE is process-global state shared
        // with other tests.
        assert_eq!(trace_mode_from(None), TraceMode::Tail);
        assert_eq!(trace_mode_from(Some("off")), TraceMode::Off);
        assert_eq!(trace_mode_from(Some("tail")), TraceMode::Tail);
        assert_eq!(trace_mode_from(Some("all")), TraceMode::All);
        assert_eq!(trace_mode_from(Some("bogus")), TraceMode::Tail);
    }

    #[test]
    fn knob_registry_covers_the_documented_set() {
        for required in [
            "GM_SCALE",
            "GM_SEED",
            "GM_ENGINES",
            "GM_SERVER_ADDR",
            "GM_NET_CLIENTS",
            "GM_FLEET",
            "GM_FLEET_ADDRS",
            "GM_FLEET_BATCH",
            "GM_SNAPSHOT_MODE",
            "GM_OBS",
            "GM_STATS_INTERVAL_MS",
            "GM_TRACE",
            "GM_TRACE_CAP",
            "GM_TRACE_DUMP",
            "GM_TXN_OPS",
            "GM_TXN_LOG_CAP",
        ] {
            assert!(
                KNOBS.iter().any(|k| k.name == required),
                "{required} missing from KNOBS"
            );
        }
        let table = render_knobs();
        assert!(table.contains("GM_SERVER_ADDR"));
        assert!(table.contains("GM_NET_CLIENTS"));
    }
}
