//! # gm-shard — hash-partitioned composite engine
//!
//! The ROADMAP's "sharded locks" item, built as a composite engine rather
//! than a per-engine rewrite: [`ShardedGraph<E>`] hash-partitions vertices
//! across `N` inner engines of any architecture, each behind **its own
//! lock**, and [`ShardedSource`] does the same with one MVCC snapshot cell
//! per shard. Both implement the existing interfaces
//! ([`GraphSnapshot`](gm_model::GraphSnapshot) + [`GraphDb`](gm_model::GraphDb),
//! [`SharedGraph`](gm_model::SharedGraph), and
//! [`SnapshotSource`](gm_mvcc::SnapshotSource)), so sharding drops
//! unchanged into `catalog::execute_read`, the sequential `Runner`, the
//! `gm-workload` backends, and `gm-net` hosting.
//!
//! The partitioning scheme (module [`route`]):
//!
//! * vertices are placed by a hash of their canonical id (dynamic inserts
//!   round-robin); composite ids carry the shard index in their low digits
//!   (`composite = local * N + shard`), so with one shard the composite is
//!   bit-compatible with the unsharded engine;
//! * every edge lives on **its source's shard**, so `out()` never crosses
//!   a shard boundary; cut destinations are materialized as invisible
//!   **ghost vertices** on the source shard, and `in()`/`both()`/BFS
//!   gather over the vertex's presence set (owner + ghosting shards) —
//!   k-hop traversals cross shard boundaries without ever seeing a ghost;
//! * whole-graph scans and aggregates scatter to every shard and merge,
//!   filtering ghosts and translating ids back to composite space.
//!
//! Concurrency: locked mode takes per-shard `RwLock`s (reads see one
//! consistent cross-shard state; writers to different shards run in
//! parallel); snapshot mode pins one epoch per shard under a seqlock that
//! makes multi-shard topology changes atomic with respect to pins, with
//! the composite epoch defined as the minimum over shard epochs (monotone
//! because each shard's epochs are). Every lock acquisition reports
//! through [`gm_model::lockwait`], so the driver's lock-wait column turns
//! "per-partition locks beat one big lock" into a measured number
//! (`fig10_sharding`).
//!
//! The equivalence contract — a `ShardedGraph<E>` answers every query
//! exactly like an unsharded `E` — is enforced by the workspace's
//! `tests/sharding.rs` across all engine variants and shard counts, and by
//! this crate's proptest oracle for write/pin interleavings.

pub mod backend;
pub mod graph;
pub mod route;
pub mod source;
pub mod view;

pub use backend::{
    prepare_sharded, run_sharded, run_sharded_sequential, ShardedBackend, SHARDED_LOCKED,
};
pub use graph::{ShardedGraph, SharedWriter};
pub use route::{
    decode_eid, decode_vid, encode_eid, encode_vid, shard_of_canonical, Meta, GHOST_LABEL,
};
pub use source::ShardedSource;
pub use view::{Parts, ShardedView};

/// A `ShardedGraph` over boxed registry engines — the form the harness
/// binaries use (`EngineKind::make()` returns `Box<dyn GraphDb>`, which
/// implements `GraphDb` itself).
pub type ShardedDyn = ShardedGraph<Box<dyn gm_model::GraphDb>>;

#[cfg(test)]
mod tests {
    use super::*;
    use engine_linked::LinkedGraph;
    use gm_model::api::{Direction, GraphDb, GraphSnapshot, LoadOptions, SharedGraph};
    use gm_model::{testkit, QueryCtx, Value, Vid};
    use gm_mvcc::{CowCell, SnapshotSource};

    fn loaded(shards: usize, n: u64) -> ShardedGraph<LinkedGraph> {
        let mut g = ShardedGraph::from_factory(shards, LinkedGraph::v1);
        g.bulk_load(&testkit::chain_dataset(n), &LoadOptions::default())
            .expect("load");
        g
    }

    fn unsharded(n: u64) -> LinkedGraph {
        let mut g = LinkedGraph::v1();
        g.bulk_load(&testkit::chain_dataset(n), &LoadOptions::default())
            .expect("load");
        g
    }

    #[test]
    fn counts_and_scans_ignore_ghosts() {
        let ctx = QueryCtx::unbounded();
        for shards in [1usize, 2, 4] {
            let g = loaded(shards, 60);
            assert_eq!(g.vertex_count(&ctx).unwrap(), 60, "{shards} shards");
            assert_eq!(g.edge_count(&ctx).unwrap(), 59, "{shards} shards");
            let scanned: Vec<_> = g
                .scan_vertices(&ctx)
                .unwrap()
                .collect::<Result<Vec<_>, _>>()
                .unwrap();
            assert_eq!(scanned.len(), 60, "{shards} shards: scan skips ghosts");
            let mut labels = g.edge_label_set(&ctx).unwrap();
            labels.sort();
            assert_eq!(labels, vec!["link".to_string(), "next".to_string()]);
        }
    }

    #[test]
    fn chain_traversal_crosses_shard_boundaries() {
        let ctx = QueryCtx::unbounded();
        let g = loaded(4, 40);
        let reference = unsharded(40);
        // Walk the whole chain 0→1→…→39 over `out()`: every hop that
        // crosses a shard goes through a ghost translation.
        let mut at = g.resolve_vertex(0).expect("resolve head");
        for canonical in 1..40u64 {
            let next = g.neighbors(at, Direction::Out, None, &ctx).unwrap();
            assert_eq!(next.len(), 1, "chain vertex {canonical} has one successor");
            at = next[0];
            assert_eq!(
                at,
                g.resolve_vertex(canonical).unwrap(),
                "hop {canonical} lands on the right composite vertex"
            );
        }
        // Degrees agree with the unsharded engine at every vertex.
        for canonical in 0..40u64 {
            let sv = g.resolve_vertex(canonical).unwrap();
            let uv = reference.resolve_vertex(canonical).unwrap();
            for dir in Direction::ALL {
                assert_eq!(
                    g.vertex_degree(sv, dir, &ctx).unwrap(),
                    reference.vertex_degree(uv, dir, &ctx).unwrap(),
                    "degree({canonical}, {dir:?})"
                );
            }
        }
    }

    #[test]
    fn edges_materialize_with_composite_endpoints() {
        let ctx = QueryCtx::unbounded();
        let g = loaded(3, 30);
        for canonical in 0..29u64 {
            let e = g.resolve_edge(canonical).expect("resolve edge");
            let data = g.edge(e).unwrap().expect("edge exists");
            assert_eq!(data.id, e);
            assert_eq!(data.src, g.resolve_vertex(canonical).unwrap());
            assert_eq!(data.dst, g.resolve_vertex(canonical + 1).unwrap());
            assert_eq!(
                g.edge_endpoints(e).unwrap(),
                Some((data.src, data.dst)),
                "endpoints agree with materialization"
            );
        }
        let _ = ctx;
    }

    #[test]
    fn dynamic_writes_route_and_read_back() {
        let ctx = QueryCtx::unbounded();
        let mut g = loaded(4, 21);
        let a = g.resolve_vertex(3).unwrap();
        let hub = g
            .add_vertex("hub", &vec![("w".into(), Value::Int(1))])
            .unwrap();
        let e1 = g.add_edge(hub, a, "spoke", &vec![]).unwrap();
        let e2 = g.add_edge(a, hub, "spoke", &vec![]).unwrap();
        assert_eq!(g.vertex_count(&ctx).unwrap(), 22);
        assert_eq!(g.edge_count(&ctx).unwrap(), 22);
        assert_eq!(
            g.neighbors(hub, Direction::Out, None, &ctx).unwrap(),
            vec![a]
        );
        assert_eq!(
            g.neighbors(hub, Direction::In, None, &ctx).unwrap(),
            vec![a]
        );
        assert_eq!(g.vertex_degree(hub, Direction::Both, &ctx).unwrap(), 2);
        assert_eq!(g.edge_label(e1).unwrap().as_deref(), Some("spoke"));
        g.remove_edge(e2).unwrap();
        assert_eq!(g.vertex_degree(hub, Direction::Both, &ctx).unwrap(), 1);
        // Removing the hub removes its remaining cross-shard edge too.
        g.remove_vertex(hub).unwrap();
        assert_eq!(g.vertex_count(&ctx).unwrap(), 21);
        assert_eq!(g.edge_count(&ctx).unwrap(), 20);
        assert_eq!(g.vertex(hub).unwrap(), None);
    }

    /// Regression: deferred resolution-map purges must not sit in the
    /// queue forever on read-dominated mixes. Ghost creation is the only
    /// write that takes the meta writer lock there, so it drains the
    /// queue opportunistically; removal-heavy mixes are bounded by the
    /// depth cap.
    #[test]
    fn deferred_purges_drain_on_ghost_creation() {
        let mut g = loaded(2, 20);
        let e = g.resolve_edge(5).unwrap();
        g.remove_edge(e).unwrap();
        assert_eq!(g.pending_purge_depth(), 1, "removal defers the purge");
        // Two fresh vertices land on different shards (round-robin), so
        // the edge between them creates a ghost under the meta writer
        // lock — which must piggyback the queued purge.
        let a = g.add_vertex("a", &vec![]).unwrap();
        let b = g.add_vertex("b", &vec![]).unwrap();
        g.add_edge(a, b, "cut", &vec![]).unwrap();
        assert_eq!(g.pending_purge_depth(), 0, "ghost creation drains");
        assert_eq!(g.resolve_edge(5), None, "purge actually landed");
    }

    #[test]
    fn deferred_purges_drain_at_depth_cap() {
        let mut g = loaded(2, 1200);
        let eids: Vec<_> = (0..1024)
            .map(|c| g.resolve_edge(c).expect("resolve edge"))
            .collect();
        for (i, e) in eids.iter().enumerate() {
            g.remove_edge(*e).unwrap();
            let depth = g.pending_purge_depth();
            if i < 1023 {
                assert_eq!(depth, i + 1, "queue grows until the cap");
            } else {
                assert_eq!(depth, 0, "cap triggers a full drain");
            }
        }
    }

    #[test]
    fn add_edge_to_missing_vertex_errors() {
        let mut g = loaded(3, 12);
        let a = g.resolve_vertex(0).unwrap();
        let err = g.add_edge(a, Vid(999_999), "x", &vec![]);
        assert!(err.is_err(), "edge to a missing remote vertex must fail");
    }

    #[test]
    fn shared_writer_parallel_writes_land() {
        let g = loaded(4, 40);
        let ctx = QueryCtx::unbounded();
        std::thread::scope(|s| {
            for t in 0..4 {
                let g = &g;
                s.spawn(move || {
                    for i in 0..50 {
                        g.with_write(&mut |db| {
                            db.add_vertex(&format!("w{t}"), &vec![("i".into(), Value::Int(i))])
                                .map(|_| 1)
                        })
                        .unwrap();
                    }
                });
            }
        });
        assert_eq!(g.vertex_count(&ctx).unwrap(), 40 + 200);
    }

    #[test]
    fn sharded_source_pins_are_immutable_and_epochs_monotone() {
        let data = testkit::chain_dataset(30);
        let src = ShardedSource::from_factory(3, || {
            Box::new(CowCell::new(LinkedGraph::v1())) as Box<dyn SnapshotSource>
        });
        src.with_write(&mut |db| {
            db.bulk_load(&data, &LoadOptions::default())?;
            Ok(0)
        })
        .unwrap();
        let ctx = QueryCtx::unbounded();
        let pin = src.snapshot().unwrap();
        assert_eq!(pin.vertex_count(&ctx).unwrap(), 30);
        let e0 = pin.epoch();
        for _ in 0..5 {
            src.with_write(&mut |db| db.add_vertex("n", &vec![]).map(|_| 1))
                .unwrap();
        }
        assert_eq!(pin.vertex_count(&ctx).unwrap(), 30, "pin is immutable");
        let pin2 = src.snapshot().unwrap();
        assert_eq!(pin2.vertex_count(&ctx).unwrap(), 35);
        assert!(pin2.epoch() >= e0, "composite epochs are monotone");
        assert_eq!(src.kind(), "sharded-cow");
        assert!(src.engine().ends_with("/s3"), "{}", src.engine());
    }

    /// Regression: ghost creation must publish the mutated cell before its
    /// topology guard releases the seqlock. Otherwise a staleness-tolerant
    /// pin pairs the *new* meta (ghost entry present) with a *pre-ghost*
    /// shard view — and reading the destination's in-edges through the
    /// ghost id fails on a vertex that very much exists (or vertex_count
    /// underflows the ghost correction).
    #[test]
    fn recent_pins_never_tear_on_fresh_ghosts() {
        use std::time::Duration;
        let data = testkit::chain_dataset(16);
        let src = ShardedSource::from_factory(4, || {
            Box::new(CowCell::new(LinkedGraph::v1())) as Box<dyn SnapshotSource>
        });
        src.with_write(&mut |db| {
            db.bulk_load(&data, &LoadOptions::default())?;
            Ok(0)
        })
        .unwrap();
        let ctx = QueryCtx::unbounded();
        // Two fresh vertices land on different shards (round-robin spread),
        // so the edge between them creates a brand-new ghost.
        let mut ends = Vec::new();
        src.with_write(&mut |db| {
            ends.push(db.add_vertex("a", &vec![])?);
            ends.push(db.add_vertex("b", &vec![])?);
            Ok(2)
        })
        .unwrap();
        let (a, b) = (ends[0], ends[1]);
        assert_ne!(a.0 % 4, b.0 % 4, "round-robin spread separates them");
        src.with_write(&mut |db| db.add_edge(a, b, "cut", &vec![]).map(|_| 1))
            .unwrap();
        // A maximally stale pin: without publish-before-release this view
        // lacks the ghost vertex its meta names.
        let stale = src.snapshot_recent(Duration::from_secs(60)).unwrap();
        let count = stale.vertex_count(&ctx).unwrap();
        assert!((16..=18).contains(&count), "no ghost-correction underflow");
        let _ = stale
            .neighbors(b, Direction::In, None, &ctx)
            .expect("gathering in-edges through a fresh ghost must not fail");
        // A strict pin sees the cut edge end to end.
        let strict = src.snapshot().unwrap();
        assert_eq!(
            strict.neighbors(b, Direction::In, None, &ctx).unwrap(),
            vec![a]
        );
    }

    fn txn_source(shards: usize, n: u64) -> ShardedSource {
        let src = ShardedSource::from_factory(shards, || {
            Box::new(CowCell::new(LinkedGraph::v1())) as Box<dyn SnapshotSource>
        });
        src.with_write(&mut |db| {
            db.bulk_load(&testkit::chain_dataset(n), &LoadOptions::default())?;
            Ok(0)
        })
        .unwrap();
        src
    }

    /// The tentpole contract: a transaction whose write set spans shards
    /// publishes all-or-nothing. Pins taken before the commit see none of
    /// it; pins taken after see all of it.
    #[test]
    fn cross_shard_txn_commits_atomically() {
        use gm_mvcc::WriteTxn;
        let src = txn_source(3, 30);
        let ctx = QueryCtx::unbounded();
        let before = src.snapshot().unwrap();

        let mut txn = WriteTxn::begin(&src).unwrap();
        // Touch every shard: one property per chain vertex 0..6 (the hash
        // placement spreads consecutive canonicals across the 3 shards),
        // plus two fresh vertices and a cut edge between them.
        for canonical in 0..6u64 {
            let v = txn.resolve_vertex(canonical).unwrap();
            txn.set_vertex_property(v, "touched", Value::Int(1))
                .unwrap();
        }
        let a = txn.add_vertex("a", &vec![]).unwrap();
        let b = txn.add_vertex("b", &vec![]).unwrap();
        txn.add_edge(a, b, "cut", &vec![]).unwrap();
        assert_eq!(
            before.vertex_count(&ctx).unwrap(),
            30,
            "nothing visible before commit"
        );
        txn.commit(&src).unwrap();

        assert_eq!(
            before.vertex_count(&ctx).unwrap(),
            30,
            "pre-commit pin is immutable"
        );
        let after = src.snapshot().unwrap();
        assert_eq!(after.vertex_count(&ctx).unwrap(), 32);
        for canonical in 0..6u64 {
            let v = after.resolve_vertex(canonical).unwrap();
            assert_eq!(
                after.vertex_property(v, "touched").unwrap(),
                Some(Value::Int(1)),
                "chain vertex {canonical}"
            );
        }
    }

    /// First-committer-wins across shards: two transactions pinned at the
    /// same epoch writing the same vertex — the second commit fails with
    /// `TxnConflict` and publishes nothing.
    #[test]
    fn conflicting_cross_shard_commits_fail_distinctly() {
        use gm_model::GdbError;
        use gm_mvcc::WriteTxn;
        let src = txn_source(2, 20);
        let ctx = QueryCtx::unbounded();

        let mut t1 = WriteTxn::begin(&src).unwrap();
        let mut t2 = WriteTxn::begin(&src).unwrap();
        let v1 = t1.resolve_vertex(7).unwrap();
        let v2 = t2.resolve_vertex(7).unwrap();
        t1.set_vertex_property(v1, "who", Value::Str("t1".into()))
            .unwrap();
        t2.set_vertex_property(v2, "who", Value::Str("t2".into()))
            .unwrap();
        t2.add_vertex("loser-extra", &vec![]).unwrap();
        t1.commit(&src).unwrap();
        let err = t2.commit(&src).unwrap_err();
        assert!(
            matches!(err, GdbError::TxnConflict(_)),
            "expected TxnConflict, got {err:?}"
        );

        let after = src.snapshot().unwrap();
        let v = after.resolve_vertex(7).unwrap();
        assert_eq!(
            after.vertex_property(v, "who").unwrap(),
            Some(Value::Str("t1".into())),
            "winner's write survives"
        );
        assert_eq!(
            after.vertex_count(&ctx).unwrap(),
            20,
            "loser's whole write set is discarded"
        );
    }

    /// A pinner racing transactional commits must never observe a torn
    /// write set: each txn adds exactly 3 vertices, so every pinned count
    /// is `base + 3k`.
    #[test]
    fn concurrent_pinner_never_sees_a_torn_commit() {
        use gm_mvcc::WriteTxn;
        use std::sync::atomic::{AtomicBool, Ordering};
        let src = txn_source(4, 16);
        let ctx = QueryCtx::unbounded();
        let done = AtomicBool::new(false);
        std::thread::scope(|s| {
            let src = &src;
            let done = &done;
            let pinner = s.spawn(move || {
                let mut torn = 0u32;
                while !done.load(Ordering::Acquire) {
                    let pin = src.snapshot().unwrap();
                    let count = pin.vertex_count(&QueryCtx::unbounded()).unwrap();
                    if !(count - 16).is_multiple_of(3) {
                        torn += 1;
                    }
                }
                torn
            });
            for _ in 0..40 {
                let mut txn = WriteTxn::begin(src).unwrap();
                let a = txn.add_vertex("a", &vec![]).unwrap();
                let b = txn.add_vertex("b", &vec![]).unwrap();
                txn.add_vertex("c", &vec![]).unwrap();
                txn.add_edge(a, b, "pair", &vec![]).unwrap();
                txn.commit(src).unwrap();
            }
            done.store(true, Ordering::Release);
            assert_eq!(pinner.join().unwrap(), 0, "no pin saw a partial txn");
        });
        assert_eq!(src.snapshot().unwrap().vertex_count(&ctx).unwrap(), 136);
    }

    /// Structural operations are rejected inside a staged commit rather
    /// than silently bypassing the write set.
    #[test]
    fn txn_replay_rejects_structural_ops_on_sharded_source() {
        use gm_model::GdbError;
        let src = txn_source(2, 10);
        let seq = src.txn_log().expect("composite log").seq();
        let err = src
            .txn_commit(seq, &[], &mut |db| db.create_vertex_index("x").map(|_| 0))
            .unwrap_err();
        assert!(matches!(err, GdbError::Unsupported(_)), "{err:?}");
    }

    #[test]
    fn one_shard_is_bit_compatible_with_the_inner_engine() {
        let ctx = QueryCtx::unbounded();
        let g = loaded(1, 25);
        let reference = unsharded(25);
        for canonical in 0..25u64 {
            assert_eq!(
                g.resolve_vertex(canonical),
                reference.resolve_vertex(canonical),
                "1-shard composite ids equal inner ids"
            );
        }
        assert_eq!(
            g.vertex_count(&ctx).unwrap(),
            reference.vertex_count(&ctx).unwrap()
        );
    }
}
