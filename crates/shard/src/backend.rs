//! Workload-driver integration: drive a [`ShardedGraph`] with per-shard
//! locks instead of the engine-wide `RwLock`.
//!
//! [`ShardedBackend`] is a [`Backend`] whose sessions execute reads through
//! the composite's scatter-gather path and writes through [`SharedWriter`]
//! — so a write locks only the shard it lands on, and the driver's
//! lock-wait column measures per-partition queueing directly against the
//! single-lock baseline (`LocalBackend` over the same engine). Note the
//! isolation level that comes with the lock split: `LocalBackend` holds
//! one read guard across a whole query, while a sharded query re-acquires
//! shard locks per primitive — multi-primitive reads racing writers may
//! observe intermediate states (see `graph`'s module docs). Read-only
//! determinism is unaffected, which is what the equivalence suite checks.
//!
//! [`run_sharded`] / [`run_sharded_sequential`] mirror the driver's
//! `run` / `run_sequential` entry points: build the composite, bulk-load,
//! resolve parameters (all outside the measured region, §4.2), then drive
//! the standard `run_backend` machinery. For snapshot-mode sharding, pass a
//! [`crate::ShardedSource`] factory to the driver's existing
//! `run_snapshot` — the composite source is a plain `SnapshotSource`.

use std::time::Duration;

use gm_core::catalog;
use gm_core::params::{ResolvedParams, Workload};
use gm_model::api::{GraphDb, GraphSnapshot, LoadOptions};
use gm_model::{lockwait, Dataset, Eid, GdbResult, QueryCtx};
use gm_workload::{
    apply_write, run_backend, run_backend_sequential, Backend, Op, OpResult, RunReport, Session,
    WorkloadConfig, WORKLOAD_SLOTS,
};

use crate::graph::{ShardedGraph, SharedWriter};

/// Isolation label reported by sharded-locked runs.
pub const SHARDED_LOCKED: &str = "sharded-locked";

/// Per-shard-locked backend over a loaded, parameter-resolved composite.
pub struct ShardedBackend<'a, E: GraphDb + 'static> {
    graph: &'a ShardedGraph<E>,
    params: &'a ResolvedParams,
    op_timeout: Duration,
}

impl<'a, E: GraphDb + 'static> ShardedBackend<'a, E> {
    /// Wrap a loaded composite with resolved parameters.
    pub fn new(
        graph: &'a ShardedGraph<E>,
        params: &'a ResolvedParams,
        op_timeout: Duration,
    ) -> Self {
        ShardedBackend {
            graph,
            params,
            op_timeout,
        }
    }
}

impl<E: GraphDb + 'static> Backend for ShardedBackend<'_, E> {
    fn engine(&self) -> String {
        self.graph.name()
    }

    fn isolation(&self) -> String {
        SHARDED_LOCKED.into()
    }

    fn open_session(&self, _worker: usize) -> GdbResult<Box<dyn Session + '_>> {
        Ok(Box::new(ShardedSession {
            graph: self.graph,
            params: self.params,
            op_timeout: self.op_timeout,
            owned_edges: Vec::new(),
        }))
    }
}

struct ShardedSession<'a, E: GraphDb + 'static> {
    graph: &'a ShardedGraph<E>,
    params: &'a ResolvedParams,
    op_timeout: Duration,
    owned_edges: Vec<Eid>,
}

impl<E: GraphDb + 'static> Session for ShardedSession<'_, E> {
    fn execute(&mut self, op: Op, worker: usize, op_index: u64) -> GdbResult<OpResult> {
        // Every shard/meta lock acquisition on this path reports through
        // the thread-local accumulator; this worker owns its thread.
        lockwait::reset();
        match op {
            Op::Read(inst) => {
                let ctx = QueryCtx::with_timeout(self.op_timeout);
                catalog::execute_read(&inst, self.graph, self.params, &ctx)
                    .map(|card| OpResult::plain(card).with_lock_wait(lockwait::take()))
            }
            Op::Write(wop) => {
                let mut writer = SharedWriter::new(self.graph);
                apply_write(
                    wop,
                    &mut writer,
                    self.params,
                    worker,
                    op_index,
                    &mut self.owned_edges,
                )
                .map(|card| OpResult::plain(card).with_lock_wait(lockwait::take()))
            }
        }
    }
}

/// Load `data` into a fresh `shards`-way composite of engines from
/// `factory`, then run the configured workload concurrently against it
/// under **per-shard locks**.
pub fn run_sharded(
    factory: &dyn Fn() -> Box<dyn GraphDb>,
    shards: usize,
    data: &Dataset,
    cfg: &WorkloadConfig,
) -> GdbResult<RunReport> {
    let (graph, params) = prepare_sharded(factory, shards, data, cfg)?;
    let backend = ShardedBackend::new(&graph, &params, cfg.op_timeout);
    run_backend(&backend, &data.name, cfg)
}

/// Sequential (single-threaded, closed-loop) replay of [`run_sharded`]'s
/// op sequences — the reference a concurrent read-only sharded run must
/// reproduce exactly.
pub fn run_sharded_sequential(
    factory: &dyn Fn() -> Box<dyn GraphDb>,
    shards: usize,
    data: &Dataset,
    cfg: &WorkloadConfig,
) -> GdbResult<RunReport> {
    let (graph, params) = prepare_sharded(factory, shards, data, cfg)?;
    let backend = ShardedBackend::new(&graph, &params, cfg.op_timeout);
    run_backend_sequential(&backend, &data.name, cfg)
}

/// Build a loaded, parameter-resolved composite (outside the measured
/// region, as §4.2 prescribes).
pub fn prepare_sharded(
    factory: &dyn Fn() -> Box<dyn GraphDb>,
    shards: usize,
    data: &Dataset,
    cfg: &WorkloadConfig,
) -> GdbResult<(ShardedGraph<Box<dyn GraphDb>>, ResolvedParams)> {
    let mut graph = ShardedGraph::from_factory(shards, factory);
    graph.bulk_load(data, &LoadOptions::default())?;
    graph.sync()?;
    let workload = Workload::choose(data, cfg.seed, WORKLOAD_SLOTS);
    let params = workload.resolve(&graph)?;
    Ok((graph, params))
}
