//! The locked-mode composite: per-shard `RwLock`s instead of one engine-wide
//! lock.
//!
//! [`ShardedGraph<E>`] implements [`GraphSnapshot`] and [`GraphDb`], so it
//! drops unchanged into `catalog::execute_read`, the sequential `Runner`,
//! the workload backends, and `gm-net` hosting. The interesting part is the
//! locking discipline — **ops lock only the shards they touch**:
//!
//! * point reads (`vertex`, properties, `out()`-direction work) take one
//!   shard's read guard; `in()`/`both()` gathers take the vertex's
//!   presence set (owner + ghosting shards, typically 1–2); whole-graph
//!   scans and counts take every read guard and therefore still observe
//!   one consistent cross-shard state;
//! * single-shard writes (add vertex/edge, property ops, edge removal)
//!   take only the owning shard's write guard — two writers landing on
//!   different shards run in parallel, which is the whole point;
//! * multi-shard writes (vertex removal, bulk load, index builds) take
//!   every write guard in ascending order.
//!
//! A multi-shard read locks its shard set *simultaneously*, so each
//! **primitive** is atomic with respect to every write; two reads touching
//! disjoint shard sets may observe independent single-shard writes in
//! either order. Isolation is therefore **per primitive**: a query
//! composed of several primitives (BFS, degree filters) re-acquires locks
//! between steps and may observe concurrent writes in between — unlike the
//! engine-wide `RwLock`, whose guard a session holds across the whole
//! query. That weakening is the standard consistency of a partitioned
//! store without a global clock, and it is part of what the fig10
//! comparison measures; read-only equivalence (no writers) is unaffected.
//!
//! Deadlock freedom: the global acquisition order is **meta, then shard
//! guards in ascending index order**; no path acquires the meta lock while
//! holding a shard guard. Every acquisition runs through
//! [`gm_model::lockwait`], so the workload driver's lock-wait column
//! decomposes per-partition waiting against the single-lock baseline.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};

use gm_model::api::{
    Direction, EdgeData, EdgeRef, EngineFeatures, GraphDb, GraphSnapshot, LoadOptions, LoadStats,
    SharedGraph, SpaceReport, VertexData,
};
use gm_model::lockorder::{self, LockRank, Ranked};
use gm_model::{lockwait, Dataset, Eid, GdbError, GdbResult, Props, QueryCtx, Value, Vid};

use crate::route::{
    build_meta, decode_eid, decode_vid, encode_eid, encode_vid, partition, Meta, GHOST_LABEL,
};
use crate::source::ShardMetrics;
use crate::view::Parts;

fn poisoned(what: &str) -> GdbError {
    GdbError::Poisoned(format!(
        "sharded graph {what} lock poisoned by a panicking writer"
    ))
}

/// Purge-queue depth at which an edge removal eagerly drains instead of
/// deferring further. Removal-heavy mixes that never resolve canonicals
/// (and never create ghosts) would otherwise grow the queue without bound;
/// one meta write per `PURGE_DRAIN_THRESHOLD` removals amortizes to noise.
const PURGE_DRAIN_THRESHOLD: usize = 1024;

/// Which shard read guards an op needs.
enum ShardSel {
    One(usize),
    Some(Vec<usize>),
    All,
}

/// Hash-partitioned composite over `N` inner engines, each behind its own
/// lock. See the module docs for the locking discipline and `route` for the
/// partitioning scheme.
pub struct ShardedGraph<E: GraphDb + 'static> {
    name: String,
    shards: Vec<RwLock<E>>,
    meta: RwLock<Meta>,
    /// Round-robin placement counter for dynamically added vertices.
    spread: AtomicU64,
    /// Composite edge ids removed but not yet purged from the canonical
    /// resolution maps. Purging eagerly would take the meta **write** lock
    /// on every edge removal — a global serializer on a hot write path —
    /// so removals append here (a nanosecond push under an uncontended
    /// mutex) and the queue drains whenever the meta writer lock is held
    /// anyway, and before any canonical resolution (the setup-path reader
    /// of those maps).
    pending_purges: Mutex<Vec<Eid>>,
    metrics: Option<ShardMetrics>,
}

impl<E: GraphDb + 'static> ShardedGraph<E> {
    /// Build a composite of `shards` fresh engines from `make`.
    ///
    /// Panics if `shards == 0`.
    pub fn from_factory(shards: usize, make: impl Fn() -> E) -> Self {
        assert!(shards >= 1, "a sharded graph needs at least one shard");
        let engines: Vec<RwLock<E>> = (0..shards).map(|_| RwLock::new(make())).collect();
        let inner_name = engines[0].read().expect("fresh lock").name();
        ShardedGraph {
            name: format!("{inner_name}/s{shards}"),
            shards: engines,
            meta: RwLock::new(Meta::new(shards)),
            spread: AtomicU64::new(0),
            pending_purges: Mutex::new(Vec::new()),
            metrics: ShardMetrics::new(shards),
        }
    }

    /// Number of partitions.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    // ----- lock plumbing --------------------------------------------------

    fn rlock(&self, s: usize) -> GdbResult<Ranked<RwLockReadGuard<'_, E>>> {
        if let Some(m) = &self.metrics {
            m.note_op(s);
        }
        // gm-lock: shard
        let t = lockorder::acquire(LockRank::Shard(s as u32), "gm-shard/graph.rs shard read");
        lockwait::timed(|| self.shards[s].read())
            .map(|g| Ranked::new(g, t))
            .map_err(|_| poisoned("shard read"))
    }

    fn wlock(&self, s: usize) -> GdbResult<Ranked<RwLockWriteGuard<'_, E>>> {
        if let Some(m) = &self.metrics {
            m.note_op(s);
        }
        // gm-lock: shard
        let t = lockorder::acquire(LockRank::Shard(s as u32), "gm-shard/graph.rs shard write");
        lockwait::timed(|| self.shards[s].write())
            .map(|g| Ranked::new(g, t))
            .map_err(|_| poisoned("shard write"))
    }

    fn wlock_all(&self) -> GdbResult<Vec<Ranked<RwLockWriteGuard<'_, E>>>> {
        self.shards
            .iter()
            .enumerate()
            .map(|(s, l)| {
                // gm-lock: shard
                let t = lockorder::acquire(
                    LockRank::Shard(s as u32),
                    "gm-shard/graph.rs all-shards write",
                );
                lockwait::timed(|| l.write())
                    .map(|g| Ranked::new(g, t))
                    .map_err(|_| poisoned("shard write"))
            })
            .collect()
    }

    fn meta_read(&self) -> GdbResult<Ranked<RwLockReadGuard<'_, Meta>>> {
        // gm-lock: meta
        let t = lockorder::acquire(LockRank::Meta, "gm-shard/graph.rs meta read");
        lockwait::timed(|| self.meta.read())
            .map(|g| Ranked::new(g, t))
            .map_err(|_| poisoned("meta read"))
    }

    fn meta_write(&self) -> GdbResult<Ranked<RwLockWriteGuard<'_, Meta>>> {
        // gm-lock: meta
        let t = lockorder::acquire(LockRank::Meta, "gm-shard/graph.rs meta write");
        lockwait::timed(|| self.meta.write())
            .map(|g| Ranked::new(g, t))
            .map_err(|_| poisoned("meta write"))
    }

    /// The purge queue's mutex, rank-tracked. Innermost (leaf) rank: it is
    /// taken either with nothing else held (the deferred-push and probe
    /// paths) or inside the full meta + shard guard set (vertex removal).
    fn purge_lock(
        &self,
        site: &'static str,
    ) -> GdbResult<Ranked<std::sync::MutexGuard<'_, Vec<Eid>>>> {
        // gm-lock: leaf
        let t = lockorder::acquire(LockRank::Leaf, site);
        self.pending_purges
            .lock()
            .map(|g| Ranked::new(g, t))
            .map_err(|_| poisoned("purge queue"))
    }

    /// Apply deferred resolution-map purges. Cheap when the queue is empty
    /// (one uncontended mutex probe); callers that already hold the meta
    /// writer guard pass it in, everyone else lets this acquire one only
    /// when there is work.
    fn drain_purges(&self, held: Option<&mut Meta>) -> GdbResult<()> {
        // gm-lock: leaf transient
        let mut pending = self.purge_lock("gm-shard/graph.rs purge queue probe")?;
        if pending.is_empty() {
            return Ok(());
        }
        match held {
            Some(meta) => {
                for e in pending.drain(..) {
                    meta.purge_edge(e);
                }
            }
            None => {
                drop(pending); // meta before the queue: re-take in order
                               // gm-lock: meta
                let mut meta = self.meta_write()?;
                // gm-lock: leaf
                let mut pending = self.purge_lock("gm-shard/graph.rs purge queue drain")?;
                for e in pending.drain(..) {
                    meta.purge_edge(e);
                }
            }
        }
        self.note_pending(0);
        Ok(())
    }

    /// Publish the purge-queue depth to the `shard.pending_purges` gauge.
    fn note_pending(&self, len: usize) {
        if let Some(m) = &self.metrics {
            m.pending_purges.set(len as i64);
        }
    }

    /// Current depth of the deferred purge queue (diagnostics and tests;
    /// the `shard.pending_purges` gauge mirrors this under `GM_OBS`).
    pub fn pending_purge_depth(&self) -> usize {
        self.purge_lock("gm-shard/graph.rs purge queue depth")
            .map(|g| g.len())
            .unwrap_or(0)
    }

    /// Run a read holding exactly the shards `select` names (meta guard
    /// first, then the selected shard read guards ascending). A multi-shard
    /// selection is held simultaneously, so the read is atomic with respect
    /// to every write touching those shards.
    fn with_locked<R>(
        &self,
        select: impl FnOnce(&Meta) -> ShardSel,
        f: impl FnOnce(&Parts<'_>) -> R,
    ) -> GdbResult<R> {
        // gm-lock: meta
        let meta = self.meta_read()?;
        let mut refs: Vec<Option<&dyn GraphSnapshot>> = vec![None; self.shards.len()];
        let mut guards: Vec<(usize, Ranked<RwLockReadGuard<'_, E>>)> = Vec::new();
        // gm-lock: shard
        match select(&meta) {
            ShardSel::One(s) => guards.push((s, self.rlock(s)?)),
            ShardSel::Some(mut which) => {
                which.sort_unstable();
                which.dedup();
                for s in which {
                    guards.push((s, self.rlock(s)?));
                }
            }
            ShardSel::All => {
                for s in 0..self.shards.len() {
                    guards.push((s, self.rlock(s)?));
                }
            }
        }
        for (s, g) in &guards {
            refs[*s] = Some(&**g as _);
        }
        Ok(f(&Parts {
            name: &self.name,
            shards: &refs,
            meta: &meta,
        }))
    }

    /// Shorthand: every shard (scans, counts, whole-graph filters).
    fn with_all<R>(&self, f: impl FnOnce(&Parts<'_>) -> R) -> GdbResult<R> {
        self.with_locked(|_| ShardSel::All, f)
    }

    /// Shorthand: the single shard a vertex- or edge-routed op touches.
    fn with_one<R>(&self, s: usize, f: impl FnOnce(&Parts<'_>) -> R) -> GdbResult<R> {
        self.with_locked(|_| ShardSel::One(s), f)
    }

    /// Shorthand: the presence set of `v` (owner + ghosting shards) — what
    /// `in()`/`both()` gathers touch.
    fn with_presence<R>(&self, v: Vid, f: impl FnOnce(&Parts<'_>) -> R) -> GdbResult<R> {
        let n = self.shard_count();
        self.with_locked(
            |meta| {
                let (_, owner) = decode_vid(v, n);
                let mut which = vec![owner];
                for (s, ghosts) in meta.ghosts.iter().enumerate() {
                    if s != owner && ghosts.contains_key(&v.0) {
                        which.push(s);
                    }
                }
                ShardSel::Some(which)
            },
            f,
        )
    }

    // ----- shared-reference write path ------------------------------------
    //
    // Every mutation is implemented against `&self` with per-shard locking;
    // the `&mut self` trait methods below delegate here, and `SharedWriter`
    // exposes the same path to concurrent writers.

    pub(crate) fn sh_add_vertex(&self, label: &str, props: &Props) -> GdbResult<Vid> {
        let n = self.shard_count();
        // gm-check: relaxed(round-robin placement counter: any interleaving is a valid placement)
        let s = (self.spread.fetch_add(1, Ordering::Relaxed) % n as u64) as usize;
        // gm-lock: shard
        let mut g = self.wlock(s)?;
        let local = g.add_vertex(label, props)?;
        Ok(encode_vid(local, s, n))
    }

    pub(crate) fn sh_add_edge(
        &self,
        src: Vid,
        dst: Vid,
        label: &str,
        props: &Props,
    ) -> GdbResult<Eid> {
        let n = self.shard_count();
        let (local_src, s) = decode_vid(src, n);
        let (local_dst_owner, dst_shard) = decode_vid(dst, n);
        if dst_shard == s {
            // Same-shard edge: one write guard, the inner engine validates
            // both endpoints itself.
            // gm-lock: shard
            let mut g = self.wlock(s)?;
            let local = g.add_edge(local_src, local_dst_owner, label, props)?;
            return Ok(encode_eid(local, s, n));
        }
        // Cut edge. Fast path first: an existing ghost proves the remote
        // endpoint existed when the ghost was created (vertex removal
        // deletes its ghosts), so the steady state pays one meta read plus
        // the source shard's write guard — no cross-shard validation lock.
        // gm-lock: meta transient
        let known_ghost = self.meta_read()?.ghosts[s].get(&dst.0).copied();
        let local_dst = match known_ghost {
            Some(ghost) => ghost,
            None => {
                // First cut edge to this destination: validate the remote
                // endpoint (a single read guard, released before anything
                // else is taken); a racing removal between check and insert
                // is the same weakening every cross-partition system
                // accepts.
                {
                    // gm-lock: shard
                    let owner = self.rlock(dst_shard)?;
                    if owner.vertex(local_dst_owner)?.is_none() {
                        return Err(GdbError::VertexNotFound(dst.0));
                    }
                }
                // First cut edge to this destination from this shard: the
                // ghost vertex and its meta entry are created while holding
                // meta.write → shard.write, so no read can observe the edge
                // before the translation exists.
                // gm-lock: meta
                let mut meta = self.meta_write()?;
                // Opportunistic purge drain: this is the only write path
                // that takes the meta writer lock under a read-dominated
                // mix, so piggyback the deferred resolution-map cleanup
                // here instead of letting the queue grow unbounded until
                // the next canonical resolution.
                self.drain_purges(Some(&mut meta))?;
                match meta.ghosts[s].get(&dst.0).copied() {
                    Some(ghost) => ghost, // raced another writer: reuse
                    None => {
                        // gm-lock: shard
                        let mut g = self.wlock(s)?;
                        let ghost = g.add_vertex(GHOST_LABEL, &Vec::new())?;
                        meta.ghosts[s].insert(dst.0, ghost);
                        meta.rev[s].insert(ghost.0, dst.0);
                        if let Some(m) = &self.metrics {
                            m.ghost_creations.inc();
                        }
                        let local = g.add_edge(local_src, ghost, label, props)?;
                        return Ok(encode_eid(local, s, n));
                    }
                }
            }
        };
        // gm-lock: shard
        let mut g = self.wlock(s)?;
        let local = g.add_edge(local_src, local_dst, label, props)?;
        Ok(encode_eid(local, s, n))
    }

    pub(crate) fn sh_set_vertex_property(&self, v: Vid, name: &str, value: Value) -> GdbResult<()> {
        let (local, owner) = decode_vid(v, self.shard_count());
        // gm-lock: shard
        self.wlock(owner)?.set_vertex_property(local, name, value)
    }

    pub(crate) fn sh_set_edge_property(&self, e: Eid, name: &str, value: Value) -> GdbResult<()> {
        let (local, s) = decode_eid(e, self.shard_count());
        // gm-lock: shard
        self.wlock(s)?.set_edge_property(local, name, value)
    }

    pub(crate) fn sh_remove_vertex(&self, v: Vid) -> GdbResult<()> {
        let n = self.shard_count();
        // gm-lock: meta
        let mut meta = self.meta_write()?;
        // gm-lock: shard
        let mut guards = self.wlock_all()?;
        let (local, owner) = decode_vid(v, n);
        // Collect the incident edges before anything is removed, so the
        // canonical edge-resolution entries can be purged with them.
        let ctx = QueryCtx::unbounded();
        let mut dead_edges: Vec<Eid> = Vec::new();
        for (s, guard) in guards.iter().enumerate() {
            let present = if s == owner {
                Some(local)
            } else {
                meta.ghosts[s].get(&v.0).copied()
            };
            if let Some(lv) = present {
                for r in guard.vertex_edges(lv, Direction::Both, None, &ctx)? {
                    dead_edges.push(encode_eid(r.eid, s, n));
                }
            }
        }
        // The owner's removal validates existence; only then touch ghosts.
        guards[owner].remove_vertex(local)?;
        for (s, guard) in guards.iter_mut().enumerate() {
            if s == owner {
                continue;
            }
            if let Some(ghost) = meta.ghosts[s].remove(&v.0) {
                meta.rev[s].remove(&ghost.0);
                guard.remove_vertex(ghost)?;
            }
        }
        for e in dead_edges {
            meta.purge_edge(e);
        }
        meta.purge_vertex(v);
        self.drain_purges(Some(&mut meta))?;
        Ok(())
    }

    pub(crate) fn sh_remove_edge(&self, e: Eid) -> GdbResult<()> {
        let (local, s) = decode_eid(e, self.shard_count());
        // gm-lock: shard transient
        self.wlock(s)?.remove_edge(local)?;
        // An orphaned ghost (its last in-edge gone) is retained: it stays
        // invisible to every read and will be reused by the next cut edge
        // to the same destination. The resolution-map purge is deferred
        // (see `pending_purges`); canonical resolution drains the queue
        // before answering, ghost creation drains it opportunistically,
        // and a depth cap below bounds it on removal-heavy mixes that
        // never hit either path.
        let depth = {
            // gm-lock: leaf
            let mut pending = self.purge_lock("gm-shard/graph.rs purge queue push")?;
            pending.push(e);
            pending.len()
        };
        self.note_pending(depth);
        if depth >= PURGE_DRAIN_THRESHOLD {
            self.drain_purges(None)?;
        }
        Ok(())
    }

    pub(crate) fn sh_remove_vertex_property(&self, v: Vid, name: &str) -> GdbResult<Option<Value>> {
        let (local, owner) = decode_vid(v, self.shard_count());
        self.wlock(owner)?.remove_vertex_property(local, name)
    }

    pub(crate) fn sh_remove_edge_property(&self, e: Eid, name: &str) -> GdbResult<Option<Value>> {
        let (local, s) = decode_eid(e, self.shard_count());
        self.wlock(s)?.remove_edge_property(local, name)
    }

    pub(crate) fn sh_create_vertex_index(&self, prop: &str) -> GdbResult<()> {
        // Homogeneous shards: either all support indexes or none does, so a
        // first-shard failure leaves no partial state behind.
        // gm-lock: shard
        for g in self.wlock_all()?.iter_mut() {
            g.create_vertex_index(prop)?;
        }
        Ok(())
    }

    pub(crate) fn sh_sync(&self) -> GdbResult<()> {
        // gm-lock: shard
        for g in self.wlock_all()?.iter_mut() {
            g.sync()?;
        }
        Ok(())
    }

    pub(crate) fn sh_bulk_load(&self, data: &Dataset, opts: &LoadOptions) -> GdbResult<LoadStats> {
        let n = self.shard_count();
        // gm-lock: meta
        let mut meta = self.meta_write()?;
        // gm-lock: shard
        let mut guards = self.wlock_all()?;
        let parts = partition(data, n)?;
        for (s, sub) in parts.subs.iter().enumerate() {
            guards[s].bulk_load(sub, opts)?;
        }
        let views: Vec<&dyn GraphSnapshot> = guards.iter().map(|g| &**g as _).collect();
        *meta = build_meta(&parts, &views)?;
        // gm-lock: leaf
        self.purge_lock("gm-shard/graph.rs purge queue clear")?
            .clear();
        self.note_pending(0);
        Ok(LoadStats {
            vertices: data.vertex_count() as u64,
            edges: data.edge_count() as u64,
        })
    }
}

impl<E: GraphDb + 'static> GraphSnapshot for ShardedGraph<E> {
    // gm-check: allow-default(epoch: the locked composite is unversioned — reads observe whatever writes have landed, exactly like the engine-wide RwLock it replaces)

    fn name(&self) -> String {
        self.name.clone()
    }

    fn features(&self) -> EngineFeatures {
        self.with_one(0, |p| p.features())
            .unwrap_or(EngineFeatures {
                name: self.name.clone(),
                system_type: "Sharded composite".into(),
                storage: "unavailable (poisoned shard lock)".into(),
                edge_traversal: "scatter-gather".into(),
                optimized_adapter: false,
                async_writes: false,
                attribute_indexes: false,
            })
    }

    fn resolve_vertex(&self, canonical: u64) -> Option<Vid> {
        // Resolution lives entirely in the meta maps — no shard lock.
        // Deferred removal purges are applied first, so a deleted element
        // stops resolving exactly as it does on an unsharded engine.
        self.drain_purges(None).ok()?;
        self.meta_read()
            .ok()?
            .vertex_resolve
            .get(&canonical)
            .map(|v| Vid(*v))
    }

    fn resolve_edge(&self, canonical: u64) -> Option<Eid> {
        self.drain_purges(None).ok()?;
        self.meta_read()
            .ok()?
            .edge_resolve
            .get(&canonical)
            .map(|e| Eid(*e))
    }

    fn vertex_count(&self, ctx: &QueryCtx) -> GdbResult<u64> {
        self.with_all(|p| p.vertex_count(ctx))?
    }

    fn edge_count(&self, ctx: &QueryCtx) -> GdbResult<u64> {
        self.with_all(|p| p.edge_count(ctx))?
    }

    fn edge_label_set(&self, ctx: &QueryCtx) -> GdbResult<Vec<String>> {
        self.with_all(|p| p.edge_label_set(ctx))?
    }

    fn vertices_with_property(
        &self,
        name: &str,
        value: &Value,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Vid>> {
        self.with_all(|p| p.vertices_with_property(name, value, ctx))?
    }

    fn edges_with_property(
        &self,
        name: &str,
        value: &Value,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Eid>> {
        self.with_all(|p| p.edges_with_property(name, value, ctx))?
    }

    fn edges_with_label(&self, label: &str, ctx: &QueryCtx) -> GdbResult<Vec<Eid>> {
        self.with_all(|p| p.edges_with_label(label, ctx))?
    }

    fn vertex(&self, v: Vid) -> GdbResult<Option<VertexData>> {
        // Meta-free point read: the id maps through arithmetic alone.
        let (local, owner) = decode_vid(v, self.shard_count());
        Ok(self.rlock(owner)?.vertex(local)?.map(|data| VertexData {
            id: v,
            label: data.label,
            props: data.props,
        }))
    }

    fn edge(&self, e: Eid) -> GdbResult<Option<EdgeData>> {
        let (_, s) = decode_eid(e, self.shard_count());
        self.with_one(s, |p| p.edge(e))?
    }

    fn neighbors(
        &self,
        v: Vid,
        dir: Direction,
        label: Option<&str>,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Vid>> {
        match dir {
            Direction::Out => {
                let (_, owner) = decode_vid(v, self.shard_count());
                self.with_one(owner, |p| p.neighbors(v, dir, label, ctx))?
            }
            Direction::In | Direction::Both => {
                self.with_presence(v, |p| p.neighbors(v, dir, label, ctx))?
            }
        }
    }

    fn vertex_edges(
        &self,
        v: Vid,
        dir: Direction,
        label: Option<&str>,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<EdgeRef>> {
        match dir {
            Direction::Out => {
                let (_, owner) = decode_vid(v, self.shard_count());
                self.with_one(owner, |p| p.vertex_edges(v, dir, label, ctx))?
            }
            Direction::In | Direction::Both => {
                self.with_presence(v, |p| p.vertex_edges(v, dir, label, ctx))?
            }
        }
    }

    fn vertex_degree(&self, v: Vid, dir: Direction, ctx: &QueryCtx) -> GdbResult<u64> {
        match dir {
            Direction::Out => {
                let (_, owner) = decode_vid(v, self.shard_count());
                self.with_one(owner, |p| p.vertex_degree(v, dir, ctx))?
            }
            Direction::In | Direction::Both => {
                self.with_presence(v, |p| p.vertex_degree(v, dir, ctx))?
            }
        }
    }

    fn vertex_edge_labels(&self, v: Vid, dir: Direction, ctx: &QueryCtx) -> GdbResult<Vec<String>> {
        match dir {
            Direction::Out => {
                let (_, owner) = decode_vid(v, self.shard_count());
                self.with_one(owner, |p| p.vertex_edge_labels(v, dir, ctx))?
            }
            Direction::In | Direction::Both => {
                self.with_presence(v, |p| p.vertex_edge_labels(v, dir, ctx))?
            }
        }
    }

    fn scan_vertices<'a>(
        &'a self,
        ctx: &'a QueryCtx,
    ) -> GdbResult<Box<dyn Iterator<Item = GdbResult<Vid>> + 'a>> {
        // Materialized under the guards, released before iteration — the
        // same shape as the remote client's scan.
        let items = self.with_all(|p| p.scan_vertices(ctx))??;
        Ok(Box::new(items.into_iter()))
    }

    fn scan_edges<'a>(
        &'a self,
        ctx: &'a QueryCtx,
    ) -> GdbResult<Box<dyn Iterator<Item = GdbResult<Eid>> + 'a>> {
        let items = self.with_all(|p| p.scan_edges(ctx))??;
        Ok(Box::new(items.into_iter()))
    }

    fn vertex_property(&self, v: Vid, name: &str) -> GdbResult<Option<Value>> {
        let (local, owner) = decode_vid(v, self.shard_count());
        self.rlock(owner)?.vertex_property(local, name)
    }

    fn edge_property(&self, e: Eid, name: &str) -> GdbResult<Option<Value>> {
        let (local, s) = decode_eid(e, self.shard_count());
        self.rlock(s)?.edge_property(local, name)
    }

    fn edge_endpoints(&self, e: Eid) -> GdbResult<Option<(Vid, Vid)>> {
        let (_, s) = decode_eid(e, self.shard_count());
        self.with_one(s, |p| p.edge_endpoints(e))?
    }

    fn edge_label(&self, e: Eid) -> GdbResult<Option<String>> {
        let (local, s) = decode_eid(e, self.shard_count());
        self.rlock(s)?.edge_label(local)
    }

    fn vertex_label(&self, v: Vid) -> GdbResult<Option<String>> {
        let (local, owner) = decode_vid(v, self.shard_count());
        self.rlock(owner)?.vertex_label(local)
    }

    fn degree_scan(&self, dir: Direction, k: u64, ctx: &QueryCtx) -> GdbResult<Vec<Vid>> {
        // One acquisition of every shard guard for the whole filter. The
        // trait default would re-lock per `vertex_degree` probe — thousands
        // of acquisition rounds per scan — and could interleave with
        // writers mid-filter; this is the silent-default skew the gm-check
        // delegation lint exists to catch.
        self.with_all(|p| p.degree_scan(dir, k, ctx))?
    }

    fn distinct_neighbor_scan(&self, dir: Direction, ctx: &QueryCtx) -> GdbResult<Vec<Vid>> {
        self.with_all(|p| p.distinct_neighbor_scan(dir, ctx))?
    }

    fn has_vertex_index(&self, prop: &str) -> bool {
        self.with_all(|p| p.has_vertex_index(prop)).unwrap_or(false)
    }

    fn space(&self) -> SpaceReport {
        self.with_all(|p| p.space()).unwrap_or_default()
    }
}

impl<E: GraphDb + 'static> GraphDb for ShardedGraph<E> {
    // Exclusive access routes through the same shared-reference write path
    // concurrent writers use: a throwaway `SharedWriter` per call costs
    // nothing (it is one reference) and keeps exactly one implementation of
    // every mutation.
    gm_model::forward_graph_db!(target = |s| SharedWriter::new(s));
}

impl<E: GraphDb + 'static> SharedGraph for ShardedGraph<E> {
    fn with_write(&self, f: &mut dyn FnMut(&mut dyn GraphDb) -> GdbResult<u64>) -> GdbResult<u64> {
        let mut writer = SharedWriter { graph: self };
        f(&mut writer)
    }
}

/// A zero-cost mutation handle over a shared [`ShardedGraph`] reference:
/// implements [`GraphDb`] so the standard write paths (`apply_write`, the
/// write half of `catalog::execute`) run unchanged, but each mutation locks
/// only the shard it touches — the reason concurrent writers on different
/// shards stop serializing.
pub struct SharedWriter<'a, E: GraphDb + 'static> {
    graph: &'a ShardedGraph<E>,
}

impl<'a, E: GraphDb + 'static> SharedWriter<'a, E> {
    /// Wrap a shared composite reference.
    pub fn new(graph: &'a ShardedGraph<E>) -> Self {
        SharedWriter { graph }
    }
}

impl<E: GraphDb + 'static> GraphSnapshot for SharedWriter<'_, E> {
    // Complete by construction — including `epoch` and the bulk-scan
    // overrides, which the hand-written predecessor of this impl silently
    // dropped (reads through a writer handle fell back to the trait's
    // per-vertex default decomposition).
    gm_model::forward_graph_snapshot!(target = |s| s.graph);
}

impl<E: GraphDb + 'static> GraphDb for SharedWriter<'_, E> {
    fn bulk_load(&mut self, data: &Dataset, opts: &LoadOptions) -> GdbResult<LoadStats> {
        self.graph.sh_bulk_load(data, opts)
    }

    fn add_vertex(&mut self, label: &str, props: &Props) -> GdbResult<Vid> {
        self.graph.sh_add_vertex(label, props)
    }

    fn add_edge(&mut self, src: Vid, dst: Vid, label: &str, props: &Props) -> GdbResult<Eid> {
        self.graph.sh_add_edge(src, dst, label, props)
    }

    fn set_vertex_property(&mut self, v: Vid, name: &str, value: Value) -> GdbResult<()> {
        self.graph.sh_set_vertex_property(v, name, value)
    }

    fn set_edge_property(&mut self, e: Eid, name: &str, value: Value) -> GdbResult<()> {
        self.graph.sh_set_edge_property(e, name, value)
    }

    fn remove_vertex(&mut self, v: Vid) -> GdbResult<()> {
        self.graph.sh_remove_vertex(v)
    }

    fn remove_edge(&mut self, e: Eid) -> GdbResult<()> {
        self.graph.sh_remove_edge(e)
    }

    fn remove_vertex_property(&mut self, v: Vid, name: &str) -> GdbResult<Option<Value>> {
        self.graph.sh_remove_vertex_property(v, name)
    }

    fn remove_edge_property(&mut self, e: Eid, name: &str) -> GdbResult<Option<Value>> {
        self.graph.sh_remove_edge_property(e, name)
    }

    fn create_vertex_index(&mut self, prop: &str) -> GdbResult<()> {
        self.graph.sh_create_vertex_index(prop)
    }

    fn sync(&mut self) -> GdbResult<()> {
        self.graph.sh_sync()
    }
}
