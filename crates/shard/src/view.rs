//! The composite read path: route single-vertex questions, scatter-gather
//! the rest.
//!
//! All read logic lives in [`Parts`], a borrowed bundle of one read view
//! per shard plus the routing [`Meta`]. Two very different owners drive it
//! through the same code:
//!
//! * `ShardedGraph` (locked mode) materializes a `Parts` under its
//!   per-shard read guards — every read observes one consistent cross-shard
//!   state, exactly like the single engine-wide `RwLock` it replaces, while
//!   writers to different shards still run in parallel;
//! * [`ShardedView`] (snapshot mode) owns one pinned epoch per shard plus a
//!   cloned `Meta`, so reads run lock-free against immutable state.
//!
//! Routing rules (see `route` for why they are exhaustive):
//!
//! * `out()`-direction work touches only the vertex's owner shard — all
//!   out-edges are stored there;
//! * `in()`/`both()` gather over the vertex's **presence set**: its owner
//!   plus every shard holding a ghost of it — precisely the shards that
//!   can store edges pointing at it;
//! * whole-graph scans and counts visit every shard, filtering ghosts;
//! * edge questions route by the shard digit of the composite edge id.

use gm_model::api::{
    Direction, EdgeData, EdgeRef, EngineFeatures, GraphSnapshot, SpaceReport, VertexData,
};
use gm_model::{Eid, GdbResult, QueryCtx, Value, Vid};

use crate::route::{decode_eid, decode_vid, encode_eid, Meta};

/// Borrowed composite read state: read views for the shards an op touches
/// + routing meta.
///
/// The slice is indexed by shard; `None` means the owner did not acquire
/// that shard for this op (locked mode locks only what the op needs —
/// point reads touch one shard, presence gathers a few, whole-graph scans
/// all). Indexing an unacquired shard is an internal routing bug and
/// panics.
///
/// `Parts` is public so composite read frontends outside this crate
/// (e.g. `gm-net`'s fleet coordinator) can reuse the ghost-corrected
/// merge logic over their own shard views.
pub struct Parts<'a> {
    /// Composite display name (for `name()`/`features()`).
    pub name: &'a str,
    /// Read views, indexed by shard; `None` = not acquired for this op.
    pub shards: &'a [Option<&'a dyn GraphSnapshot>],
    /// Routing metadata consistent with the views.
    pub meta: &'a Meta,
}

impl Parts<'_> {
    fn n(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, s: usize) -> &dyn GraphSnapshot {
        self.shards[s].expect("routing bug: shard view not acquired for this op")
    }

    /// Shards where composite vertex `v` has a local id, with that id:
    /// the owner first, then every shard ghosting it.
    fn presence(&self, v: Vid) -> Vec<(usize, Vid)> {
        let mut out = Vec::with_capacity(2);
        let (local, owner) = decode_vid(v, self.n());
        out.push((owner, local));
        for (s, ghosts) in self.meta.ghosts.iter().enumerate() {
            if s != owner {
                if let Some(g) = ghosts.get(&v.0) {
                    out.push((s, *g));
                }
            }
        }
        out
    }

    pub fn features(&self) -> EngineFeatures {
        let mut f = self.shard(0).features();
        f.name = self.name.to_string();
        f.storage = format!(
            "{} × {} hash-partitioned shards (cut edges ghosted at source)",
            f.storage,
            self.n()
        );
        f
    }

    pub fn resolve_vertex(&self, canonical: u64) -> Option<Vid> {
        self.meta.vertex_resolve.get(&canonical).map(|v| Vid(*v))
    }

    pub fn resolve_edge(&self, canonical: u64) -> Option<Eid> {
        self.meta.edge_resolve.get(&canonical).map(|e| Eid(*e))
    }

    pub fn vertex_count(&self, ctx: &QueryCtx) -> GdbResult<u64> {
        let mut total = 0u64;
        for s in 0..self.n() {
            total += self.shard(s).vertex_count(ctx)? - self.meta.ghost_count(s);
        }
        Ok(total)
    }

    pub fn edge_count(&self, ctx: &QueryCtx) -> GdbResult<u64> {
        let mut total = 0u64;
        for s in 0..self.n() {
            total += self.shard(s).edge_count(ctx)?;
        }
        Ok(total)
    }

    pub fn edge_label_set(&self, ctx: &QueryCtx) -> GdbResult<Vec<String>> {
        let mut labels = Vec::new();
        for s in 0..self.n() {
            labels.extend(self.shard(s).edge_label_set(ctx)?);
        }
        labels.sort_unstable();
        labels.dedup();
        Ok(labels)
    }

    pub fn vertices_with_property(
        &self,
        name: &str,
        value: &Value,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Vid>> {
        // Ghosts carry no properties, so they can never match; translation
        // through `to_composite` is still applied for uniformity.
        let mut out = Vec::new();
        for s in 0..self.n() {
            out.extend(
                self.shard(s)
                    .vertices_with_property(name, value, ctx)?
                    .into_iter()
                    .map(|v| self.meta.to_composite(s, v)),
            );
        }
        Ok(out)
    }

    pub fn edges_with_property(
        &self,
        name: &str,
        value: &Value,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Eid>> {
        let mut out = Vec::new();
        for s in 0..self.n() {
            out.extend(
                self.shard(s)
                    .edges_with_property(name, value, ctx)?
                    .into_iter()
                    .map(|e| encode_eid(e, s, self.n())),
            );
        }
        Ok(out)
    }

    pub fn edges_with_label(&self, label: &str, ctx: &QueryCtx) -> GdbResult<Vec<Eid>> {
        let mut out = Vec::new();
        for s in 0..self.n() {
            out.extend(
                self.shard(s)
                    .edges_with_label(label, ctx)?
                    .into_iter()
                    .map(|e| encode_eid(e, s, self.n())),
            );
        }
        Ok(out)
    }

    pub fn vertex(&self, v: Vid) -> GdbResult<Option<VertexData>> {
        let (local, owner) = decode_vid(v, self.n());
        Ok(self.shard(owner).vertex(local)?.map(|data| VertexData {
            id: v,
            label: data.label,
            props: data.props,
        }))
    }

    pub fn edge(&self, e: Eid) -> GdbResult<Option<EdgeData>> {
        let (local, s) = decode_eid(e, self.n());
        Ok(self.shard(s).edge(local)?.map(|data| EdgeData {
            id: e,
            src: self.meta.to_composite(s, data.src),
            dst: self.meta.to_composite(s, data.dst),
            label: data.label,
            props: data.props,
        }))
    }

    pub fn neighbors(
        &self,
        v: Vid,
        dir: Direction,
        label: Option<&str>,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Vid>> {
        let mut out = Vec::new();
        match dir {
            // All out-edges live on the owner; their far ends may be ghosts.
            Direction::Out => {
                let (local, owner) = decode_vid(v, self.n());
                out.extend(
                    self.shard(owner)
                        .neighbors(local, dir, label, ctx)?
                        .into_iter()
                        .map(|u| self.meta.to_composite(owner, u)),
                );
            }
            // In-edges live on their sources' shards: gather over the
            // presence set. `Both` on the owner yields out + same-shard in;
            // on ghost shards a ghost has only in-edges, so the union is
            // exactly the unsharded answer, each edge contributing once.
            Direction::In | Direction::Both => {
                for (s, local) in self.presence(v) {
                    out.extend(
                        self.shard(s)
                            .neighbors(local, dir, label, ctx)?
                            .into_iter()
                            .map(|u| self.meta.to_composite(s, u)),
                    );
                }
            }
        }
        Ok(out)
    }

    pub fn vertex_edges(
        &self,
        v: Vid,
        dir: Direction,
        label: Option<&str>,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<EdgeRef>> {
        let map = |s: usize, refs: Vec<EdgeRef>| -> Vec<EdgeRef> {
            refs.into_iter()
                .map(|r| EdgeRef {
                    eid: encode_eid(r.eid, s, self.n()),
                    other: self.meta.to_composite(s, r.other),
                })
                .collect()
        };
        let mut out = Vec::new();
        match dir {
            Direction::Out => {
                let (local, owner) = decode_vid(v, self.n());
                out.extend(map(
                    owner,
                    self.shard(owner).vertex_edges(local, dir, label, ctx)?,
                ));
            }
            Direction::In | Direction::Both => {
                for (s, local) in self.presence(v) {
                    out.extend(map(s, self.shard(s).vertex_edges(local, dir, label, ctx)?));
                }
            }
        }
        Ok(out)
    }

    pub fn vertex_degree(&self, v: Vid, dir: Direction, ctx: &QueryCtx) -> GdbResult<u64> {
        match dir {
            Direction::Out => {
                let (local, owner) = decode_vid(v, self.n());
                self.shard(owner).vertex_degree(local, dir, ctx)
            }
            Direction::In | Direction::Both => {
                let mut total = 0u64;
                for (s, local) in self.presence(v) {
                    total += self.shard(s).vertex_degree(local, dir, ctx)?;
                }
                Ok(total)
            }
        }
    }

    pub fn vertex_edge_labels(
        &self,
        v: Vid,
        dir: Direction,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<String>> {
        let mut labels = Vec::new();
        match dir {
            Direction::Out => {
                let (local, owner) = decode_vid(v, self.n());
                labels.extend(self.shard(owner).vertex_edge_labels(local, dir, ctx)?);
            }
            Direction::In | Direction::Both => {
                for (s, local) in self.presence(v) {
                    labels.extend(self.shard(s).vertex_edge_labels(local, dir, ctx)?);
                }
            }
        }
        // Each shard dedupes locally; the cross-shard union must too.
        labels.sort_unstable();
        labels.dedup();
        Ok(labels)
    }

    /// Q28–Q30 over the composite: evaluate the degree filter against one
    /// consistent cross-shard state. Routing through `vertex_degree` keeps
    /// the ghost arithmetic (presence-set gather for `In`/`Both`) in one
    /// place; the point is that the whole filter runs under a single
    /// acquisition of the shard views rather than re-acquiring per vertex,
    /// which is what the trait's default decomposition would do.
    pub fn degree_scan(&self, dir: Direction, k: u64, ctx: &QueryCtx) -> GdbResult<Vec<Vid>> {
        let mut out = Vec::new();
        for v in self.scan_vertices(ctx)? {
            let v = v?;
            if self.vertex_degree(v, dir, ctx)? >= k {
                out.push(v);
            }
        }
        Ok(out)
    }

    /// Q31 over the composite: one-hop neighbor union, deduped across
    /// shards, against one consistent cross-shard state.
    pub fn distinct_neighbor_scan(&self, dir: Direction, ctx: &QueryCtx) -> GdbResult<Vec<Vid>> {
        let mut sources = Vec::new();
        for v in self.scan_vertices(ctx)? {
            sources.push(v?);
        }
        let mut out = Vec::new();
        for v in sources {
            out.extend(self.neighbors(v, dir, None, ctx)?);
        }
        out.sort_unstable();
        out.dedup();
        Ok(out)
    }

    /// Materialized vertex scan: ghosts filtered, ids composite. A mid-scan
    /// inner error (deadline) is preserved at its position.
    pub fn scan_vertices(&self, ctx: &QueryCtx) -> GdbResult<Vec<GdbResult<Vid>>> {
        let mut out = Vec::new();
        for s in 0..self.n() {
            for item in self.shard(s).scan_vertices(ctx)? {
                match item {
                    Ok(local) => {
                        if !self.meta.rev[s].contains_key(&local.0) {
                            out.push(Ok(self.meta.to_composite(s, local)));
                        }
                    }
                    Err(e) => {
                        out.push(Err(e));
                        return Ok(out);
                    }
                }
            }
        }
        Ok(out)
    }

    /// Materialized edge scan (every edge is stored on exactly one shard).
    pub fn scan_edges(&self, ctx: &QueryCtx) -> GdbResult<Vec<GdbResult<Eid>>> {
        let mut out = Vec::new();
        for s in 0..self.n() {
            for item in self.shard(s).scan_edges(ctx)? {
                match item {
                    Ok(local) => out.push(Ok(encode_eid(local, s, self.n()))),
                    Err(e) => {
                        out.push(Err(e));
                        return Ok(out);
                    }
                }
            }
        }
        Ok(out)
    }

    pub fn vertex_property(&self, v: Vid, name: &str) -> GdbResult<Option<Value>> {
        let (local, owner) = decode_vid(v, self.n());
        self.shard(owner).vertex_property(local, name)
    }

    pub fn edge_property(&self, e: Eid, name: &str) -> GdbResult<Option<Value>> {
        let (local, s) = decode_eid(e, self.n());
        self.shard(s).edge_property(local, name)
    }

    pub fn edge_endpoints(&self, e: Eid) -> GdbResult<Option<(Vid, Vid)>> {
        let (local, s) = decode_eid(e, self.n());
        Ok(self.shard(s).edge_endpoints(local)?.map(|(src, dst)| {
            (
                self.meta.to_composite(s, src),
                self.meta.to_composite(s, dst),
            )
        }))
    }

    pub fn edge_label(&self, e: Eid) -> GdbResult<Option<String>> {
        let (local, s) = decode_eid(e, self.n());
        self.shard(s).edge_label(local)
    }

    pub fn vertex_label(&self, v: Vid) -> GdbResult<Option<String>> {
        let (local, owner) = decode_vid(v, self.n());
        self.shard(owner).vertex_label(local)
    }

    pub fn has_vertex_index(&self, prop: &str) -> bool {
        (0..self.n()).all(|s| self.shard(s).has_vertex_index(prop))
    }

    pub fn space(&self) -> SpaceReport {
        // Sum same-named components across shards so the report shape stays
        // that of one engine, then account the routing maps.
        let mut by_name: std::collections::BTreeMap<String, u64> =
            std::collections::BTreeMap::new();
        for s in 0..self.n() {
            for (component, bytes) in self.shard(s).space().components {
                *by_name.entry(component).or_insert(0) += bytes;
            }
        }
        let mut report = SpaceReport::default();
        for (component, bytes) in by_name {
            report.add(component, bytes);
        }
        report.add("shard routing maps", self.meta.approx_bytes());
        report
    }
}

/// An immutable composite epoch view: one pinned snapshot per shard plus a
/// cloned [`Meta`], produced by `ShardedSource`. The composite epoch is the
/// **minimum** over the shard epochs — the newest graph version every shard
/// is guaranteed to have published — which is monotone because each shard's
/// epochs are.
pub struct ShardedView {
    pub(crate) name: String,
    pub(crate) shards: Vec<Box<dyn GraphSnapshot>>,
    pub(crate) meta: Meta,
    pub(crate) epoch: u64,
}

impl ShardedView {
    fn with_parts<R>(&self, f: impl FnOnce(&Parts<'_>) -> R) -> R {
        let refs: Vec<Option<&dyn GraphSnapshot>> =
            self.shards.iter().map(|b| Some(b.as_ref())).collect();
        f(&Parts {
            name: &self.name,
            shards: &refs,
            meta: &self.meta,
        })
    }
}

impl GraphSnapshot for ShardedView {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn features(&self) -> EngineFeatures {
        self.with_parts(|p| p.features())
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn resolve_vertex(&self, canonical: u64) -> Option<Vid> {
        self.with_parts(|p| p.resolve_vertex(canonical))
    }

    fn resolve_edge(&self, canonical: u64) -> Option<Eid> {
        self.with_parts(|p| p.resolve_edge(canonical))
    }

    fn vertex_count(&self, ctx: &QueryCtx) -> GdbResult<u64> {
        self.with_parts(|p| p.vertex_count(ctx))
    }

    fn edge_count(&self, ctx: &QueryCtx) -> GdbResult<u64> {
        self.with_parts(|p| p.edge_count(ctx))
    }

    fn edge_label_set(&self, ctx: &QueryCtx) -> GdbResult<Vec<String>> {
        self.with_parts(|p| p.edge_label_set(ctx))
    }

    fn vertices_with_property(
        &self,
        name: &str,
        value: &Value,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Vid>> {
        self.with_parts(|p| p.vertices_with_property(name, value, ctx))
    }

    fn edges_with_property(
        &self,
        name: &str,
        value: &Value,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Eid>> {
        self.with_parts(|p| p.edges_with_property(name, value, ctx))
    }

    fn edges_with_label(&self, label: &str, ctx: &QueryCtx) -> GdbResult<Vec<Eid>> {
        self.with_parts(|p| p.edges_with_label(label, ctx))
    }

    fn vertex(&self, v: Vid) -> GdbResult<Option<VertexData>> {
        self.with_parts(|p| p.vertex(v))
    }

    fn edge(&self, e: Eid) -> GdbResult<Option<EdgeData>> {
        self.with_parts(|p| p.edge(e))
    }

    fn neighbors(
        &self,
        v: Vid,
        dir: Direction,
        label: Option<&str>,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Vid>> {
        self.with_parts(|p| p.neighbors(v, dir, label, ctx))
    }

    fn vertex_edges(
        &self,
        v: Vid,
        dir: Direction,
        label: Option<&str>,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<EdgeRef>> {
        self.with_parts(|p| p.vertex_edges(v, dir, label, ctx))
    }

    fn vertex_degree(&self, v: Vid, dir: Direction, ctx: &QueryCtx) -> GdbResult<u64> {
        self.with_parts(|p| p.vertex_degree(v, dir, ctx))
    }

    fn vertex_edge_labels(&self, v: Vid, dir: Direction, ctx: &QueryCtx) -> GdbResult<Vec<String>> {
        self.with_parts(|p| p.vertex_edge_labels(v, dir, ctx))
    }

    fn degree_scan(&self, dir: Direction, k: u64, ctx: &QueryCtx) -> GdbResult<Vec<Vid>> {
        self.with_parts(|p| p.degree_scan(dir, k, ctx))
    }

    fn distinct_neighbor_scan(&self, dir: Direction, ctx: &QueryCtx) -> GdbResult<Vec<Vid>> {
        self.with_parts(|p| p.distinct_neighbor_scan(dir, ctx))
    }

    fn scan_vertices<'a>(
        &'a self,
        ctx: &'a QueryCtx,
    ) -> GdbResult<Box<dyn Iterator<Item = GdbResult<Vid>> + 'a>> {
        let items = self.with_parts(|p| p.scan_vertices(ctx))?;
        Ok(Box::new(items.into_iter()))
    }

    fn scan_edges<'a>(
        &'a self,
        ctx: &'a QueryCtx,
    ) -> GdbResult<Box<dyn Iterator<Item = GdbResult<Eid>> + 'a>> {
        let items = self.with_parts(|p| p.scan_edges(ctx))?;
        Ok(Box::new(items.into_iter()))
    }

    fn vertex_property(&self, v: Vid, name: &str) -> GdbResult<Option<Value>> {
        self.with_parts(|p| p.vertex_property(v, name))
    }

    fn edge_property(&self, e: Eid, name: &str) -> GdbResult<Option<Value>> {
        self.with_parts(|p| p.edge_property(e, name))
    }

    fn edge_endpoints(&self, e: Eid) -> GdbResult<Option<(Vid, Vid)>> {
        self.with_parts(|p| p.edge_endpoints(e))
    }

    fn edge_label(&self, e: Eid) -> GdbResult<Option<String>> {
        self.with_parts(|p| p.edge_label(e))
    }

    fn vertex_label(&self, v: Vid) -> GdbResult<Option<String>> {
        self.with_parts(|p| p.vertex_label(v))
    }

    fn has_vertex_index(&self, prop: &str) -> bool {
        self.with_parts(|p| p.has_vertex_index(prop))
    }

    fn space(&self) -> SpaceReport {
        self.with_parts(|p| p.space())
    }
}
