//! Snapshot-mode sharding: one [`SnapshotSource`] cell per shard.
//!
//! [`ShardedSource`] composes `N` independent snapshot cells (one `CowCell`
//! or `FreezeCell` per shard) behind the same [`SnapshotSource`] interface
//! the driver, the fig8/fig10 harnesses, and the gm-net server already
//! host. The properties that matter:
//!
//! * **Writers to different shards do not serialize.** `with_write` hands
//!   the closure a routing handle whose every mutation enters only the
//!   target cell's writer mutex — there is no composite-wide writer lock.
//! * **Pins are consistent.** A composite pin takes one epoch view per
//!   cell plus a copy of the routing meta, all under a seqlock
//!   ([`ShardedSource::topo`]): multi-shard topology changes (ghost
//!   creation, vertex removal, bulk load) hold the meta writer lock and
//!   flip the seqlock odd, so a pin that raced one **retries** instead of
//!   returning a torn view (an edge pointing at a ghost the meta cannot
//!   translate) — and every topology change **publishes the cells it
//!   mutated before releasing the seqlock**, so the new meta can never be
//!   paired with a staleness-bounded view from before the change.
//!   Independent single-shard writes may land between two cells' pins —
//!   the composite then shows a state in which some of those writes
//!   happened and others not yet, which is a legal interleaving of
//!   single-shard atomic writes, never a torn multi-shard operation.
//! * **Composite epochs are monotone.** The composite epoch is the minimum
//!   over the shard epochs (the newest version every shard has published);
//!   each cell's epochs are monotone, so the minimum is too.
//!
//! Canonical-id resolution maps are purged without the seqlock on plain
//! edge removals (resolution is setup-path machinery, run before the
//! measured region); the correctness-critical ghost maps only ever change
//! under the seqlock.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{RwLock, RwLockWriteGuard};
use std::time::Duration;

use gm_model::api::{
    Direction, EdgeData, EdgeRef, EngineFeatures, GraphDb, GraphSnapshot, LoadOptions, LoadStats,
    SpaceReport, VertexData,
};
use gm_model::lockorder::{self, LockRank, LockToken};
use gm_model::{lockwait, Dataset, Eid, GdbError, GdbResult, Props, QueryCtx, Value, Vid};
use gm_mvcc::{KeyRecorder, SnapshotSource, TxnKey, TxnLog};
use gm_obs::{Counter, Gauge};

use crate::route::{
    build_meta, decode_eid, decode_vid, encode_eid, encode_vid, partition, Meta, GHOST_LABEL,
};
use crate::view::ShardedView;

/// Staleness bound used when a cross-shard write needs a quick look at
/// another shard (endpoint validation): a recent pin is an `Arc` clone,
/// a strict pin would force a publish per cut edge.
const PEEK_STALENESS: Duration = gm_workload::SNAPSHOT_PIN_STALENESS;

fn poisoned(what: &str) -> GdbError {
    GdbError::Poisoned(format!(
        "sharded source {what} lock poisoned by a panicking writer"
    ))
}

/// How one shard cell is pinned (strict `snapshot` or `snapshot_recent`).
type PinFn<'a> = dyn Fn(&dyn SnapshotSource) -> GdbResult<Box<dyn GraphSnapshot>> + 'a;

/// Registry handles for one composite, resolved at construction and `None`
/// under `GM_OBS=off`. The per-shard op counters (`shard.{i}.ops`) count
/// writes routed to each partition — the balance figure the server's
/// periodic stats line reports; composites of the same shard count share
/// names and aggregate.
pub(crate) struct ShardMetrics {
    pub(crate) shard_ops: Vec<Counter>,
    pub(crate) pins: Counter,
    /// Composite pins that had to retry (or wait out) a topology change.
    pub(crate) seqlock_retries: Counter,
    pub(crate) ghost_creations: Counter,
    /// Depth of the deferred resolution-map purge queue (locked composite
    /// only; snapshot composites purge eagerly under their topology guard).
    pub(crate) pending_purges: Gauge,
}

impl ShardMetrics {
    pub(crate) fn new(shards: usize) -> Option<ShardMetrics> {
        if !gm_obs::counters_on() {
            return None;
        }
        let g = gm_obs::global();
        Some(ShardMetrics {
            shard_ops: (0..shards)
                .map(|i| g.counter(&format!("shard.{i}.ops")))
                .collect(),
            pins: g.counter("shard.pins"),
            seqlock_retries: g.counter("shard.seqlock_retries"),
            ghost_creations: g.counter("shard.ghost_creations"),
            pending_purges: g.gauge("shard.pending_purges"),
        })
    }

    pub(crate) fn note_op(&self, s: usize) {
        self.shard_ops[s].inc();
    }
}

/// `N` snapshot cells + routing meta behind one [`SnapshotSource`].
pub struct ShardedSource {
    name: String,
    kind: &'static str,
    cells: Vec<Box<dyn SnapshotSource>>,
    meta: RwLock<Meta>,
    /// Seqlock word: odd while a multi-shard topology change is in flight.
    /// Only the holder of the `meta` writer lock flips it, so odd/even
    /// transitions are serialized.
    topo: AtomicU64,
    /// Round-robin placement counter for dynamically added vertices.
    spread: AtomicU64,
    metrics: Option<ShardMetrics>,
    /// Commit log for txn conflict detection, in **composite** id space
    /// (the per-cell logs record shard-local ids and are unused here).
    txn_log: TxnLog,
}

impl ShardedSource {
    /// Compose `shards` fresh cells from `make`.
    ///
    /// Panics if `shards == 0`.
    pub fn from_factory(shards: usize, make: impl Fn() -> Box<dyn SnapshotSource>) -> Self {
        assert!(shards >= 1, "a sharded source needs at least one shard");
        let cells: Vec<Box<dyn SnapshotSource>> = (0..shards).map(|_| make()).collect();
        let kind = match cells[0].kind() {
            "cow" => "sharded-cow",
            "native" => "sharded-native",
            _ => "sharded",
        };
        ShardedSource {
            name: format!("{}/s{shards}", cells[0].engine()),
            kind,
            cells,
            meta: RwLock::new(Meta::new(shards)),
            topo: AtomicU64::new(0),
            spread: AtomicU64::new(0),
            metrics: ShardMetrics::new(shards),
            txn_log: TxnLog::new(),
        }
    }

    /// Number of partitions.
    pub fn shard_count(&self) -> usize {
        self.cells.len()
    }

    /// Pin a composite view, retrying while a topology change is in flight
    /// (see the module docs for the consistency argument).
    fn pin_view(&self, pin: &PinFn<'_>) -> GdbResult<ShardedView> {
        loop {
            let before = self.topo.load(Ordering::SeqCst);
            if before % 2 == 1 {
                // A topology change is in flight; its holder owns the meta
                // writer lock, so parking on the reader side sleeps until
                // it finishes instead of burning a core (a bulk load can
                // hold the seqlock odd for seconds).
                if let Some(m) = &self.metrics {
                    m.seqlock_retries.inc();
                }
                {
                    // gm-lock: meta transient
                    let _t = lockorder::acquire(LockRank::Meta, "gm-shard/source.rs seqlock park");
                    drop(self.meta.read().map_err(|_| poisoned("meta read"))?);
                }
                std::thread::yield_now();
                continue;
            }
            let mut shards = Vec::with_capacity(self.cells.len());
            for cell in &self.cells {
                shards.push(pin(cell.as_ref())?);
            }
            let meta = {
                // gm-lock: meta
                let _t = lockorder::acquire(LockRank::Meta, "gm-shard/source.rs pin meta clone");
                lockwait::timed(|| self.meta.read())
                    .map_err(|_| poisoned("meta read"))?
                    .clone()
            };
            if self.topo.load(Ordering::SeqCst) == before {
                let epoch = shards.iter().map(|s| s.epoch()).min().unwrap_or(0);
                if let Some(m) = &self.metrics {
                    m.pins.inc();
                }
                return Ok(ShardedView {
                    name: self.name.clone(),
                    shards,
                    meta,
                    epoch,
                });
            }
            // A topology change landed mid-pin: re-pin against the new
            // state (each retry re-pins, so epochs only move forward).
            if let Some(m) = &self.metrics {
                m.seqlock_retries.inc();
            }
        }
    }

    /// Force-publish a cell's pending writes (a strict pin publishes; the
    /// returned view is discarded). Every topology change publishes the
    /// cells it mutated **before its guard releases the seqlock**:
    /// otherwise a later `snapshot_recent` pin could pair the new meta
    /// with a shard view from before the change (the cell write would sit
    /// unpublished for up to the staleness bound) — e.g. a ghost entry
    /// whose vertex the pinned view does not contain yet, turning a read
    /// of an existing vertex into `VertexNotFound`. Publishing inside the
    /// guard makes meta and shard state visible together.
    fn publish_cell(&self, s: usize) -> GdbResult<()> {
        self.cells[s].snapshot().map(|_| ())
    }

    /// Begin a multi-shard topology change: meta writer lock + seqlock odd.
    /// The guard flips the seqlock back even on drop — panic included, so a
    /// failing topology write can never wedge every future pin.
    fn topo_write(&self) -> GdbResult<TopoGuard<'_>> {
        // gm-lock: meta
        let token = lockorder::acquire(LockRank::Meta, "gm-shard/source.rs topology write");
        let meta = lockwait::timed(|| self.meta.write()).map_err(|_| poisoned("meta write"))?;
        self.topo.fetch_add(1, Ordering::SeqCst);
        Ok(TopoGuard {
            meta,
            topo: &self.topo,
            _token: token,
        })
    }
}

/// Holder of an in-flight topology change (see [`ShardedSource::topo_write`]).
struct TopoGuard<'a> {
    meta: RwLockWriteGuard<'a, Meta>,
    topo: &'a AtomicU64,
    /// Rank-stack entry for the meta writer lock; released with the guard.
    _token: LockToken,
}

impl Drop for TopoGuard<'_> {
    fn drop(&mut self) {
        self.topo.fetch_add(1, Ordering::SeqCst);
    }
}

impl SnapshotSource for ShardedSource {
    fn engine(&self) -> String {
        self.name.clone()
    }

    fn kind(&self) -> &'static str {
        self.kind
    }

    fn current_epoch(&self) -> u64 {
        self.cells
            .iter()
            .map(|c| c.current_epoch())
            .min()
            .unwrap_or(0)
    }

    fn snapshot(&self) -> GdbResult<Box<dyn GraphSnapshot>> {
        Ok(Box::new(self.pin_view(&|c| c.snapshot())?))
    }

    fn snapshot_recent(&self, max_staleness: Duration) -> GdbResult<Box<dyn GraphSnapshot>> {
        Ok(Box::new(
            self.pin_view(&|c| c.snapshot_recent(max_staleness))?,
        ))
    }

    fn with_write(&self, f: &mut gm_mvcc::WriteFn<'_>) -> GdbResult<u64> {
        // No composite-wide lock here: the routing handle's mutations enter
        // only the cells they touch. The recorder derives composite-id
        // write-set keys for txn conflict detection, appended on success.
        let mut writer = SourceWriter { src: self };
        let mut rec = KeyRecorder::new(&mut writer);
        let out = f(&mut rec);
        if out.is_ok() {
            self.txn_log.append(rec.take_keys());
        }
        out
    }

    fn txn_log(&self) -> Option<&TxnLog> {
        Some(&self.txn_log)
    }

    /// Cross-shard staged commit: the whole validate → replay → publish
    /// sequence runs under one topology guard (meta writer lock + seqlock
    /// odd), so composite pins park for its duration and the first
    /// unparked pin observes either **all** of the write set (every
    /// mutated cell is published before the seqlock flips even) or none
    /// of it (a conflict aborts before any mutation). Transaction commits
    /// serialize on the meta writer lock, so validation cannot race
    /// another commit's log append. The composite epoch bump is one
    /// event: every touched cell's epoch advances inside the guard.
    fn txn_commit(
        &self,
        start_seq: u64,
        keys: &[TxnKey],
        f: &mut gm_mvcc::WriteFn<'_>,
    ) -> GdbResult<u64> {
        let mut guard = self.topo_write()?;
        self.txn_log.validate(start_seq, keys)?;
        // The staged writer mutates routing meta through the already-held
        // guard — `SourceWriter` would re-enter `topo_write` (ghost
        // creation, vertex removal) and deadlock on the non-reentrant
        // meta lock.
        let mut writer = StagedWriter {
            src: self,
            meta: &mut guard.meta,
            touched: BTreeSet::new(),
        };
        let out = f(&mut writer)?;
        let touched = writer.touched;
        // Publish every mutated cell before the guard releases the
        // seqlock (see `publish_cell`): parked pins must never pair the
        // new meta with a pre-commit cell view, or see a torn subset.
        for s in touched {
            self.publish_cell(s)?;
        }
        self.txn_log.append(keys.to_vec());
        drop(guard);
        Ok(out)
    }
}

/// One-cell write helper: run `f` against shard `s`'s live engine and map
/// its return value out.
fn cell_write<R>(
    cell: &dyn SnapshotSource,
    f: impl FnOnce(&mut dyn GraphDb) -> GdbResult<R>,
) -> GdbResult<R> {
    let mut once = Some(f);
    let mut out = None;
    cell.with_write(&mut |db| {
        let f = once.take().expect("cell write closure runs once");
        out = Some(f(db)?);
        Ok(0)
    })?;
    Ok(out.expect("cell write closure ran"))
}

/// The routing mutation handle handed to [`ShardedSource::with_write`]
/// closures. Also a full [`GraphSnapshot`]: reads pin a strict composite
/// view per call (the write path itself never reads, but `GraphDb`
/// requires the surface — e.g. the net server resolves parameters through
/// it).
struct SourceWriter<'a> {
    src: &'a ShardedSource,
}

impl SourceWriter<'_> {
    fn view(&self) -> GdbResult<ShardedView> {
        self.src.pin_view(&|c| c.snapshot())
    }

    fn n(&self) -> usize {
        self.src.shard_count()
    }

    /// Count a write routed to shard `s` (no-op under `GM_OBS=off`).
    fn note_op(&self, s: usize) {
        if let Some(m) = &self.src.metrics {
            m.note_op(s);
        }
    }
}

impl GraphSnapshot for SourceWriter<'_> {
    fn name(&self) -> String {
        self.src.name.clone()
    }

    fn epoch(&self) -> u64 {
        // Reads through the writer handle pin a fresh strict view per call,
        // so the epoch they observe is the composite's current one — not
        // the trait's "unversioned" 0 default this impl used to fall back
        // to silently.
        self.src.current_epoch()
    }

    fn features(&self) -> EngineFeatures {
        self.view()
            .map(|v| v.features())
            .unwrap_or_else(|_| EngineFeatures {
                name: self.src.name.clone(),
                system_type: "Sharded composite".into(),
                storage: "unavailable".into(),
                edge_traversal: "scatter-gather".into(),
                optimized_adapter: false,
                async_writes: false,
                attribute_indexes: false,
            })
    }

    fn resolve_vertex(&self, canonical: u64) -> Option<Vid> {
        self.view().ok()?.resolve_vertex(canonical)
    }

    fn resolve_edge(&self, canonical: u64) -> Option<Eid> {
        self.view().ok()?.resolve_edge(canonical)
    }

    fn vertex_count(&self, ctx: &QueryCtx) -> GdbResult<u64> {
        self.view()?.vertex_count(ctx)
    }

    fn edge_count(&self, ctx: &QueryCtx) -> GdbResult<u64> {
        self.view()?.edge_count(ctx)
    }

    fn edge_label_set(&self, ctx: &QueryCtx) -> GdbResult<Vec<String>> {
        self.view()?.edge_label_set(ctx)
    }

    fn vertices_with_property(
        &self,
        name: &str,
        value: &Value,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Vid>> {
        self.view()?.vertices_with_property(name, value, ctx)
    }

    fn edges_with_property(
        &self,
        name: &str,
        value: &Value,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Eid>> {
        self.view()?.edges_with_property(name, value, ctx)
    }

    fn edges_with_label(&self, label: &str, ctx: &QueryCtx) -> GdbResult<Vec<Eid>> {
        self.view()?.edges_with_label(label, ctx)
    }

    fn vertex(&self, v: Vid) -> GdbResult<Option<VertexData>> {
        self.view()?.vertex(v)
    }

    fn edge(&self, e: Eid) -> GdbResult<Option<EdgeData>> {
        self.view()?.edge(e)
    }

    fn neighbors(
        &self,
        v: Vid,
        dir: Direction,
        label: Option<&str>,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Vid>> {
        self.view()?.neighbors(v, dir, label, ctx)
    }

    fn vertex_edges(
        &self,
        v: Vid,
        dir: Direction,
        label: Option<&str>,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<EdgeRef>> {
        self.view()?.vertex_edges(v, dir, label, ctx)
    }

    fn vertex_degree(&self, v: Vid, dir: Direction, ctx: &QueryCtx) -> GdbResult<u64> {
        self.view()?.vertex_degree(v, dir, ctx)
    }

    fn vertex_edge_labels(&self, v: Vid, dir: Direction, ctx: &QueryCtx) -> GdbResult<Vec<String>> {
        self.view()?.vertex_edge_labels(v, dir, ctx)
    }

    fn degree_scan(&self, dir: Direction, k: u64, ctx: &QueryCtx) -> GdbResult<Vec<Vid>> {
        // One pinned view for the whole filter: the default decomposition
        // would pin a fresh composite view per `vertex_degree` probe.
        self.view()?.degree_scan(dir, k, ctx)
    }

    fn distinct_neighbor_scan(&self, dir: Direction, ctx: &QueryCtx) -> GdbResult<Vec<Vid>> {
        self.view()?.distinct_neighbor_scan(dir, ctx)
    }

    fn scan_vertices<'a>(
        &'a self,
        ctx: &'a QueryCtx,
    ) -> GdbResult<Box<dyn Iterator<Item = GdbResult<Vid>> + 'a>> {
        let view = self.view()?;
        let mut items = Vec::new();
        for item in view.scan_vertices(ctx)? {
            items.push(item);
        }
        Ok(Box::new(items.into_iter()))
    }

    fn scan_edges<'a>(
        &'a self,
        ctx: &'a QueryCtx,
    ) -> GdbResult<Box<dyn Iterator<Item = GdbResult<Eid>> + 'a>> {
        let view = self.view()?;
        let mut items = Vec::new();
        for item in view.scan_edges(ctx)? {
            items.push(item);
        }
        Ok(Box::new(items.into_iter()))
    }

    fn vertex_property(&self, v: Vid, name: &str) -> GdbResult<Option<Value>> {
        self.view()?.vertex_property(v, name)
    }

    fn edge_property(&self, e: Eid, name: &str) -> GdbResult<Option<Value>> {
        self.view()?.edge_property(e, name)
    }

    fn edge_endpoints(&self, e: Eid) -> GdbResult<Option<(Vid, Vid)>> {
        self.view()?.edge_endpoints(e)
    }

    fn edge_label(&self, e: Eid) -> GdbResult<Option<String>> {
        self.view()?.edge_label(e)
    }

    fn vertex_label(&self, v: Vid) -> GdbResult<Option<String>> {
        self.view()?.vertex_label(v)
    }

    fn has_vertex_index(&self, prop: &str) -> bool {
        self.view()
            .map(|v| v.has_vertex_index(prop))
            .unwrap_or(false)
    }

    fn space(&self) -> SpaceReport {
        self.view().map(|v| v.space()).unwrap_or_default()
    }
}

impl GraphDb for SourceWriter<'_> {
    fn bulk_load(&mut self, data: &Dataset, opts: &LoadOptions) -> GdbResult<LoadStats> {
        let n = self.n();
        let mut guard = self.src.topo_write()?;
        let parts = partition(data, n)?;
        for (s, sub) in parts.subs.iter().enumerate() {
            cell_write(self.src.cells[s].as_ref(), |db| db.bulk_load(sub, opts))?;
        }
        // Strict pins publish the freshly loaded state so the canonical ids
        // resolve; composite pins are excluded by the seqlock meanwhile.
        let views: Vec<Box<dyn GraphSnapshot>> = self
            .src
            .cells
            .iter()
            .map(|c| c.snapshot())
            .collect::<GdbResult<_>>()?;
        let refs: Vec<&dyn GraphSnapshot> = views.iter().map(|v| v.as_ref()).collect();
        *guard.meta = build_meta(&parts, &refs)?;
        Ok(LoadStats {
            vertices: data.vertex_count() as u64,
            edges: data.edge_count() as u64,
        })
    }

    fn add_vertex(&mut self, label: &str, props: &Props) -> GdbResult<Vid> {
        let n = self.n();
        // gm-check: relaxed(round-robin placement counter: any interleaving is a valid placement)
        let s = (self.src.spread.fetch_add(1, Ordering::Relaxed) % n as u64) as usize;
        self.note_op(s);
        let local = cell_write(self.src.cells[s].as_ref(), |db| db.add_vertex(label, props))?;
        Ok(encode_vid(local, s, n))
    }

    fn add_edge(&mut self, src: Vid, dst: Vid, label: &str, props: &Props) -> GdbResult<Eid> {
        let n = self.n();
        let (local_src, s) = decode_vid(src, n);
        self.note_op(s);
        let (local_dst_owner, dst_shard) = decode_vid(dst, n);
        let local_dst = if dst_shard == s {
            local_dst_owner
        } else {
            // Validate the remote endpoint: a recent pin first (an `Arc`
            // clone), then a strict pin before declaring it missing — the
            // vertex may be younger than the staleness bound.
            let seen = self.src.cells[dst_shard]
                .snapshot_recent(PEEK_STALENESS)?
                .vertex(local_dst_owner)?
                .is_some()
                || self.src.cells[dst_shard]
                    .snapshot()?
                    .vertex(local_dst_owner)?
                    .is_some();
            if !seen {
                return Err(GdbError::VertexNotFound(dst.0));
            }
            let existing = {
                // gm-lock: meta
                let _t = lockorder::acquire(LockRank::Meta, "gm-shard/source.rs ghost lookup");
                let meta =
                    lockwait::timed(|| self.src.meta.read()).map_err(|_| poisoned("meta read"))?;
                meta.ghosts[s].get(&dst.0).copied()
            };
            match existing {
                Some(ghost) => ghost,
                None => {
                    // Ghost creation is a topology change: the ghost vertex
                    // and its meta entry must become visible atomically, or
                    // a pin could see an edge it cannot translate.
                    let mut guard = self.src.topo_write()?;
                    match guard.meta.ghosts[s].get(&dst.0).copied() {
                        Some(ghost) => ghost, // raced another writer: reuse
                        None => {
                            let ghost = cell_write(self.src.cells[s].as_ref(), |db| {
                                db.add_vertex(GHOST_LABEL, &Vec::new())
                            })?;
                            guard.meta.ghosts[s].insert(dst.0, ghost);
                            guard.meta.rev[s].insert(ghost.0, dst.0);
                            if let Some(m) = &self.src.metrics {
                                m.ghost_creations.inc();
                            }
                            // The new ghost must be published before the
                            // guard releases (see `publish_cell`).
                            self.src.publish_cell(s)?;
                            ghost
                        }
                    }
                }
            }
        };
        let local = cell_write(self.src.cells[s].as_ref(), |db| {
            db.add_edge(local_src, local_dst, label, props)
        })?;
        Ok(encode_eid(local, s, n))
    }

    fn set_vertex_property(&mut self, v: Vid, name: &str, value: Value) -> GdbResult<()> {
        let (local, owner) = decode_vid(v, self.n());
        self.note_op(owner);
        cell_write(self.src.cells[owner].as_ref(), |db| {
            db.set_vertex_property(local, name, value)
        })
    }

    fn set_edge_property(&mut self, e: Eid, name: &str, value: Value) -> GdbResult<()> {
        let (local, s) = decode_eid(e, self.n());
        self.note_op(s);
        cell_write(self.src.cells[s].as_ref(), |db| {
            db.set_edge_property(local, name, value)
        })
    }

    fn remove_vertex(&mut self, v: Vid) -> GdbResult<()> {
        let n = self.n();
        let (local, owner) = decode_vid(v, n);
        self.note_op(owner);
        // Whole-vertex removal spans shards: exclude pins for its duration.
        let mut guard = self.src.topo_write()?;
        let ctx = QueryCtx::unbounded();
        // Incident edges (for resolution-map purging), gathered from strict
        // per-cell pins before anything is removed.
        let mut dead_edges: Vec<Eid> = Vec::new();
        for s in 0..n {
            let present = if s == owner {
                Some(local)
            } else {
                guard.meta.ghosts[s].get(&v.0).copied()
            };
            if let Some(lv) = present {
                let snap = self.src.cells[s].snapshot()?;
                if snap.vertex(lv)?.is_some() {
                    for r in snap.vertex_edges(lv, Direction::Both, None, &ctx)? {
                        dead_edges.push(encode_eid(r.eid, s, n));
                    }
                }
            }
        }
        let mut touched = vec![owner];
        cell_write(self.src.cells[owner].as_ref(), |db| db.remove_vertex(local))?;
        for s in 0..n {
            if s == owner {
                continue;
            }
            if let Some(ghost) = guard.meta.ghosts[s].remove(&v.0) {
                guard.meta.rev[s].remove(&ghost.0);
                cell_write(self.src.cells[s].as_ref(), |db| db.remove_vertex(ghost))?;
                touched.push(s);
            }
        }
        for e in dead_edges {
            guard.meta.purge_edge(e);
        }
        guard.meta.purge_vertex(v);
        // Publish every mutated cell before the guard releases (see
        // `publish_cell`): the ghost-free meta must never be paired with a
        // pinned view in which the ghosts still exist.
        for s in touched {
            self.src.publish_cell(s)?;
        }
        Ok(())
    }

    fn remove_edge(&mut self, e: Eid) -> GdbResult<()> {
        let (local, s) = decode_eid(e, self.n());
        self.note_op(s);
        cell_write(self.src.cells[s].as_ref(), |db| db.remove_edge(local))?;
        // Resolution-map purge without the seqlock: a pin may briefly keep
        // resolving the dead canonical id (and find the edge gone) — the
        // same answer an unsharded engine racing the removal gives.
        {
            // gm-lock: meta
            let _t = lockorder::acquire(LockRank::Meta, "gm-shard/source.rs purge meta write");
            lockwait::timed(|| self.src.meta.write())
                .map_err(|_| poisoned("meta write"))?
                .purge_edge(e);
        }
        Ok(())
    }

    fn remove_vertex_property(&mut self, v: Vid, name: &str) -> GdbResult<Option<Value>> {
        let (local, owner) = decode_vid(v, self.n());
        self.note_op(owner);
        cell_write(self.src.cells[owner].as_ref(), |db| {
            db.remove_vertex_property(local, name)
        })
    }

    fn remove_edge_property(&mut self, e: Eid, name: &str) -> GdbResult<Option<Value>> {
        let (local, s) = decode_eid(e, self.n());
        self.note_op(s);
        cell_write(self.src.cells[s].as_ref(), |db| {
            db.remove_edge_property(local, name)
        })
    }

    fn create_vertex_index(&mut self, prop: &str) -> GdbResult<()> {
        for cell in &self.src.cells {
            cell_write(cell.as_ref(), |db| db.create_vertex_index(prop))?;
        }
        Ok(())
    }

    fn sync(&mut self) -> GdbResult<()> {
        for cell in &self.src.cells {
            cell_write(cell.as_ref(), |db| db.sync())?;
        }
        Ok(())
    }
}

/// The routing handle for a staged transaction commit
/// ([`ShardedSource::txn_commit`]). Unlike [`SourceWriter`] it runs with
/// the topology guard **already held**: routing meta is mutated through
/// the guard's `&mut Meta` (never by re-entering `topo_write`, which would
/// deadlock on the non-reentrant meta lock), and every cell it mutates is
/// recorded so the commit can publish exactly those before the seqlock
/// flips even.
///
/// Reads build a composite view from strict per-cell pins plus a clone of
/// the held meta — **not** [`ShardedSource::pin_view`], which would park
/// forever on this commit's own odd seqlock. Commit replay never reads
/// (the write set was buffered against the txn's pinned base), so this
/// path only exists to satisfy the `GraphDb: GraphSnapshot` surface.
struct StagedWriter<'a, 'm> {
    src: &'a ShardedSource,
    meta: &'m mut Meta,
    /// Shards whose cells this commit mutated.
    touched: BTreeSet<usize>,
}

impl StagedWriter<'_, '_> {
    fn view(&self) -> GdbResult<ShardedView> {
        let shards: Vec<Box<dyn GraphSnapshot>> = self
            .src
            .cells
            .iter()
            .map(|c| c.snapshot())
            .collect::<GdbResult<_>>()?;
        let epoch = shards.iter().map(|s| s.epoch()).min().unwrap_or(0);
        Ok(ShardedView {
            name: self.src.name.clone(),
            shards,
            meta: self.meta.clone(),
            epoch,
        })
    }

    fn n(&self) -> usize {
        self.src.shard_count()
    }

    fn note_op(&self, s: usize) {
        if let Some(m) = &self.src.metrics {
            m.note_op(s);
        }
    }
}

impl GraphSnapshot for StagedWriter<'_, '_> {
    fn name(&self) -> String {
        self.src.name.clone()
    }

    fn epoch(&self) -> u64 {
        self.src.current_epoch()
    }

    fn features(&self) -> EngineFeatures {
        self.view()
            .map(|v| v.features())
            .unwrap_or_else(|_| EngineFeatures {
                name: self.src.name.clone(),
                system_type: "Sharded composite".into(),
                storage: "unavailable".into(),
                edge_traversal: "scatter-gather".into(),
                optimized_adapter: false,
                async_writes: false,
                attribute_indexes: false,
            })
    }

    fn resolve_vertex(&self, canonical: u64) -> Option<Vid> {
        self.view().ok()?.resolve_vertex(canonical)
    }

    fn resolve_edge(&self, canonical: u64) -> Option<Eid> {
        self.view().ok()?.resolve_edge(canonical)
    }

    fn vertex_count(&self, ctx: &QueryCtx) -> GdbResult<u64> {
        self.view()?.vertex_count(ctx)
    }

    fn edge_count(&self, ctx: &QueryCtx) -> GdbResult<u64> {
        self.view()?.edge_count(ctx)
    }

    fn edge_label_set(&self, ctx: &QueryCtx) -> GdbResult<Vec<String>> {
        self.view()?.edge_label_set(ctx)
    }

    fn vertices_with_property(
        &self,
        name: &str,
        value: &Value,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Vid>> {
        self.view()?.vertices_with_property(name, value, ctx)
    }

    fn edges_with_property(
        &self,
        name: &str,
        value: &Value,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Eid>> {
        self.view()?.edges_with_property(name, value, ctx)
    }

    fn edges_with_label(&self, label: &str, ctx: &QueryCtx) -> GdbResult<Vec<Eid>> {
        self.view()?.edges_with_label(label, ctx)
    }

    fn vertex(&self, v: Vid) -> GdbResult<Option<VertexData>> {
        self.view()?.vertex(v)
    }

    fn edge(&self, e: Eid) -> GdbResult<Option<EdgeData>> {
        self.view()?.edge(e)
    }

    fn neighbors(
        &self,
        v: Vid,
        dir: Direction,
        label: Option<&str>,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Vid>> {
        self.view()?.neighbors(v, dir, label, ctx)
    }

    fn vertex_edges(
        &self,
        v: Vid,
        dir: Direction,
        label: Option<&str>,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<EdgeRef>> {
        self.view()?.vertex_edges(v, dir, label, ctx)
    }

    fn vertex_degree(&self, v: Vid, dir: Direction, ctx: &QueryCtx) -> GdbResult<u64> {
        self.view()?.vertex_degree(v, dir, ctx)
    }

    fn vertex_edge_labels(&self, v: Vid, dir: Direction, ctx: &QueryCtx) -> GdbResult<Vec<String>> {
        self.view()?.vertex_edge_labels(v, dir, ctx)
    }

    fn degree_scan(&self, dir: Direction, k: u64, ctx: &QueryCtx) -> GdbResult<Vec<Vid>> {
        self.view()?.degree_scan(dir, k, ctx)
    }

    fn distinct_neighbor_scan(&self, dir: Direction, ctx: &QueryCtx) -> GdbResult<Vec<Vid>> {
        self.view()?.distinct_neighbor_scan(dir, ctx)
    }

    fn scan_vertices<'a>(
        &'a self,
        ctx: &'a QueryCtx,
    ) -> GdbResult<Box<dyn Iterator<Item = GdbResult<Vid>> + 'a>> {
        let view = self.view()?;
        let mut items = Vec::new();
        for item in view.scan_vertices(ctx)? {
            items.push(item);
        }
        Ok(Box::new(items.into_iter()))
    }

    fn scan_edges<'a>(
        &'a self,
        ctx: &'a QueryCtx,
    ) -> GdbResult<Box<dyn Iterator<Item = GdbResult<Eid>> + 'a>> {
        let view = self.view()?;
        let mut items = Vec::new();
        for item in view.scan_edges(ctx)? {
            items.push(item);
        }
        Ok(Box::new(items.into_iter()))
    }

    fn vertex_property(&self, v: Vid, name: &str) -> GdbResult<Option<Value>> {
        self.view()?.vertex_property(v, name)
    }

    fn edge_property(&self, e: Eid, name: &str) -> GdbResult<Option<Value>> {
        self.view()?.edge_property(e, name)
    }

    fn edge_endpoints(&self, e: Eid) -> GdbResult<Option<(Vid, Vid)>> {
        self.view()?.edge_endpoints(e)
    }

    fn edge_label(&self, e: Eid) -> GdbResult<Option<String>> {
        self.view()?.edge_label(e)
    }

    fn vertex_label(&self, v: Vid) -> GdbResult<Option<String>> {
        self.view()?.vertex_label(v)
    }

    fn has_vertex_index(&self, prop: &str) -> bool {
        self.view()
            .map(|v| v.has_vertex_index(prop))
            .unwrap_or(false)
    }

    fn space(&self) -> SpaceReport {
        self.view().map(|v| v.space()).unwrap_or_default()
    }
}

impl GraphDb for StagedWriter<'_, '_> {
    fn bulk_load(&mut self, _data: &Dataset, _opts: &LoadOptions) -> GdbResult<LoadStats> {
        Err(GdbError::Unsupported(
            "bulk load inside a transaction commit".into(),
        ))
    }

    fn add_vertex(&mut self, label: &str, props: &Props) -> GdbResult<Vid> {
        let n = self.n();
        // gm-check: relaxed(round-robin placement counter: any interleaving is a valid placement)
        let s = (self.src.spread.fetch_add(1, Ordering::Relaxed) % n as u64) as usize;
        self.note_op(s);
        let local = cell_write(self.src.cells[s].as_ref(), |db| db.add_vertex(label, props))?;
        self.touched.insert(s);
        Ok(encode_vid(local, s, n))
    }

    fn add_edge(&mut self, src: Vid, dst: Vid, label: &str, props: &Props) -> GdbResult<Eid> {
        let n = self.n();
        let (local_src, s) = decode_vid(src, n);
        self.note_op(s);
        let (local_dst_owner, dst_shard) = decode_vid(dst, n);
        let local_dst = if dst_shard == s {
            local_dst_owner
        } else {
            match self.meta.ghosts[s].get(&dst.0).copied() {
                Some(ghost) => ghost,
                None => {
                    // Validate the remote endpoint with a strict cell pin
                    // (cell-level only — never `pin_view`, which would park
                    // on this commit's own seqlock). A vertex created
                    // earlier in this replay is published by the pin.
                    let seen = self.src.cells[dst_shard]
                        .snapshot()?
                        .vertex(local_dst_owner)?
                        .is_some();
                    if !seen {
                        return Err(GdbError::VertexNotFound(dst.0));
                    }
                    let ghost = cell_write(self.src.cells[s].as_ref(), |db| {
                        db.add_vertex(GHOST_LABEL, &Vec::new())
                    })?;
                    self.meta.ghosts[s].insert(dst.0, ghost);
                    self.meta.rev[s].insert(ghost.0, dst.0);
                    if let Some(m) = &self.src.metrics {
                        m.ghost_creations.inc();
                    }
                    self.touched.insert(s);
                    ghost
                }
            }
        };
        let local = cell_write(self.src.cells[s].as_ref(), |db| {
            db.add_edge(local_src, local_dst, label, props)
        })?;
        self.touched.insert(s);
        Ok(encode_eid(local, s, n))
    }

    fn set_vertex_property(&mut self, v: Vid, name: &str, value: Value) -> GdbResult<()> {
        let (local, owner) = decode_vid(v, self.n());
        self.note_op(owner);
        cell_write(self.src.cells[owner].as_ref(), |db| {
            db.set_vertex_property(local, name, value)
        })?;
        self.touched.insert(owner);
        Ok(())
    }

    fn set_edge_property(&mut self, e: Eid, name: &str, value: Value) -> GdbResult<()> {
        let (local, s) = decode_eid(e, self.n());
        self.note_op(s);
        cell_write(self.src.cells[s].as_ref(), |db| {
            db.set_edge_property(local, name, value)
        })?;
        self.touched.insert(s);
        Ok(())
    }

    fn remove_vertex(&mut self, v: Vid) -> GdbResult<()> {
        let n = self.n();
        let (local, owner) = decode_vid(v, n);
        self.note_op(owner);
        let ctx = QueryCtx::unbounded();
        // Incident edges for resolution-map purging, gathered from strict
        // per-cell pins before anything is removed (same sequence as
        // `SourceWriter::remove_vertex`, minus its topology guard — ours
        // is already held).
        let mut dead_edges: Vec<Eid> = Vec::new();
        for s in 0..n {
            let present = if s == owner {
                Some(local)
            } else {
                self.meta.ghosts[s].get(&v.0).copied()
            };
            if let Some(lv) = present {
                let snap = self.src.cells[s].snapshot()?;
                if snap.vertex(lv)?.is_some() {
                    for r in snap.vertex_edges(lv, Direction::Both, None, &ctx)? {
                        dead_edges.push(encode_eid(r.eid, s, n));
                    }
                }
            }
        }
        cell_write(self.src.cells[owner].as_ref(), |db| db.remove_vertex(local))?;
        self.touched.insert(owner);
        for s in 0..n {
            if s == owner {
                continue;
            }
            if let Some(ghost) = self.meta.ghosts[s].remove(&v.0) {
                self.meta.rev[s].remove(&ghost.0);
                cell_write(self.src.cells[s].as_ref(), |db| db.remove_vertex(ghost))?;
                self.touched.insert(s);
            }
        }
        for e in dead_edges {
            self.meta.purge_edge(e);
        }
        self.meta.purge_vertex(v);
        Ok(())
    }

    fn remove_edge(&mut self, e: Eid) -> GdbResult<()> {
        let (local, s) = decode_eid(e, self.n());
        self.note_op(s);
        cell_write(self.src.cells[s].as_ref(), |db| db.remove_edge(local))?;
        self.touched.insert(s);
        self.meta.purge_edge(e);
        Ok(())
    }

    fn remove_vertex_property(&mut self, v: Vid, name: &str) -> GdbResult<Option<Value>> {
        let (local, owner) = decode_vid(v, self.n());
        self.note_op(owner);
        let out = cell_write(self.src.cells[owner].as_ref(), |db| {
            db.remove_vertex_property(local, name)
        })?;
        self.touched.insert(owner);
        Ok(out)
    }

    fn remove_edge_property(&mut self, e: Eid, name: &str) -> GdbResult<Option<Value>> {
        let (local, s) = decode_eid(e, self.n());
        self.note_op(s);
        let out = cell_write(self.src.cells[s].as_ref(), |db| {
            db.remove_edge_property(local, name)
        })?;
        self.touched.insert(s);
        Ok(out)
    }

    fn create_vertex_index(&mut self, _prop: &str) -> GdbResult<()> {
        Err(GdbError::Unsupported(
            "create_vertex_index inside a transaction commit".into(),
        ))
    }

    fn sync(&mut self) -> GdbResult<()> {
        for (s, cell) in self.src.cells.iter().enumerate() {
            cell_write(cell.as_ref(), |db| db.sync())?;
            self.touched.insert(s);
        }
        Ok(())
    }
}
