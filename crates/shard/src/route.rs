//! Partitioning scheme and routing metadata.
//!
//! ## Id scheme
//!
//! A composite id interleaves the shard index into the low digits of the
//! inner engine's id: `composite = local * N + shard`. Decoding is two
//! integer ops, any shard count works (no bit budget), and with `N = 1` the
//! composite ids *are* the inner ids — the 1-shard composite is bit-
//! compatible with the unsharded engine, which the equivalence suite
//! exploits.
//!
//! ## Vertex placement
//!
//! Bulk-loaded vertices are placed by a hash of their canonical id
//! ([`shard_of_canonical`]), so placement is deterministic for a dataset
//! regardless of load order. Dynamically added vertices (no canonical id)
//! are spread round-robin by the composite's atomic counter.
//!
//! ## Cut edges and ghost vertices
//!
//! Every edge is stored on exactly one shard: the shard **owning its source
//! vertex** (so all out-edges of a vertex are local to its owner — `out()`
//! never crosses a shard). When the destination lives elsewhere, the source
//! shard materializes a **ghost vertex** — a placeholder with the reserved
//! label [`GHOST_LABEL`], no properties, and never any out-edges — to stand
//! in for the remote endpoint. The [`Meta`] maps translate between a
//! ghost's shard-local id and the true composite id of the vertex it
//! shadows. In-direction queries (`in()`, `both()`, in-degree) gather over
//! every shard where the vertex has a presence (its owner plus every shard
//! holding a ghost of it), which is exactly the set of shards that can
//! store edges pointing at it.
//!
//! Ghosts are invisible: scans filter them, counts subtract them, property
//! and label searches cannot match them (no properties, reserved label),
//! and every id leaving the composite is translated back to the true
//! composite id. Removing a vertex removes its ghosts (and their in-edges)
//! everywhere.

use gm_model::api::GraphSnapshot;
use gm_model::fxmap::FxHashMap;
use gm_model::{Dataset, Eid, GdbError, GdbResult, Vid};

/// Reserved label of ghost vertices. No generator or workload uses it; a
/// user dataset that does would make ghosts indistinguishable from data,
/// so [`partition`] rejects it.
pub const GHOST_LABEL: &str = "__gm_ghost__";

/// Which shard owns a bulk-loaded vertex (splitmix64 of the canonical id,
/// reduced mod the shard count) — deterministic, load-order independent,
/// and well spread even for the generators' dense sequential ids.
pub fn shard_of_canonical(canonical: u64, shards: usize) -> usize {
    (splitmix64(canonical) % shards as u64) as usize
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Compose a shard-local vertex id into the composite id space.
pub fn encode_vid(local: Vid, shard: usize, shards: usize) -> Vid {
    Vid(local.0 * shards as u64 + shard as u64)
}

/// Split a composite vertex id into (shard-local id, shard index).
pub fn decode_vid(v: Vid, shards: usize) -> (Vid, usize) {
    (Vid(v.0 / shards as u64), (v.0 % shards as u64) as usize)
}

/// Compose a shard-local edge id into the composite id space.
pub fn encode_eid(local: Eid, shard: usize, shards: usize) -> Eid {
    Eid(local.0 * shards as u64 + shard as u64)
}

/// Split a composite edge id into (shard-local id, shard index).
pub fn decode_eid(e: Eid, shards: usize) -> (Eid, usize) {
    (Eid(e.0 / shards as u64), (e.0 % shards as u64) as usize)
}

/// Routing metadata shared by the locked composite and pinned views.
///
/// Cloned wholesale into every pinned snapshot view, so it holds only what
/// reads need: the ghost translations plus the canonical-id resolution
/// tables (which inner engines cannot answer — sub-dataset canonical ids
/// are shard-local).
#[derive(Debug, Clone, Default)]
pub struct Meta {
    /// Shard count (denormalized for the id math).
    pub shards: usize,
    /// Per shard: composite vid of a remote vertex → its local ghost id.
    pub ghosts: Vec<FxHashMap<u64, Vid>>,
    /// Per shard: local ghost id → composite vid of the vertex it shadows.
    pub rev: Vec<FxHashMap<u64, u64>>,
    /// Global canonical vertex id → composite vid (bulk-loaded vertices).
    pub vertex_resolve: FxHashMap<u64, u64>,
    /// Composite vid → global canonical id (to purge `vertex_resolve` on
    /// vertex removal, so a deleted vertex stops resolving — as it does on
    /// an unsharded engine).
    pub vertex_canon: FxHashMap<u64, u64>,
    /// Global canonical edge id → composite eid.
    pub edge_resolve: FxHashMap<u64, u64>,
    /// Composite eid → global canonical id (purged on edge removal).
    pub edge_canon: FxHashMap<u64, u64>,
    /// `shard.ghost_translations` registry counter, resolved once per meta
    /// (clones share the underlying atomic). `None` under `GM_OBS=off`, so
    /// the translation hot path pays nothing when observability is off.
    ghost_translations: Option<gm_obs::Counter>,
}

impl Meta {
    /// Empty metadata for `shards` partitions.
    pub fn new(shards: usize) -> Meta {
        Meta {
            shards,
            ghosts: vec![FxHashMap::default(); shards],
            rev: vec![FxHashMap::default(); shards],
            vertex_resolve: FxHashMap::default(),
            vertex_canon: FxHashMap::default(),
            edge_resolve: FxHashMap::default(),
            edge_canon: FxHashMap::default(),
            ghost_translations: gm_obs::counters_on()
                .then(|| gm_obs::global().counter("shard.ghost_translations")),
        }
    }

    /// Translate a shard-local vertex id coming *out* of shard `shard` to
    /// its composite id: ghosts translate through the reverse map, real
    /// vertices through the id arithmetic.
    pub fn to_composite(&self, shard: usize, local: Vid) -> Vid {
        match self.rev[shard].get(&local.0) {
            Some(composite) => {
                if let Some(c) = &self.ghost_translations {
                    c.inc();
                }
                Vid(*composite)
            }
            None => encode_vid(local, shard, self.shards),
        }
    }

    /// The local id of composite vertex `v` on `shard`, when it has one:
    /// its decoded local id on the owner shard, its ghost id on any shard
    /// holding a ghost, `None` elsewhere.
    pub fn local_on(&self, shard: usize, v: Vid) -> Option<Vid> {
        let (local, owner) = decode_vid(v, self.shards);
        if owner == shard {
            Some(local)
        } else {
            self.ghosts[shard].get(&v.0).copied()
        }
    }

    /// Number of ghost placeholders on `shard` (subtracted from counts,
    /// filtered from scans).
    pub fn ghost_count(&self, shard: usize) -> u64 {
        self.ghosts[shard].len() as u64
    }

    /// Forget the resolution entries of a removed vertex.
    pub fn purge_vertex(&mut self, v: Vid) {
        if let Some(canonical) = self.vertex_canon.remove(&v.0) {
            self.vertex_resolve.remove(&canonical);
        }
    }

    /// Forget the resolution entries of a removed edge.
    pub fn purge_edge(&mut self, e: Eid) {
        if let Some(canonical) = self.edge_canon.remove(&e.0) {
            self.edge_resolve.remove(&canonical);
        }
    }

    /// Approximate bytes held by the routing maps (for `space()`).
    pub fn approx_bytes(&self) -> u64 {
        let entries = self.ghosts.iter().map(|m| m.len() as u64).sum::<u64>() * 2
            + self.vertex_resolve.len() as u64 * 2
            + self.edge_resolve.len() as u64 * 2;
        entries * 16
    }
}

/// The dataset split: one sub-dataset per shard (shard-local canonical
/// ids), plus the bookkeeping needed to build a [`Meta`] once the shards
/// are loaded.
pub struct Partitioned {
    /// One dataset per shard; ghost vertices included with [`GHOST_LABEL`].
    pub subs: Vec<Dataset>,
    /// Global canonical vertex id → (shard, shard-local canonical id).
    pub vertex_loc: Vec<(usize, u64)>,
    /// Global canonical edge id → (shard, shard-local canonical id).
    pub edge_loc: Vec<(usize, u64)>,
    /// Ghost placements: (shard, global canonical id of the shadowed
    /// vertex, shard-local canonical id of the ghost).
    pub ghosts: Vec<(usize, u64, u64)>,
}

/// Split a dataset across `shards` partitions: vertices by canonical-id
/// hash, each edge onto its source's shard, ghosts materialized for cut
/// destinations.
pub fn partition(data: &Dataset, shards: usize) -> GdbResult<Partitioned> {
    if data.vertices.iter().any(|v| v.label == GHOST_LABEL) {
        return Err(GdbError::Invalid(format!(
            "dataset uses the reserved ghost label {GHOST_LABEL:?}"
        )));
    }
    let mut subs: Vec<Dataset> = (0..shards)
        .map(|s| Dataset::new(format!("{}#s{s}", data.name)))
        .collect();
    let mut vertex_loc = Vec::with_capacity(data.vertices.len());
    for v in &data.vertices {
        let s = shard_of_canonical(v.id, shards);
        let local = subs[s].add_vertex(v.label.clone(), v.props.clone());
        vertex_loc.push((s, local));
    }
    let mut edge_loc = Vec::with_capacity(data.edges.len());
    let mut ghosts = Vec::new();
    // (shard, global dst) → local ghost canonical id, deduplicated.
    let mut ghost_at: FxHashMap<(u64, u64), u64> = FxHashMap::default();
    for e in &data.edges {
        let (s, local_src) = vertex_loc[e.src as usize];
        let (dst_shard, dst_local) = vertex_loc[e.dst as usize];
        let local_dst = if dst_shard == s {
            dst_local
        } else {
            *ghost_at.entry((s as u64, e.dst)).or_insert_with(|| {
                let g = subs[s].add_vertex(GHOST_LABEL, Vec::new());
                ghosts.push((s, e.dst, g));
                g
            })
        };
        let local = subs[s].add_edge(local_src, local_dst, e.label.clone(), e.props.clone());
        edge_loc.push((s, local));
    }
    Ok(Partitioned {
        subs,
        vertex_loc,
        edge_loc,
        ghosts,
    })
}

/// Build the routing metadata by resolving the partition's bookkeeping
/// against the freshly loaded shard engines.
pub fn build_meta(parts: &Partitioned, views: &[&dyn GraphSnapshot]) -> GdbResult<Meta> {
    let shards = views.len();
    let mut meta = Meta::new(shards);
    let corrupt = |what: String| GdbError::Corrupt(format!("sharded load: {what}"));
    for (canonical, (s, local_canonical)) in parts.vertex_loc.iter().enumerate() {
        let local = views[*s]
            .resolve_vertex(*local_canonical)
            .ok_or_else(|| corrupt(format!("shard {s} lost loaded vertex {local_canonical}")))?;
        let composite = encode_vid(local, *s, shards).0;
        meta.vertex_resolve.insert(canonical as u64, composite);
        meta.vertex_canon.insert(composite, canonical as u64);
    }
    for (s, shadowed, local_canonical) in &parts.ghosts {
        let local = views[*s]
            .resolve_vertex(*local_canonical)
            .ok_or_else(|| corrupt(format!("shard {s} lost ghost vertex {local_canonical}")))?;
        let composite = *meta
            .vertex_resolve
            .get(shadowed)
            .ok_or_else(|| corrupt(format!("ghost shadows unknown vertex {shadowed}")))?;
        meta.ghosts[*s].insert(composite, local);
        meta.rev[*s].insert(local.0, composite);
    }
    for (canonical, (s, local_canonical)) in parts.edge_loc.iter().enumerate() {
        let local = views[*s]
            .resolve_edge(*local_canonical)
            .ok_or_else(|| corrupt(format!("shard {s} lost loaded edge {local_canonical}")))?;
        let composite = encode_eid(local, *s, shards).0;
        meta.edge_resolve.insert(canonical as u64, composite);
        meta.edge_canon.insert(composite, canonical as u64);
    }
    Ok(meta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_model::testkit;

    #[test]
    fn id_math_round_trips() {
        for shards in [1usize, 2, 3, 7] {
            for raw in [0u64, 1, 5, 1000] {
                for s in 0..shards {
                    let v = encode_vid(Vid(raw), s, shards);
                    assert_eq!(decode_vid(v, shards), (Vid(raw), s));
                    let e = encode_eid(Eid(raw), s, shards);
                    assert_eq!(decode_eid(e, shards), (Eid(raw), s));
                }
            }
        }
        // One shard: composite ids are the inner ids.
        assert_eq!(encode_vid(Vid(42), 0, 1), Vid(42));
    }

    #[test]
    fn canonical_placement_is_deterministic_and_spread() {
        let shards = 4;
        let a: Vec<usize> = (0..1000).map(|c| shard_of_canonical(c, shards)).collect();
        let b: Vec<usize> = (0..1000).map(|c| shard_of_canonical(c, shards)).collect();
        assert_eq!(a, b);
        for s in 0..shards {
            let n = a.iter().filter(|&&x| x == s).count();
            assert!(
                (150..=350).contains(&n),
                "shard {s} got {n} of 1000 vertices — placement badly skewed"
            );
        }
    }

    #[test]
    fn partition_covers_every_vertex_and_edge_once() {
        let data = testkit::chain_dataset(100);
        for shards in [1usize, 2, 4] {
            let parts = partition(&data, shards).unwrap();
            let real: usize = parts
                .subs
                .iter()
                .map(|d| d.vertices.iter().filter(|v| v.label != GHOST_LABEL).count())
                .sum();
            assert_eq!(real, 100, "{shards} shards: every vertex placed once");
            let edges: usize = parts.subs.iter().map(|d| d.edge_count()).sum();
            assert_eq!(edges, 99, "{shards} shards: every edge stored once");
            for sub in &parts.subs {
                sub.validate()
                    .unwrap_or_else(|e| panic!("invalid sub: {e}"));
            }
            if shards == 1 {
                assert!(parts.ghosts.is_empty(), "one shard cuts no edges");
            }
        }
        // A chain across 2+ shards must cut somewhere.
        let parts = partition(&data, 4).unwrap();
        assert!(!parts.ghosts.is_empty(), "4-way chain split has cut edges");
    }

    #[test]
    fn edges_land_on_their_sources_shard() {
        let data = testkit::tiny_dataset();
        let parts = partition(&data, 3).unwrap();
        for (e, (s, local)) in parts.edge_loc.iter().enumerate() {
            let global_src = data.edges[e].src;
            assert_eq!(
                *s,
                shard_of_canonical(global_src, 3),
                "edge {e} must live on its source's shard"
            );
            let sub_edge = &parts.subs[*s].edges[*local as usize];
            assert_eq!(sub_edge.label, data.edges[e].label);
        }
    }

    #[test]
    fn ghost_label_is_reserved() {
        let mut data = testkit::tiny_dataset();
        data.vertices[0].label = GHOST_LABEL.into();
        assert!(matches!(partition(&data, 2), Err(GdbError::Invalid(_))));
    }
}
