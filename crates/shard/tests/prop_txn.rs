//! Property test: arbitrary interleavings of **write transactions**,
//! autocommit writes, and retained pins against a 3-shard [`ShardedSource`]
//! always match a counter/key **model oracle** of the commit protocol:
//!
//! * **first-committer-wins, exactly** — a commit fails with
//!   [`GdbError::TxnConflict`] if and only if some write set committed
//!   after the transaction began intersects its keys (the model replays
//!   the `TxnLog` semantics: key-less sets don't bump the sequence, vertex
//!   keys compare by id);
//! * **no torn cross-shard state** — fresh pins always agree with the
//!   model's committed counters and property values (a discarded loser or
//!   an uncommitted buffer never leaks), and retained pins keep answering
//!   with the state recorded when they were taken;
//! * **read-your-writes** — an open transaction's snapshot overlay reports
//!   its pinned base state plus exactly its own buffered creations;
//! * **monotone composite epochs** — commits only ever advance the
//!   min-over-shards epoch.

use std::collections::{BTreeSet, HashMap};

use engine_linked::LinkedGraph;
use gm_model::api::{GraphDb, GraphSnapshot, LoadOptions};
use gm_model::{testkit, GdbError, QueryCtx, Value, Vid};
use gm_mvcc::{CowCell, SnapshotSource, WriteTxn};
use gm_shard::ShardedSource;
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Step {
    /// Buffer an `add_vertex` in transaction slot 0/1 (opens it lazily).
    TxnAdd(usize),
    /// Buffer a property write on pool vertex `i` in slot 0/1.
    TxnSetProp(usize, usize, i64),
    /// Buffer an edge between pool vertices `a`→`b` in slot 0/1.
    TxnAddEdge(usize, usize, usize),
    /// Commit slot 0/1 (no-op when nothing is open).
    TxnCommit(usize),
    /// Abort slot 0/1, discarding its buffer.
    TxnAbort(usize),
    /// Autocommit `add_vertex` through `with_write`.
    AutoAdd,
    /// Autocommit property write on pool vertex `i`.
    AutoSetProp(usize, i64),
    /// Autocommit edge between pool vertices `a`→`b`.
    AutoAddEdge(usize, usize),
    /// Pin a snapshot, retain it, and audit it against the model.
    Pin,
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        3 => (0usize..2).prop_map(Step::TxnAdd),
        4 => (0usize..2, 0usize..12, -50i64..50).prop_map(|(s, i, x)| Step::TxnSetProp(s, i, x)),
        3 => (0usize..2, 0usize..12, 0usize..12).prop_map(|(s, a, b)| Step::TxnAddEdge(s, a, b)),
        4 => (0usize..2).prop_map(Step::TxnCommit),
        1 => (0usize..2).prop_map(Step::TxnAbort),
        2 => Just(Step::AutoAdd),
        3 => (0usize..12, -50i64..50).prop_map(|(i, x)| Step::AutoSetProp(i, x)),
        2 => (0usize..12, 0usize..12).prop_map(|(a, b)| Step::AutoAddEdge(a, b)),
        3 => Just(Step::Pin),
    ]
}

/// An open transaction plus the model state captured when it began.
struct OpenTxn {
    txn: WriteTxn,
    /// Model sequence at begin — the conflict horizon.
    start_seq: u64,
    /// Committed counts at begin (the pinned base the overlay reads over).
    base: (u64, u64),
    /// Buffered creations (vertices, edges) — what RYOW must add to `base`.
    adds: (u64, u64),
    /// Vertex ids this transaction wrote (its conflict key set).
    keys: BTreeSet<u64>,
}

/// The model's committed state: counters, property values, and a replay of
/// the `TxnLog` (sequence number + retained key sets).
struct Model {
    vertices: u64,
    edges: u64,
    props: HashMap<u64, i64>,
    seq: u64,
    log: Vec<(u64, BTreeSet<u64>)>,
}

impl Model {
    /// Mirror `TxnLog::append`: key-less write sets don't bump the sequence.
    fn append(&mut self, keys: BTreeSet<u64>) {
        if keys.is_empty() {
            return;
        }
        self.seq += 1;
        let seq = self.seq;
        self.log.push((seq, keys));
    }

    /// Mirror `TxnLog::validate`: conflict iff a set committed after
    /// `start_seq` intersects `keys`. (The retention window never trims in
    /// these runs — far fewer commits than the 1024-entry cap.)
    fn conflicts(&self, start_seq: u64, keys: &BTreeSet<u64>) -> bool {
        if keys.is_empty() {
            return false;
        }
        self.log
            .iter()
            .any(|(seq, committed)| *seq > start_seq && !committed.is_disjoint(keys))
    }
}

fn counts(db: &dyn GraphSnapshot) -> (u64, u64) {
    let ctx = QueryCtx::unbounded();
    (
        db.vertex_count(&ctx).expect("vertex_count"),
        db.edge_count(&ctx).expect("edge_count"),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn txn_commits_match_first_committer_wins_oracle(
        steps in prop::collection::vec(arb_step(), 0..80)
    ) {
        let data = testkit::chain_dataset(12);
        let src = ShardedSource::from_factory(3, || {
            Box::new(CowCell::new(LinkedGraph::v1())) as Box<dyn SnapshotSource>
        });
        src.with_write(&mut |db| {
            db.bulk_load(&data, &LoadOptions::default())?;
            Ok(0)
        }).expect("load sharded source");

        let pool: Vec<Vid> = {
            let first = src.snapshot().expect("initial pin");
            (0..12).map(|c| first.resolve_vertex(c).unwrap()).collect()
        };
        let log = src.txn_log().expect("composite source exposes a txn log");
        let mut model = Model {
            vertices: 12,
            edges: 11,
            props: HashMap::new(),
            // The bulk load above committed through the autocommit path, so
            // the model adopts the real log's post-load sequence.
            seq: log.seq(),
            log: Vec::new(),
        };
        let mut slots: [Option<OpenTxn>; 2] = [None, None];
        let mut pins: Vec<(Box<dyn GraphSnapshot>, (u64, u64))> = Vec::new();
        let mut last_epoch = 0u64;

        for step in steps {
            match step {
                Step::TxnAdd(s) | Step::TxnSetProp(s, _, _) | Step::TxnAddEdge(s, _, _)
                    if slots[s].is_none() =>
                {
                    slots[s] = Some(OpenTxn {
                        txn: WriteTxn::begin(&src).expect("begin"),
                        start_seq: model.seq,
                        base: (model.vertices, model.edges),
                        adds: (0, 0),
                        keys: BTreeSet::new(),
                    });
                    // Re-dispatch below now that the slot is open.
                }
                _ => {}
            }
            match step {
                Step::TxnAdd(s) => {
                    let open = slots[s].as_mut().expect("opened above");
                    open.txn.add_vertex("p_txn", &vec![]).expect("buffer add_vertex");
                    open.adds.0 += 1;
                }
                Step::TxnSetProp(s, i, x) => {
                    let open = slots[s].as_mut().expect("opened above");
                    let v = pool[i % pool.len()];
                    open.txn
                        .set_vertex_property(v, "p_prop", Value::Int(x))
                        .expect("buffer set_vertex_property");
                    open.keys.insert(v.0);
                }
                Step::TxnAddEdge(s, a, b) => {
                    let open = slots[s].as_mut().expect("opened above");
                    let (va, vb) = (pool[a % pool.len()], pool[b % pool.len()]);
                    open.txn.add_edge(va, vb, "p_edge", &vec![]).expect("buffer add_edge");
                    open.adds.1 += 1;
                    open.keys.insert(va.0);
                    open.keys.insert(vb.0);
                }
                Step::TxnCommit(s) => {
                    let Some(open) = slots[s].take() else { continue };
                    // RYOW audit right before commit: the overlay is the
                    // pinned base plus exactly this txn's buffered adds.
                    prop_assert_eq!(
                        counts(&open.txn),
                        (open.base.0 + open.adds.0, open.base.1 + open.adds.1),
                        "read-your-writes overlay drifted"
                    );
                    let expect_conflict = model.conflicts(open.start_seq, &open.keys);
                    match open.txn.commit(&src) {
                        Ok(_) => {
                            prop_assert!(
                                !expect_conflict,
                                "commit succeeded but the oracle proves an intersecting \
                                 write set landed after seq {}", open.start_seq
                            );
                            model.vertices += open.adds.0;
                            model.edges += open.adds.1;
                            // Property writes land with the commit. (The
                            // last writer inside one txn wins, matching the
                            // buffered-replay order; the model only tracks
                            // one prop per vertex so the final value is
                            // whatever the winning commit's last write was —
                            // audited via the keys below, not the value.)
                            model.append(open.keys);
                        }
                        Err(GdbError::TxnConflict(_)) => {
                            prop_assert!(
                                expect_conflict,
                                "commit conflicted but no intersecting write set landed \
                                 after seq {}", open.start_seq
                            );
                            // Loser's whole buffer is discarded: nothing to
                            // apply to the model.
                        }
                        Err(e) => prop_assert!(false, "commit failed with a non-conflict error: {e}"),
                    }
                    prop_assert_eq!(log.seq(), model.seq, "model log diverged from the real TxnLog");
                    let snap = src.snapshot().expect("post-commit pin");
                    prop_assert_eq!(
                        counts(snap.as_ref()),
                        (model.vertices, model.edges),
                        "committed state disagrees with the oracle after a commit"
                    );
                }
                Step::TxnAbort(s) => {
                    let Some(open) = slots[s].take() else { continue };
                    open.txn.abort();
                    let snap = src.snapshot().expect("post-abort pin");
                    prop_assert_eq!(
                        counts(snap.as_ref()),
                        (model.vertices, model.edges),
                        "an aborted buffer leaked into committed state"
                    );
                }
                Step::AutoAdd => {
                    src.with_write(&mut |db| db.add_vertex("p_auto", &vec![]).map(|_| 1))
                        .expect("autocommit add_vertex");
                    model.vertices += 1;
                    // Key-less: no sequence bump (mirrors KeyRecorder).
                }
                Step::AutoSetProp(i, x) => {
                    let v = pool[i % pool.len()];
                    src.with_write(&mut |db| {
                        db.set_vertex_property(v, "p_prop", Value::Int(x)).map(|_| 1)
                    })
                    .expect("autocommit set_vertex_property");
                    model.props.insert(v.0, x);
                    model.append([v.0].into_iter().collect());
                    prop_assert_eq!(log.seq(), model.seq, "autocommit prop write must log its key");
                }
                Step::AutoAddEdge(a, b) => {
                    let (va, vb) = (pool[a % pool.len()], pool[b % pool.len()]);
                    src.with_write(&mut |db| {
                        db.add_edge(va, vb, "p_edge", &vec![]).map(|_| 1)
                    })
                    .expect("autocommit add_edge");
                    model.edges += 1;
                    model.append([va.0, vb.0].into_iter().collect());
                    prop_assert_eq!(log.seq(), model.seq, "autocommit edge write must log its keys");
                }
                Step::Pin => {
                    let snap = src.snapshot().expect("pin");
                    prop_assert!(
                        snap.epoch() >= last_epoch,
                        "composite epoch went backwards: {} after {}",
                        snap.epoch(), last_epoch
                    );
                    last_epoch = snap.epoch();
                    let c = counts(snap.as_ref());
                    prop_assert_eq!(c, (model.vertices, model.edges), "pin disagrees with oracle");
                    // Autocommitted property values are visible exactly as
                    // the model recorded them (transactional prop writes
                    // may have overwritten them — only audit vertices no
                    // committed txn has touched since).
                    for v in &pool {
                        if let Some(x) = model.props.get(&v.0) {
                            let touched_by_txn = model
                                .log
                                .iter()
                                .any(|(_, keys)| keys.contains(&v.0));
                            if !touched_by_txn {
                                prop_assert_eq!(
                                    snap.vertex_property(*v, "p_prop").expect("prop read"),
                                    Some(Value::Int(*x)),
                                    "committed property value diverged"
                                );
                            }
                        }
                    }
                    pins.push((snap, c));
                }
            }
        }

        // No torn reads: every retained pin still answers with the state it
        // was taken at, no matter what committed after it.
        for (i, (snap, c)) in pins.iter().enumerate() {
            prop_assert_eq!(
                counts(snap.as_ref()), *c,
                "pin {} tore: counts drifted after later commits", i
            );
        }
    }
}
