//! Property test: arbitrary interleavings of mutations and composite pins
//! against a [`ShardedSource`] (3 shards, one CowCell each) always match a
//! **single-shard oracle** (a plain unsharded engine):
//!
//! * every read answer (counts, degrees, properties) equals the oracle's;
//! * retained pins never tear — a multi-shard mutation (vertex removal
//!   with cross-shard in-edges) is atomic with respect to pins, so a pin
//!   can never observe a vertex gone from its owner shard while its ghost
//!   edges survive elsewhere;
//! * composite epochs (min over shard epochs) are monotone.

use engine_linked::LinkedGraph;
use gm_model::api::{Direction, GraphDb, GraphSnapshot, LoadOptions};
use gm_model::{testkit, Eid, QueryCtx, Value, Vid};
use gm_mvcc::{CowCell, SnapshotSource};
use gm_shard::ShardedSource;
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Step {
    AddVertex,
    AddEdge(usize, usize),
    RemoveVertex(usize),
    RemoveEdge(usize),
    SetProp(usize, i64),
    Pin,
    Read(usize),
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        3 => Just(Step::AddVertex),
        4 => (0usize..64, 0usize..64).prop_map(|(a, b)| Step::AddEdge(a, b)),
        1 => (0usize..64).prop_map(Step::RemoveVertex),
        2 => (0usize..64).prop_map(Step::RemoveEdge),
        2 => (0usize..64, -100i64..100).prop_map(|(i, x)| Step::SetProp(i, x)),
        2 => Just(Step::Pin),
        3 => (0usize..64).prop_map(Step::Read),
    ]
}

/// A retained pin plus the oracle state recorded at pin time.
struct Pinned {
    snap: Box<dyn GraphSnapshot>,
    vertices: u64,
    edges: u64,
}

fn counts(db: &dyn GraphSnapshot) -> (u64, u64) {
    let ctx = QueryCtx::unbounded();
    (
        db.vertex_count(&ctx).expect("vertex_count"),
        db.edge_count(&ctx).expect("edge_count"),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sharded_source_matches_single_shard_oracle(
        steps in prop::collection::vec(arb_step(), 0..70)
    ) {
        let data = testkit::chain_dataset(12);
        let src = ShardedSource::from_factory(3, || {
            Box::new(CowCell::new(LinkedGraph::v1())) as Box<dyn SnapshotSource>
        });
        src.with_write(&mut |db| {
            db.bulk_load(&data, &LoadOptions::default())?;
            Ok(0)
        }).expect("load sharded source");
        let mut oracle = LinkedGraph::v1();
        oracle.bulk_load(&data, &LoadOptions::default()).expect("load oracle");

        // Parallel element pools; positions correspond across the sides.
        let first = src.snapshot().expect("initial pin");
        let mut sh_vs: Vec<Vid> = (0..12).map(|c| first.resolve_vertex(c).unwrap()).collect();
        let mut orc_vs: Vec<Vid> = (0..12).map(|c| oracle.resolve_vertex(c).unwrap()).collect();
        drop(first);
        let mut sh_es: Vec<Eid> = Vec::new();
        let mut orc_es: Vec<Eid> = Vec::new();

        let mut pins: Vec<Pinned> = Vec::new();
        let mut last_epoch = 0u64;
        let ctx = QueryCtx::unbounded();

        for step in steps {
            match step {
                Step::AddVertex => {
                    let mut sv = None;
                    src.with_write(&mut |db| {
                        sv = Some(db.add_vertex("p_node", &vec![])?);
                        Ok(1)
                    }).expect("sharded add vertex");
                    let ov = oracle.add_vertex("p_node", &vec![]).expect("oracle add vertex");
                    sh_vs.push(sv.unwrap());
                    orc_vs.push(ov);
                }
                Step::AddEdge(a, b) => {
                    let (i, j) = (a % sh_vs.len(), b % sh_vs.len());
                    let (ssrc, sdst) = (sh_vs[i], sh_vs[j]);
                    let (osrc, odst) = (orc_vs[i], orc_vs[j]);
                    let mut se = None;
                    let sr = src.with_write(&mut |db| {
                        se = Some(db.add_edge(ssrc, sdst, "p_edge", &vec![])?);
                        Ok(1)
                    });
                    let or = oracle.add_edge(osrc, odst, "p_edge", &vec![]);
                    prop_assert_eq!(sr.is_ok(), or.is_ok(), "add_edge outcome diverged");
                    if let (Ok(_), Ok(oe)) = (sr, or) {
                        sh_es.push(se.unwrap());
                        orc_es.push(oe);
                    }
                }
                Step::RemoveVertex(i) => {
                    if sh_vs.is_empty() { continue; }
                    let i = i % sh_vs.len();
                    let (sv, ov) = (sh_vs[i], orc_vs[i]);
                    let sr = src.with_write(&mut |db| db.remove_vertex(sv).map(|_| 1));
                    let or = oracle.remove_vertex(ov);
                    prop_assert_eq!(sr.is_ok(), or.is_ok(), "remove_vertex outcome diverged");
                    if or.is_ok() {
                        sh_vs.remove(i);
                        orc_vs.remove(i);
                        // Drop edge-pool entries that died with the vertex
                        // (matching positions on both sides, so compare via
                        // the oracle's view of edge existence).
                        let mut k = 0;
                        while k < orc_es.len() {
                            if oracle.edge_label(orc_es[k]).ok().flatten().is_none() {
                                orc_es.remove(k);
                                sh_es.remove(k);
                            } else {
                                k += 1;
                            }
                        }
                    }
                }
                Step::RemoveEdge(i) => {
                    if sh_es.is_empty() { continue; }
                    let i = i % sh_es.len();
                    let (se, oe) = (sh_es[i], orc_es[i]);
                    let sr = src.with_write(&mut |db| db.remove_edge(se).map(|_| 1));
                    let or = oracle.remove_edge(oe);
                    prop_assert_eq!(sr.is_ok(), or.is_ok(), "remove_edge outcome diverged");
                    sh_es.remove(i);
                    orc_es.remove(i);
                }
                Step::SetProp(i, x) => {
                    if sh_vs.is_empty() { continue; }
                    let i = i % sh_vs.len();
                    let (sv, ov) = (sh_vs[i], orc_vs[i]);
                    let sr = src.with_write(&mut |db| {
                        db.set_vertex_property(sv, "p_prop", Value::Int(x)).map(|_| 1)
                    });
                    let or = oracle.set_vertex_property(ov, "p_prop", Value::Int(x));
                    prop_assert_eq!(sr.is_ok(), or.is_ok(), "set_vertex_property diverged");
                }
                Step::Pin => {
                    let snap = src.snapshot().expect("pin");
                    prop_assert!(
                        snap.epoch() >= last_epoch,
                        "composite epoch went backwards: {} after {}",
                        snap.epoch(), last_epoch
                    );
                    last_epoch = snap.epoch();
                    let (v, e) = counts(&oracle);
                    prop_assert_eq!(counts(snap.as_ref()), (v, e), "pin disagrees with oracle");
                    pins.push(Pinned { snap, vertices: v, edges: e });
                }
                Step::Read(i) => {
                    let snap = src.snapshot().expect("read pin");
                    prop_assert_eq!(
                        counts(snap.as_ref()), counts(&oracle),
                        "read disagrees with oracle"
                    );
                    if !sh_vs.is_empty() {
                        let i = i % sh_vs.len();
                        let (sv, ov) = (sh_vs[i], orc_vs[i]);
                        // Cross-shard structure: degrees in every direction
                        // (in-degree gathers ghost shards), plus a property.
                        for dir in Direction::ALL {
                            prop_assert_eq!(
                                snap.vertex_degree(sv, dir, &ctx).expect("sharded degree"),
                                oracle.vertex_degree(ov, dir, &ctx).expect("oracle degree"),
                                "degree({:?}) diverged", dir
                            );
                        }
                        prop_assert_eq!(
                            snap.vertex_property(sv, "p_prop").expect("sharded prop"),
                            oracle.vertex_property(ov, "p_prop").expect("oracle prop"),
                            "property read diverged"
                        );
                    }
                }
            }
        }

        // No torn cross-shard reads: every retained pin still answers with
        // the state recorded when it was taken — a vertex removal whose
        // ghost-edge cleanup spanned shards can never be half-visible.
        for (i, pin) in pins.iter().enumerate() {
            prop_assert_eq!(
                counts(pin.snap.as_ref()),
                (pin.vertices, pin.edges),
                "pin {} tore: counts drifted after later writes", i
            );
        }
    }
}
