//! Runtime deadlock-detector coverage with the shard crate's real ranks:
//! acquiring the meta lock while a shard lock is held is the inversion the
//! detector must catch (debug builds only — in release the tracker is a
//! zero-cost no-op).

use gm_model::lockorder::{acquire, LockRank};

/// The documented order is panic-free end to end, including the innermost
/// leaf rank used by the purge queue and the mvcc pin table.
#[test]
fn documented_order_is_accepted() {
    let _driver = acquire(LockRank::Driver, "test driver");
    let _meta = acquire(LockRank::Meta, "test meta");
    let _s0 = acquire(LockRank::Shard(0), "test shard 0");
    let _s1 = acquire(LockRank::Shard(1), "test shard 1");
    let _leaf = acquire(LockRank::Leaf, "test purge queue");
}

/// Shards-before-meta must panic in debug builds, naming both sites so the
/// report points at the two acquisitions to reorder.
#[cfg(debug_assertions)]
#[test]
fn shard_before_meta_panics_naming_both_sites() {
    let err = std::thread::spawn(|| {
        let _shard = acquire(LockRank::Shard(3), "test shard write");
        let _meta = acquire(LockRank::Meta, "test late meta");
    })
    .join()
    .expect_err("inversion must panic the acquiring thread");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .expect("panic payload is the formatted violation");
    assert!(
        msg.contains("test shard write") && msg.contains("test late meta"),
        "both sites must be named: {msg}"
    );
}
