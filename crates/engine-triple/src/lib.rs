//! # engine-triple — the BlazeGraph-class RDF engine
//!
//! Reproduces the architecture the paper describes for BlazeGraph
//! (§3.1/§3.2):
//!
//! * everything is a **Subject–Predicate–Object statement** over a term
//!   dictionary; "each statement is indexed three times by changing the
//!   order of the values … a B+Tree is built for each one of SPO, POS, OSP";
//! * **edges are reified**: an edge is a subject with `SRC`/`DST`/`LBL`
//!   statements plus one statement per property, so "traversing the
//!   structure of the graph may require more than one access to the
//!   corresponding B+Tree";
//! * without the **bulk-load option** every statement insertion updates all
//!   three B+Trees *and* the engine's per-predicate metadata — the paper had
//!   to enable bulk loading explicitly to load in reasonable time (§6.2);
//! * storage is a **journal file allocated in fixed-size extents**, which
//!   together with the triple indexing explains why BlazeGraph "requires,
//!   on average, three times the size of any other system" (Figure 1);
//! * there are **no user-controllable attribute indexes** (§6.4, *Effect of
//!   Indexing*: "BlazeGraph provides no such capability").

use std::collections::HashMap;

use gm_model::api::{
    Direction, EdgeData, EdgeRef, EngineFeatures, GraphDb, GraphSnapshot, LoadOptions, LoadStats,
    SpaceReport, VertexData,
};
use gm_model::fxmap::FxHashMap;
use gm_model::value::{Props, Value};
use gm_model::{Dataset, Eid, GdbError, GdbResult, QueryCtx, Vid};
use gm_storage::bptree::BPlusTree;

/// Journal extent size; space is charged in whole extents.
pub const JOURNAL_EXTENT: u64 = 1 << 20;

/// Bytes charged per statement in the journal (3 term ids + header).
const STATEMENT_BYTES: u64 = 32;

// Built-in predicate terms, allocated at construction in this order.
const P_TYPE: u64 = 0;
const P_SRC: u64 = 1;
const P_DST: u64 = 2;
const P_LBL: u64 = 3;

/// What a term id denotes.
#[derive(Debug, Clone, PartialEq)]
enum Term {
    /// A graph vertex.
    Vertex,
    /// A (reified) graph edge.
    Edge,
    /// A literal value (labels are string literals).
    Literal(Value),
    /// A predicate (built-in or property name).
    Pred(String),
}

type Triple = (u64, u64, u64);

/// The BlazeGraph-class engine. See crate docs for the layout.
#[derive(Clone)]
pub struct TripleGraph {
    terms: Vec<Term>,
    literals: HashMap<Value, u64>,
    preds: FxHashMap<String, u64>,
    spo: BPlusTree<Triple, ()>,
    pos: BPlusTree<Triple, ()>,
    osp: BPlusTree<Triple, ()>,
    /// Per-predicate statement counts — the metadata BlazeGraph maintains
    /// after each non-bulk insertion.
    pred_stats: FxHashMap<u64, u64>,
    vmap: Vec<u64>,
    emap: Vec<u64>,
    statements: u64,
}

impl Default for TripleGraph {
    fn default() -> Self {
        Self::new()
    }
}

impl TripleGraph {
    /// A fresh, empty engine.
    pub fn new() -> Self {
        let mut g = TripleGraph {
            terms: Vec::new(),
            literals: HashMap::new(),
            preds: FxHashMap::default(),
            spo: BPlusTree::new(),
            pos: BPlusTree::new(),
            osp: BPlusTree::new(),
            pred_stats: FxHashMap::default(),
            vmap: Vec::new(),
            emap: Vec::new(),
            statements: 0,
        };
        for name in ["rdf:type", "g:src", "g:dst", "g:label"] {
            let id = g.terms.len() as u64;
            g.terms.push(Term::Pred(name.to_string()));
            g.preds.insert(name.to_string(), id);
        }
        debug_assert_eq!(g.preds["g:label"], P_LBL);
        g
    }

    fn literal(&mut self, v: &Value) -> u64 {
        if let Some(&id) = self.literals.get(v) {
            return id;
        }
        let id = self.terms.len() as u64;
        self.terms.push(Term::Literal(v.clone()));
        self.literals.insert(v.clone(), id);
        id
    }

    fn pred(&mut self, name: &str) -> u64 {
        if let Some(&id) = self.preds.get(name) {
            return id;
        }
        let id = self.terms.len() as u64;
        self.terms.push(Term::Pred(name.to_string()));
        self.preds.insert(name.to_string(), id);
        id
    }

    fn new_vertex_term(&mut self) -> u64 {
        let id = self.terms.len() as u64;
        self.terms.push(Term::Vertex);
        id
    }

    fn new_edge_term(&mut self) -> u64 {
        let id = self.terms.len() as u64;
        self.terms.push(Term::Edge);
        id
    }

    fn is_vertex(&self, t: u64) -> bool {
        matches!(self.terms.get(t as usize), Some(Term::Vertex))
    }

    fn is_edge(&self, t: u64) -> bool {
        matches!(self.terms.get(t as usize), Some(Term::Edge))
    }

    fn literal_value(&self, t: u64) -> Option<&Value> {
        match self.terms.get(t as usize) {
            Some(Term::Literal(v)) => Some(v),
            _ => None,
        }
    }

    fn pred_name(&self, t: u64) -> Option<&str> {
        match self.terms.get(t as usize) {
            Some(Term::Pred(n)) => Some(n.as_str()),
            _ => None,
        }
    }

    /// Insert a statement into all three B+Trees and update metadata.
    fn assert_stmt(&mut self, s: u64, p: u64, o: u64) {
        if self.spo.insert((s, p, o), ()).is_none() {
            self.pos.insert((p, o, s), ());
            self.osp.insert((o, s, p), ());
            *self.pred_stats.entry(p).or_insert(0) += 1;
            self.statements += 1;
        }
    }

    /// Remove a statement from all three B+Trees.
    fn retract_stmt(&mut self, s: u64, p: u64, o: u64) -> bool {
        if self.spo.remove(&(s, p, o)).is_some() {
            self.pos.remove(&(p, o, s));
            self.osp.remove(&(o, s, p));
            if let Some(n) = self.pred_stats.get_mut(&p) {
                *n -= 1;
            }
            self.statements -= 1;
            true
        } else {
            false
        }
    }

    /// Range over SPO with fixed subject (and optional predicate).
    fn spo_range(&self, s: u64, p: Option<u64>) -> Vec<Triple> {
        let (lo, hi) = match p {
            Some(p) => ((s, p, 0), (s, p + 1, 0)),
            None => ((s, 0, 0), (s + 1, 0, 0)),
        };
        self.spo.range(&lo, Some(&hi)).map(|(k, _)| *k).collect()
    }

    /// Range over POS with fixed predicate (and optional object).
    fn pos_range(&self, p: u64, o: Option<u64>) -> Vec<Triple> {
        let (lo, hi) = match o {
            Some(o) => ((p, o, 0), (p, o + 1, 0)),
            None => ((p, 0, 0), (p + 1, 0, 0)),
        };
        self.pos.range(&lo, Some(&hi)).map(|(k, _)| *k).collect()
    }

    /// The single object of (s, p, *), if any.
    fn object_of(&self, s: u64, p: u64) -> Option<u64> {
        self.spo
            .range(&(s, p, 0), Some(&(s, p + 1, 0)))
            .next()
            .map(|((_, _, o), _)| *o)
    }

    fn require_vertex(&self, v: u64) -> GdbResult<()> {
        if self.is_vertex(v) && self.object_of(v, P_TYPE).is_some() {
            Ok(())
        } else {
            Err(GdbError::VertexNotFound(v))
        }
    }

    fn require_edge(&self, e: u64) -> GdbResult<()> {
        if self.is_edge(e) && self.object_of(e, P_SRC).is_some() {
            Ok(())
        } else {
            Err(GdbError::EdgeNotFound(e))
        }
    }

    /// Properties of an element: all statements minus the built-ins.
    fn props_of(&self, s: u64) -> Props {
        let mut out = Props::new();
        for (_, p, o) in self.spo_range(s, None) {
            if p <= P_LBL {
                continue;
            }
            if let (Some(name), Some(value)) = (self.pred_name(p), self.literal_value(o)) {
                out.push((name.to_string(), value.clone()));
            }
        }
        out
    }

    fn add_vertex_stmts(&mut self, label: &str, props: &Props) -> u64 {
        let v = self.new_vertex_term();
        let label_term = self.literal(&Value::Str(label.to_string()));
        self.assert_stmt(v, P_TYPE, label_term);
        for (name, value) in props {
            let p = self.pred(name);
            let o = self.literal(value);
            self.assert_stmt(v, p, o);
        }
        v
    }

    fn add_edge_stmts(&mut self, src: u64, dst: u64, label: &str, props: &Props) -> u64 {
        let e = self.new_edge_term();
        let label_term = self.literal(&Value::Str(label.to_string()));
        self.assert_stmt(e, P_SRC, src);
        self.assert_stmt(e, P_DST, dst);
        self.assert_stmt(e, P_LBL, label_term);
        for (name, value) in props {
            let p = self.pred(name);
            let o = self.literal(value);
            self.assert_stmt(e, p, o);
        }
        e
    }
}

impl GraphSnapshot for TripleGraph {
    fn name(&self) -> String {
        "triple".into()
    }

    fn features(&self) -> EngineFeatures {
        EngineFeatures {
            name: self.name(),
            system_type: "Hybrid (RDF)".into(),
            storage: "RDF statements (SPO/POS/OSP B+Trees over a journal)".into(),
            edge_traversal: "B+Tree".into(),
            optimized_adapter: false,
            async_writes: false,
            attribute_indexes: false,
        }
    }

    fn resolve_vertex(&self, canonical: u64) -> Option<Vid> {
        self.vmap.get(canonical as usize).map(|&v| Vid(v))
    }

    fn resolve_edge(&self, canonical: u64) -> Option<Eid> {
        self.emap.get(canonical as usize).map(|&e| Eid(e))
    }

    fn vertex_count(&self, ctx: &QueryCtx) -> GdbResult<u64> {
        let mut n = 0u64;
        for _ in self.pos.range(&(P_TYPE, 0, 0), Some(&(P_TYPE + 1, 0, 0))) {
            ctx.tick()?;
            n += 1;
        }
        Ok(n)
    }

    fn edge_count(&self, ctx: &QueryCtx) -> GdbResult<u64> {
        let mut n = 0u64;
        for _ in self.pos.range(&(P_LBL, 0, 0), Some(&(P_LBL + 1, 0, 0))) {
            ctx.tick()?;
            n += 1;
        }
        Ok(n)
    }

    fn edge_label_set(&self, ctx: &QueryCtx) -> GdbResult<Vec<String>> {
        let mut out = Vec::new();
        let mut last: Option<u64> = None;
        for ((_, o, _), _) in self.pos.range(&(P_LBL, 0, 0), Some(&(P_LBL + 1, 0, 0))) {
            ctx.tick()?;
            if last != Some(*o) {
                last = Some(*o);
                if let Some(Value::Str(s)) = self.literal_value(*o) {
                    out.push(s.clone());
                }
            }
        }
        Ok(out)
    }

    fn vertices_with_property(
        &self,
        name: &str,
        value: &Value,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Vid>> {
        // Adapter-faithful: g.V.has(...) scans vertices, probing the SPO
        // tree per vertex — the automatic triple indexes are not exploited
        // by the per-step graph API (§6.5, BlazeGraph discussion).
        let Some(&p) = self.preds.get(name) else {
            return Ok(Vec::new());
        };
        let mut out = Vec::new();
        for ((_, _, s), _) in self.pos.range(&(P_TYPE, 0, 0), Some(&(P_TYPE + 1, 0, 0))) {
            ctx.tick()?;
            if let Some(o) = self.object_of(*s, p) {
                if self.literal_value(o) == Some(value) {
                    out.push(Vid(*s));
                }
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    fn edges_with_property(
        &self,
        name: &str,
        value: &Value,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Eid>> {
        let Some(&p) = self.preds.get(name) else {
            return Ok(Vec::new());
        };
        let mut out = Vec::new();
        for ((_, _, s), _) in self.pos.range(&(P_LBL, 0, 0), Some(&(P_LBL + 1, 0, 0))) {
            ctx.tick()?;
            if let Some(o) = self.object_of(*s, p) {
                if self.literal_value(o) == Some(value) {
                    out.push(Eid(*s));
                }
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    fn edges_with_label(&self, label: &str, ctx: &QueryCtx) -> GdbResult<Vec<Eid>> {
        let Some(&label_term) = self.literals.get(&Value::Str(label.to_string())) else {
            return Ok(Vec::new());
        };
        let mut out = Vec::new();
        for (_, _, s) in self.pos_range(P_LBL, Some(label_term)) {
            ctx.tick()?;
            out.push(Eid(s));
        }
        out.sort_unstable();
        Ok(out)
    }

    fn vertex(&self, v: Vid) -> GdbResult<Option<VertexData>> {
        if self.require_vertex(v.0).is_err() {
            return Ok(None);
        }
        let label = self
            .object_of(v.0, P_TYPE)
            .and_then(|o| self.literal_value(o))
            .and_then(|val| val.as_str())
            .unwrap_or("<unknown>")
            .to_string();
        Ok(Some(VertexData {
            id: v,
            label,
            props: self.props_of(v.0),
        }))
    }

    fn edge(&self, e: Eid) -> GdbResult<Option<EdgeData>> {
        if self.require_edge(e.0).is_err() {
            return Ok(None);
        }
        let src = self.object_of(e.0, P_SRC).expect("edge src");
        let dst = self.object_of(e.0, P_DST).expect("edge dst");
        let label = self
            .object_of(e.0, P_LBL)
            .and_then(|o| self.literal_value(o))
            .and_then(|val| val.as_str())
            .unwrap_or("<unknown>")
            .to_string();
        Ok(Some(EdgeData {
            id: e,
            src: Vid(src),
            dst: Vid(dst),
            label,
            props: self.props_of(e.0),
        }))
    }

    fn neighbors(
        &self,
        v: Vid,
        dir: Direction,
        label: Option<&str>,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Vid>> {
        Ok(self
            .vertex_edges(v, dir, label, ctx)?
            .into_iter()
            .map(|r| r.other)
            .collect())
    }

    fn vertex_edges(
        &self,
        v: Vid,
        dir: Direction,
        label: Option<&str>,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<EdgeRef>> {
        self.require_vertex(v.0)?;
        let want = match label {
            Some(l) => match self.literals.get(&Value::Str(l.to_string())) {
                Some(&t) => Some(t),
                None => return Ok(Vec::new()),
            },
            None => None,
        };
        let mut out = Vec::new();
        let visit = |edge_pred: u64, other_pred: u64, out: &mut Vec<EdgeRef>| -> GdbResult<()> {
            for (_, _, e) in self.pos_range(edge_pred, Some(v.0)) {
                ctx.tick()?;
                if let Some(want) = want {
                    // One more B+Tree access for the label of the reified edge.
                    if self.object_of(e, P_LBL) != Some(want) {
                        continue;
                    }
                }
                let Some(other) = self.object_of(e, other_pred) else {
                    continue;
                };
                out.push(EdgeRef {
                    eid: Eid(e),
                    other: Vid(other),
                });
            }
            Ok(())
        };
        if matches!(dir, Direction::Out | Direction::Both) {
            visit(P_SRC, P_DST, &mut out)?;
        }
        if matches!(dir, Direction::In | Direction::Both) {
            visit(P_DST, P_SRC, &mut out)?;
        }
        Ok(out)
    }

    fn vertex_degree(&self, v: Vid, dir: Direction, ctx: &QueryCtx) -> GdbResult<u64> {
        self.require_vertex(v.0)?;
        let mut n = 0u64;
        if matches!(dir, Direction::Out | Direction::Both) {
            for _ in self.pos_range(P_SRC, Some(v.0)) {
                ctx.tick()?;
                n += 1;
            }
        }
        if matches!(dir, Direction::In | Direction::Both) {
            for _ in self.pos_range(P_DST, Some(v.0)) {
                ctx.tick()?;
                n += 1;
            }
        }
        Ok(n)
    }

    fn vertex_edge_labels(&self, v: Vid, dir: Direction, ctx: &QueryCtx) -> GdbResult<Vec<String>> {
        let refs = self.vertex_edges(v, dir, None, ctx)?;
        let mut seen: Vec<u64> = Vec::new();
        for r in refs {
            if let Some(o) = self.object_of(r.eid.0, P_LBL) {
                if !seen.contains(&o) {
                    seen.push(o);
                }
            }
        }
        Ok(seen
            .into_iter()
            .filter_map(|o| self.literal_value(o))
            .filter_map(|val| val.as_str().map(String::from))
            .collect())
    }

    fn scan_vertices<'a>(
        &'a self,
        ctx: &'a QueryCtx,
    ) -> GdbResult<Box<dyn Iterator<Item = GdbResult<Vid>> + 'a>> {
        Ok(Box::new(
            self.pos
                .range(&(P_TYPE, 0, 0), Some(&(P_TYPE + 1, 0, 0)))
                .map(move |((_, _, s), _)| {
                    ctx.tick()?;
                    Ok(Vid(*s))
                }),
        ))
    }

    fn scan_edges<'a>(
        &'a self,
        ctx: &'a QueryCtx,
    ) -> GdbResult<Box<dyn Iterator<Item = GdbResult<Eid>> + 'a>> {
        Ok(Box::new(
            self.pos
                .range(&(P_LBL, 0, 0), Some(&(P_LBL + 1, 0, 0)))
                .map(move |((_, _, s), _)| {
                    ctx.tick()?;
                    Ok(Eid(*s))
                }),
        ))
    }

    fn vertex_property(&self, v: Vid, name: &str) -> GdbResult<Option<Value>> {
        self.require_vertex(v.0)?;
        let Some(&p) = self.preds.get(name) else {
            return Ok(None);
        };
        Ok(self
            .object_of(v.0, p)
            .and_then(|o| self.literal_value(o))
            .cloned())
    }

    fn edge_property(&self, e: Eid, name: &str) -> GdbResult<Option<Value>> {
        self.require_edge(e.0)?;
        let Some(&p) = self.preds.get(name) else {
            return Ok(None);
        };
        Ok(self
            .object_of(e.0, p)
            .and_then(|o| self.literal_value(o))
            .cloned())
    }

    fn edge_endpoints(&self, e: Eid) -> GdbResult<Option<(Vid, Vid)>> {
        if self.require_edge(e.0).is_err() {
            return Ok(None);
        }
        Ok(Some((
            Vid(self.object_of(e.0, P_SRC).expect("src")),
            Vid(self.object_of(e.0, P_DST).expect("dst")),
        )))
    }

    fn edge_label(&self, e: Eid) -> GdbResult<Option<String>> {
        if self.require_edge(e.0).is_err() {
            return Ok(None);
        }
        Ok(self
            .object_of(e.0, P_LBL)
            .and_then(|o| self.literal_value(o))
            .and_then(|val| val.as_str().map(String::from)))
    }

    fn vertex_label(&self, v: Vid) -> GdbResult<Option<String>> {
        if self.require_vertex(v.0).is_err() {
            return Ok(None);
        }
        Ok(self
            .object_of(v.0, P_TYPE)
            .and_then(|o| self.literal_value(o))
            .and_then(|val| val.as_str().map(String::from)))
    }

    fn has_vertex_index(&self, _prop: &str) -> bool {
        false
    }

    fn space(&self) -> SpaceReport {
        let mut r = SpaceReport::default();
        let key_bytes = |_: &Triple| 24u64;
        let val_bytes = |_: &()| 0u64;
        r.add("SPO index", self.spo.approx_bytes(key_bytes, val_bytes));
        r.add("POS index", self.pos.approx_bytes(key_bytes, val_bytes));
        r.add("OSP index", self.osp.approx_bytes(key_bytes, val_bytes));
        let dict: u64 = self
            .terms
            .iter()
            .map(|t| match t {
                Term::Literal(v) => 24 + v.approx_bytes(),
                Term::Pred(n) => 24 + n.len() as u64,
                _ => 8,
            })
            .sum();
        r.add("term dictionary", dict);
        // The journal is allocated in fixed-size extents.
        let raw = self.statements * STATEMENT_BYTES;
        let extents = raw.div_ceil(JOURNAL_EXTENT).max(1) * JOURNAL_EXTENT;
        r.add("journal (fixed extents)", extents);
        r
    }
}

impl GraphDb for TripleGraph {
    fn bulk_load(&mut self, data: &Dataset, opts: &LoadOptions) -> GdbResult<LoadStats> {
        if !self.vmap.is_empty() {
            return Err(GdbError::Invalid(
                "bulk_load requires an empty engine".into(),
            ));
        }
        if opts.bulk {
            // Bulk path: dictionary-encode everything first, then build each
            // index from pre-sorted statements (append-mostly inserts).
            let mut stmts: Vec<Triple> = Vec::new();
            for v in &data.vertices {
                let term = self.new_vertex_term();
                self.vmap.push(term);
                let label_term = self.literal(&Value::Str(v.label.clone()));
                stmts.push((term, P_TYPE, label_term));
                for (name, value) in &v.props {
                    let p = self.pred(name);
                    let o = self.literal(value);
                    stmts.push((term, p, o));
                }
            }
            for e in &data.edges {
                let term = self.new_edge_term();
                self.emap.push(term);
                let label_term = self.literal(&Value::Str(e.label.clone()));
                stmts.push((term, P_SRC, self.vmap[e.src as usize]));
                stmts.push((term, P_DST, self.vmap[e.dst as usize]));
                stmts.push((term, P_LBL, label_term));
                for (name, value) in &e.props {
                    let p = self.pred(name);
                    let o = self.literal(value);
                    stmts.push((term, p, o));
                }
            }
            stmts.sort_unstable();
            stmts.dedup();
            for &(s, p, o) in &stmts {
                self.spo.insert((s, p, o), ());
            }
            let mut pos_stmts: Vec<Triple> = stmts.iter().map(|&(s, p, o)| (p, o, s)).collect();
            pos_stmts.sort_unstable();
            for &k in &pos_stmts {
                self.pos.insert(k, ());
            }
            let mut osp_stmts: Vec<Triple> = stmts.iter().map(|&(s, p, o)| (o, s, p)).collect();
            osp_stmts.sort_unstable();
            for &k in &osp_stmts {
                self.osp.insert(k, ());
            }
            // Metadata once, at the end.
            for &(_, p, _) in &stmts {
                *self.pred_stats.entry(p).or_insert(0) += 1;
            }
            self.statements = stmts.len() as u64;
        } else {
            // Default path: statement-at-a-time, metadata after each item.
            for v in &data.vertices {
                let term = self.add_vertex_stmts(&v.label, &v.props);
                self.vmap.push(term);
            }
            for e in &data.edges {
                let term = self.add_edge_stmts(
                    self.vmap[e.src as usize],
                    self.vmap[e.dst as usize],
                    &e.label,
                    &e.props,
                );
                self.emap.push(term);
            }
        }
        Ok(LoadStats {
            vertices: data.vertices.len() as u64,
            edges: data.edges.len() as u64,
        })
    }

    fn add_vertex(&mut self, label: &str, props: &Props) -> GdbResult<Vid> {
        Ok(Vid(self.add_vertex_stmts(label, props)))
    }

    fn add_edge(&mut self, src: Vid, dst: Vid, label: &str, props: &Props) -> GdbResult<Eid> {
        self.require_vertex(src.0)?;
        self.require_vertex(dst.0)?;
        Ok(Eid(self.add_edge_stmts(src.0, dst.0, label, props)))
    }

    fn set_vertex_property(&mut self, v: Vid, name: &str, value: Value) -> GdbResult<()> {
        self.require_vertex(v.0)?;
        let p = self.pred(name);
        // Retract the old statement (if any), assert the new one.
        if let Some(o) = self.object_of(v.0, p) {
            self.retract_stmt(v.0, p, o);
        }
        let o = self.literal(&value);
        self.assert_stmt(v.0, p, o);
        Ok(())
    }

    fn set_edge_property(&mut self, e: Eid, name: &str, value: Value) -> GdbResult<()> {
        self.require_edge(e.0)?;
        let p = self.pred(name);
        if let Some(o) = self.object_of(e.0, p) {
            self.retract_stmt(e.0, p, o);
        }
        let o = self.literal(&value);
        self.assert_stmt(e.0, p, o);
        Ok(())
    }

    fn remove_vertex(&mut self, v: Vid) -> GdbResult<()> {
        self.require_vertex(v.0)?;
        // Incident edges via POS on src/dst.
        let mut incident: Vec<u64> = self
            .pos_range(P_SRC, Some(v.0))
            .into_iter()
            .map(|(_, _, s)| s)
            .collect();
        incident.extend(
            self.pos_range(P_DST, Some(v.0))
                .into_iter()
                .map(|(_, _, s)| s),
        );
        incident.sort_unstable();
        incident.dedup();
        for e in incident {
            self.remove_edge(Eid(e))?;
        }
        for (s, p, o) in self.spo_range(v.0, None) {
            self.retract_stmt(s, p, o);
        }
        Ok(())
    }

    fn remove_edge(&mut self, e: Eid) -> GdbResult<()> {
        self.require_edge(e.0)?;
        for (s, p, o) in self.spo_range(e.0, None) {
            self.retract_stmt(s, p, o);
        }
        Ok(())
    }

    fn remove_vertex_property(&mut self, v: Vid, name: &str) -> GdbResult<Option<Value>> {
        self.require_vertex(v.0)?;
        let Some(&p) = self.preds.get(name) else {
            return Ok(None);
        };
        if let Some(o) = self.object_of(v.0, p) {
            let old = self.literal_value(o).cloned();
            self.retract_stmt(v.0, p, o);
            Ok(old)
        } else {
            Ok(None)
        }
    }

    fn remove_edge_property(&mut self, e: Eid, name: &str) -> GdbResult<Option<Value>> {
        self.require_edge(e.0)?;
        let Some(&p) = self.preds.get(name) else {
            return Ok(None);
        };
        if let Some(o) = self.object_of(e.0, p) {
            let old = self.literal_value(o).cloned();
            self.retract_stmt(e.0, p, o);
            Ok(old)
        } else {
            Ok(None)
        }
    }

    fn create_vertex_index(&mut self, _prop: &str) -> GdbResult<()> {
        Err(GdbError::Unsupported(
            "BlazeGraph-class engine has no user-controllable attribute indexes".into(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_model::testkit;

    #[test]
    fn conformance() {
        testkit::conformance_suite(&mut || Box::new(TripleGraph::new()));
    }

    #[test]
    fn non_bulk_load_matches_bulk_load() {
        let mut bulk = TripleGraph::new();
        bulk.bulk_load(
            &testkit::tiny_dataset(),
            &LoadOptions {
                bulk: true,
                index_during_load: false,
            },
        )
        .unwrap();
        let mut slow = TripleGraph::new();
        slow.bulk_load(
            &testkit::tiny_dataset(),
            &LoadOptions {
                bulk: false,
                index_during_load: false,
            },
        )
        .unwrap();
        let ctx = QueryCtx::unbounded();
        assert_eq!(
            bulk.vertex_count(&ctx).unwrap(),
            slow.vertex_count(&ctx).unwrap()
        );
        assert_eq!(
            bulk.edge_count(&ctx).unwrap(),
            slow.edge_count(&ctx).unwrap()
        );
        let mut a = bulk.edge_label_set(&ctx).unwrap();
        let mut b = slow.edge_label_set(&ctx).unwrap();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert_eq!(bulk.statements, slow.statements);
    }

    #[test]
    fn statements_per_element() {
        let mut g = TripleGraph::new();
        let a = g
            .add_vertex("n", &vec![("p".into(), Value::Int(1))])
            .unwrap();
        assert_eq!(g.statements, 2, "vertex = type + 1 prop");
        let b = g.add_vertex("n", &vec![]).unwrap();
        assert_eq!(g.statements, 3);
        g.add_edge(a, b, "l", &vec![("w".into(), Value::Int(2))])
            .unwrap();
        assert_eq!(g.statements, 7, "edge = src + dst + label + 1 prop");
    }

    #[test]
    fn three_indexes_stay_in_sync() {
        let mut g = TripleGraph::new();
        g.bulk_load(&testkit::tiny_dataset(), &LoadOptions::default())
            .unwrap();
        assert_eq!(g.spo.len(), g.pos.len());
        assert_eq!(g.spo.len(), g.osp.len());
        let v = g.resolve_vertex(0).unwrap();
        g.remove_vertex(v).unwrap();
        assert_eq!(g.spo.len(), g.pos.len());
        assert_eq!(g.spo.len(), g.osp.len());
    }

    #[test]
    fn journal_space_is_extent_quantized() {
        let g = TripleGraph::new();
        let space = g.space();
        let journal = space
            .components
            .iter()
            .find(|(n, _)| n.starts_with("journal"))
            .map(|(_, b)| *b)
            .unwrap();
        assert_eq!(journal % JOURNAL_EXTENT, 0);
        assert!(
            journal >= JOURNAL_EXTENT,
            "at least one extent pre-allocated"
        );
    }

    #[test]
    fn literals_are_shared_across_elements() {
        let mut g = TripleGraph::new();
        g.add_vertex("person", &vec![("city".into(), Value::Str("x".into()))])
            .unwrap();
        let before = g.terms.len();
        g.add_vertex("person", &vec![("city".into(), Value::Str("x".into()))])
            .unwrap();
        // Only the new vertex term is allocated; label, pred, literal reused.
        assert_eq!(g.terms.len(), before + 1);
    }

    #[test]
    fn update_replaces_statement() {
        let mut g = TripleGraph::new();
        let v = g
            .add_vertex("n", &vec![("p".into(), Value::Int(1))])
            .unwrap();
        let stmts = g.statements;
        g.set_vertex_property(v, "p", Value::Int(2)).unwrap();
        assert_eq!(g.statements, stmts, "retract + assert keeps count");
        assert_eq!(g.vertex_property(v, "p").unwrap(), Some(Value::Int(2)));
    }
}
