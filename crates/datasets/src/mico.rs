//! MiCo co-authorship network generator.
//!
//! Table 3 shape: |V| = 100K, |E| = 1.08M, |L| = 106, 1.3K components with a
//! 93K giant component, avg degree 21.6, max 1.3K, diameter 23. "Nodes
//! represent authors, while edges represent co-authorships … and have as a
//! label the number of co-authored papers" — so the label alphabet is the
//! set of distinct co-authorship counts, heavily skewed toward "1".

use gm_model::{Dataset, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::power_law::{AttachmentPool, Zipf};
use crate::scale::Scale;

const FIELDS: [&str; 10] = [
    "databases",
    "theory",
    "systems",
    "ml",
    "networks",
    "graphics",
    "hci",
    "security",
    "bioinformatics",
    "pl",
];

/// Generate the MiCo-shaped dataset.
pub fn generate(scale: Scale, seed: u64) -> Dataset {
    let n = scale.apply(100_000, 400);
    let target_edges = ((n as f64) * 10.8) as u64; // avg degree ≈ 21.6
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9ea5_0002);
    let mut d = Dataset::new("mico");

    let field_sampler = Zipf::new(FIELDS.len(), 0.8);
    for i in 0..n {
        let field = FIELDS[field_sampler.sample(&mut rng)];
        d.add_vertex(
            "author",
            vec![
                ("name".into(), Value::Str(format!("author-{i}"))),
                ("field".into(), Value::Str(field.to_string())),
            ],
        );
    }

    // Co-authorship counts: Zipf over 1..=106 (most pairs co-author once).
    let count_sampler = Zipf::new(106, 1.6);
    let mut pool = AttachmentPool::new(n);
    let mut seen = std::collections::HashSet::new();
    let mut edges = 0u64;
    let mut guard = 0u64;
    while edges < target_edges && guard < target_edges * 50 {
        guard += 1;
        let a = pool.sample(&mut rng, 0.12);
        let b = pool.sample(&mut rng, 0.25);
        if a == b || !seen.insert((a.min(b), a.max(b))) {
            continue;
        }
        let papers = count_sampler.sample(&mut rng) + 1;
        d.add_edge(a, b, papers.to_string(), vec![]);
        pool.touch(a);
        pool.touch(b);
        edges += 1;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::dataset_stats;

    #[test]
    fn deterministic() {
        let a = generate(Scale::tiny(), 5);
        let b = generate(Scale::tiny(), 5);
        assert_eq!(a.edges, b.edges);
    }

    #[test]
    fn shape_at_small_scale() {
        let d = generate(Scale::small(), 42);
        d.validate().unwrap();
        let v = d.vertex_count() as f64;
        let e = d.edge_count() as f64;
        // Average total degree ≈ 2E/V ≈ 21.6 (±40%).
        let avg = 2.0 * e / v;
        assert!(avg > 12.0 && avg < 30.0, "avg degree {avg}");
        let stats = dataset_stats(&d);
        assert!(
            stats.max_component as f64 > 0.7 * v,
            "giant component holds most authors"
        );
        assert!(
            stats.max_degree as f64 > avg * 3.0,
            "hubs well above average ({} vs {avg})",
            stats.max_degree
        );
        // Labels are numeric strings, skewed toward "1".
        let ones = d.edges.iter().filter(|e| e.label == "1").count();
        assert!(ones as f64 > 0.4 * e, "most pairs co-author once");
    }

    #[test]
    fn labels_are_paper_counts() {
        let d = generate(Scale::tiny(), 3);
        for e in &d.edges {
            let n: u32 = e.label.parse().expect("numeric label");
            assert!((1..=106).contains(&n));
        }
    }
}
