//! Yeast protein-interaction network generator.
//!
//! Table 3 shape: |V| = 2.3K, |E| = 7.1K, |L| = 167, 101 components with a
//! 2.2K-vertex giant component, avg degree 6.1, max 66, diameter 11. Nodes
//! carry "the short name, a long name, a description, and a label based on
//! its putative function class"; edge labels are "the respective protein
//! classes" (pairs of function classes).

use gm_model::{Dataset, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::power_law::{AttachmentPool, Zipf};
use crate::scale::Scale;

/// Protein function classes (Bu et al. 2003 use ~13 broad classes).
const FUNCTION_CLASSES: [&str; 13] = [
    "metabolism",
    "energy",
    "cell-growth",
    "transcription",
    "protein-synthesis",
    "protein-destination",
    "transport",
    "signal-transduction",
    "cell-rescue",
    "cell-death",
    "ionic-homeostasis",
    "cell-organization",
    "unclassified",
];

/// Generate the Yeast-shaped dataset. Yeast is already laptop-sized, so
/// scaling only kicks in below `Scale::small` (the floor keeps ≥ 120
/// proteins for test runs).
pub fn generate(scale: Scale, seed: u64) -> Dataset {
    let n = scale.apply(2361 * 2000, 120).min(2361); // paper size cap
    let target_edges = ((n as f64) * 3.05) as u64; // avg degree ≈ 6.1
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9ea5_0001);
    let mut d = Dataset::new("yeast");

    let class_sampler = Zipf::new(FUNCTION_CLASSES.len(), 0.9);
    let mut classes = Vec::with_capacity(n as usize);
    for i in 0..n {
        let class = FUNCTION_CLASSES[class_sampler.sample(&mut rng)];
        classes.push(class);
        d.add_vertex(
            "protein",
            vec![
                ("short_name".into(), Value::Str(format!("Y{i:04}"))),
                (
                    "long_name".into(),
                    Value::Str(format!("budding yeast protein {i}")),
                ),
                (
                    "description".into(),
                    Value::Str(format!("S.cerevisiae ORF {i} involved in {class}")),
                ),
                ("class".into(), Value::Str(class.to_string())),
            ],
        );
    }

    // PPI edges: preferential attachment with moderate skew; ~4% of nodes
    // stay isolated so the component count matches the fragmented shape.
    let mut pool = AttachmentPool::new(n);
    let mut seen = std::collections::HashSet::new();
    let mut edges = 0u64;
    let mut guard = 0u64;
    while edges < target_edges && guard < target_edges * 50 {
        guard += 1;
        let a = pool.sample(&mut rng, 0.35);
        let b = pool.sample(&mut rng, 0.35);
        if a == b || !seen.insert((a.min(b), a.max(b))) {
            continue;
        }
        // Edge label: the interacting protein-class pair.
        let (ca, cb) = (classes[a as usize], classes[b as usize]);
        let label = if ca <= cb {
            format!("{ca}--{cb}")
        } else {
            format!("{cb}--{ca}")
        };
        d.add_edge(a, b, label, vec![]);
        pool.touch(a);
        pool.touch(b);
        edges += 1;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::dataset_stats;

    #[test]
    fn deterministic() {
        let a = generate(Scale::tiny(), 7);
        let b = generate(Scale::tiny(), 7);
        assert_eq!(a.vertices.len(), b.vertices.len());
        assert_eq!(a.edges, b.edges);
        let c = generate(Scale::tiny(), 8);
        assert_ne!(a.edges, c.edges, "different seed, different graph");
    }

    #[test]
    fn paper_scale_shape() {
        let d = generate(
            Scale {
                factor: 1.0,
                name: "paper",
            },
            42,
        );
        d.validate().unwrap();
        assert_eq!(d.vertex_count(), 2361);
        let e = d.edge_count() as f64;
        assert!(e > 6000.0 && e < 8000.0, "≈7.1K edges, got {e}");
        let labels = d.edge_label_set().len();
        assert!(
            labels > 60 && labels <= 169,
            "many class-pair labels, got {labels}"
        );
        let stats = dataset_stats(&d);
        assert!(stats.components > 20, "fragmented ({})", stats.components);
        assert!(
            stats.max_component as f64 > 0.8 * d.vertex_count() as f64,
            "giant component"
        );
        assert!(stats.max_degree >= 30, "hub proteins exist");
    }

    #[test]
    fn node_properties_present() {
        let d = generate(Scale::tiny(), 1);
        let v = &d.vertices[0];
        let names: Vec<&str> = v.props.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec!["short_name", "long_name", "description", "class"]
        );
    }
}
