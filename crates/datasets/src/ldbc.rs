//! LDBC-style social network generator.
//!
//! The paper uses the LDBC SNB data generator "instructed to produce a
//! dataset simulating the activity of 1000 users over a period of 3 years"
//! (§5). Table 3 shape: |V| = 184K, |E| = 1.5M, |L| = 15, **one** connected
//! component, avg degree 16.6, max 48K, diameter 10 — and it is "the only
//! dataset with properties on both edges and nodes".
//!
//! This generator reproduces the entity mix (persons, places, organisations,
//! forums, posts, comments, tags), the power-law friendship graph with
//! interest-based assortativity, edge properties (`creationDate`,
//! `classYear`, `workFrom`, …), and the single-component property.

use gm_model::{Dataset, Props, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::power_law::{AttachmentPool, Zipf};
use crate::scale::Scale;

/// The 15 edge labels (Table 3: |L| = 15).
pub const EDGE_LABELS: [&str; 15] = [
    "knows",
    "hasInterest",
    "studyAt",
    "workAt",
    "isLocatedIn",
    "likes",
    "hasCreator",
    "hasMember",
    "hasModerator",
    "containerOf",
    "replyOf",
    "hasTag",
    "isPartOf",
    "hasType",
    "isSubclassOf",
];

const FIRST_NAMES: [&str; 12] = [
    "Jan", "Maria", "Chen", "Aisha", "Ivan", "Noor", "Lucas", "Emma", "Yuki", "Omar", "Sofia",
    "Raj",
];
const BROWSERS: [&str; 4] = ["Firefox", "Chrome", "Safari", "Edge"];

/// A day count relative to the simulation start (3 years of activity).
fn creation_date(rng: &mut StdRng) -> Value {
    Value::Int(rng.gen_range(0..3 * 365))
}

/// Generate the LDBC-shaped dataset.
pub fn generate(scale: Scale, seed: u64) -> Dataset {
    // Persons drive everything; the paper's 1000 persons yield 184K nodes.
    let persons = scale.apply(1000 * 2000, 60).min(20_000);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1dbc_0001);
    let mut d = Dataset::new("ldbc");

    // --- static world: places, organisations, tags --------------------
    let countries = (persons / 40).clamp(5, 60);
    let cities = (persons / 8).clamp(10, 400);
    let universities = (persons / 20).clamp(5, 100);
    let companies = (persons / 15).clamp(5, 150);
    let tag_classes = 12u64.min(4 + persons / 50);
    let tags = (persons / 2).clamp(20, 2000);

    let mut country_ids = Vec::new();
    for i in 0..countries {
        country_ids.push(d.add_vertex(
            "country",
            vec![("name".into(), Value::Str(format!("country-{i}")))],
        ));
    }
    let mut city_ids = Vec::new();
    for i in 0..cities {
        let id = d.add_vertex(
            "city",
            vec![("name".into(), Value::Str(format!("city-{i}")))],
        );
        city_ids.push(id);
        let country = country_ids[(i % countries) as usize];
        d.add_edge(id, country, "isPartOf", vec![]);
    }
    let mut uni_ids = Vec::new();
    for i in 0..universities {
        let id = d.add_vertex(
            "university",
            vec![("name".into(), Value::Str(format!("uni-{i}")))],
        );
        uni_ids.push(id);
        let city = city_ids[(i % cities) as usize];
        d.add_edge(id, city, "isLocatedIn", vec![]);
    }
    let mut company_ids = Vec::new();
    for i in 0..companies {
        let id = d.add_vertex(
            "company",
            vec![("name".into(), Value::Str(format!("company-{i}")))],
        );
        company_ids.push(id);
        let country = country_ids[(i % countries) as usize];
        d.add_edge(id, country, "isLocatedIn", vec![]);
    }
    let mut class_ids = Vec::new();
    for i in 0..tag_classes {
        let id = d.add_vertex(
            "tagclass",
            vec![("name".into(), Value::Str(format!("class-{i}")))],
        );
        if let Some(&parent) = class_ids.first() {
            d.add_edge(id, parent, "isSubclassOf", vec![]);
        }
        class_ids.push(id);
    }
    let mut tag_ids = Vec::new();
    let class_sampler = Zipf::new(class_ids.len(), 1.0);
    for i in 0..tags {
        let id = d.add_vertex("tag", vec![("name".into(), Value::Str(format!("tag-{i}")))]);
        tag_ids.push(id);
        let class = class_ids[class_sampler.sample(&mut rng)];
        d.add_edge(id, class, "hasType", vec![]);
    }

    // --- persons ---------------------------------------------------------
    let mut person_ids = Vec::new();
    // Interests drive assortativity: persons sharing interests befriend.
    let interest_sampler = Zipf::new(tag_ids.len(), 0.9);
    let mut interests_of: Vec<Vec<u64>> = Vec::with_capacity(persons as usize);
    for i in 0..persons {
        let name = FIRST_NAMES[(i % FIRST_NAMES.len() as u64) as usize];
        let id = d.add_vertex(
            "person",
            vec![
                ("firstName".into(), Value::Str(name.to_string())),
                ("lastName".into(), Value::Str(format!("surname-{i}"))),
                (
                    "birthday".into(),
                    Value::Int(rng.gen_range(-15_000..-5_000)),
                ),
                (
                    "browserUsed".into(),
                    Value::Str(BROWSERS[rng.gen_range(0..BROWSERS.len())].to_string()),
                ),
            ],
        );
        person_ids.push(id);
        let city = city_ids[rng.gen_range(0..city_ids.len())];
        d.add_edge(
            id,
            city,
            "isLocatedIn",
            vec![("since".into(), creation_date(&mut rng))],
        );
        if rng.gen_bool(0.7) {
            let uni = uni_ids[rng.gen_range(0..uni_ids.len())];
            d.add_edge(
                id,
                uni,
                "studyAt",
                vec![("classYear".into(), Value::Int(rng.gen_range(1990..2015)))],
            );
        }
        if rng.gen_bool(0.8) {
            let comp = company_ids[rng.gen_range(0..company_ids.len())];
            d.add_edge(
                id,
                comp,
                "workAt",
                vec![("workFrom".into(), Value::Int(rng.gen_range(1995..2018)))],
            );
        }
        let mut my_interests = Vec::new();
        for _ in 0..rng.gen_range(2..6) {
            let tag = tag_ids[interest_sampler.sample(&mut rng)];
            if !my_interests.contains(&tag) {
                my_interests.push(tag);
                d.add_edge(id, tag, "hasInterest", vec![]);
            }
        }
        interests_of.push(my_interests);
    }

    // --- friendship graph: power law + assortativity + connectivity ------
    // Spanning chain first (single component, Table 3's "#: 1").
    for w in person_ids.windows(2) {
        d.add_edge(
            w[0],
            w[1],
            "knows",
            vec![("creationDate".into(), creation_date(&mut rng))],
        );
    }
    let knows_target = persons * 7; // part of avg degree 16.6 budget
    let mut pool = AttachmentPool::new(persons);
    let mut seen = std::collections::HashSet::new();
    let mut made = 0u64;
    let mut guard = 0u64;
    while made < knows_target && guard < knows_target * 40 {
        guard += 1;
        let a_idx = pool.sample(&mut rng, 0.3) as usize;
        // Assortative pick: with p=0.35 befriend someone sharing a tag
        // (approximated by a tag-mate index walk), else preferential.
        let b_idx = if rng.gen_bool(0.35) && !interests_of[a_idx].is_empty() {
            // Pick any person whose index hashes near a shared tag: cheap
            // deterministic assortativity proxy.
            let tag = interests_of[a_idx][rng.gen_range(0..interests_of[a_idx].len())];
            ((tag.wrapping_mul(2654435761) + rng.gen_range(0..64)) % persons) as usize
        } else {
            pool.sample(&mut rng, 0.3) as usize
        };
        if a_idx == b_idx || !seen.insert((a_idx.min(b_idx), a_idx.max(b_idx))) {
            continue;
        }
        d.add_edge(
            person_ids[a_idx],
            person_ids[b_idx],
            "knows",
            vec![("creationDate".into(), creation_date(&mut rng))],
        );
        pool.touch(a_idx as u64);
        pool.touch(b_idx as u64);
        made += 1;
    }

    // --- forums, posts, comments ------------------------------------------
    let forums = persons / 3;
    let mut forum_ids = Vec::new();
    for i in 0..forums {
        let id = d.add_vertex(
            "forum",
            vec![("title".into(), Value::Str(format!("forum-{i}")))],
        );
        forum_ids.push(id);
        let moderator = person_ids[rng.gen_range(0..person_ids.len())];
        d.add_edge(id, moderator, "hasModerator", vec![]);
        for _ in 0..rng.gen_range(2..8) {
            let member = person_ids[rng.gen_range(0..person_ids.len())];
            d.add_edge(
                id,
                member,
                "hasMember",
                vec![("joinDate".into(), creation_date(&mut rng))],
            );
        }
    }
    // Posts dominate node count in LDBC; activity is power-law per person.
    let posts = persons * 12;
    let author_sampler = Zipf::new(person_ids.len(), 0.7);
    let mut post_ids = Vec::new();
    for i in 0..posts {
        let id = d.add_vertex(
            "post",
            vec![
                ("content".into(), Value::Str(format!("post body {i}"))),
                ("creationDate".into(), creation_date(&mut rng)),
                ("length".into(), Value::Int(rng.gen_range(10..500))),
            ],
        );
        post_ids.push(id);
        let author = person_ids[author_sampler.sample(&mut rng)];
        d.add_edge(id, author, "hasCreator", vec![]);
        let forum = forum_ids[rng.gen_range(0..forum_ids.len())];
        d.add_edge(forum, id, "containerOf", vec![]);
        if rng.gen_bool(0.6) {
            let tag = tag_ids[interest_sampler.sample(&mut rng)];
            d.add_edge(id, tag, "hasTag", vec![]);
        }
        // Likes with edge property.
        for _ in 0..rng.gen_range(0..4) {
            let fan = person_ids[author_sampler.sample(&mut rng)];
            d.add_edge(
                fan,
                id,
                "likes",
                vec![("creationDate".into(), creation_date(&mut rng))],
            );
        }
    }
    let comments = persons * 6;
    for i in 0..comments {
        let id = d.add_vertex(
            "comment",
            vec![
                ("content".into(), Value::Str(format!("reply {i}"))),
                ("creationDate".into(), creation_date(&mut rng)),
            ],
        );
        let author = person_ids[author_sampler.sample(&mut rng)];
        d.add_edge(id, author, "hasCreator", vec![]);
        let parent = post_ids[rng.gen_range(0..post_ids.len())];
        d.add_edge(id, parent, "replyOf", vec![]);
    }
    d
}

/// Convenience: the canonical node property list used by the complex-query
/// workload when creating a new account (Fig. 2's `create`).
pub fn new_account_props(i: u64) -> Props {
    vec![
        ("firstName".into(), Value::Str(format!("new-user-{i}"))),
        ("lastName".into(), Value::Str("graphmark".into())),
        ("birthday".into(), Value::Int(-9000)),
        ("browserUsed".into(), Value::Str("Firefox".into())),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::dataset_stats;

    #[test]
    fn shape_matches_table3() {
        let d = generate(Scale::small(), 42);
        d.validate().unwrap();
        // Exactly the 15 labels (a subset may be absent at tiny person
        // counts; small scale must produce all 15).
        let labels = d.edge_label_set();
        assert_eq!(labels.len(), 15, "labels: {labels:?}");
        // Single connected component.
        let stats = dataset_stats(&d);
        assert_eq!(stats.components, 1, "LDBC is one component");
        // Persons are a minority of nodes (posts dominate), as in LDBC.
        let persons = d.vertices.iter().filter(|v| v.label == "person").count();
        assert!(persons * 5 < d.vertex_count());
        // Degrees heavy-tailed.
        assert!(stats.max_degree as f64 > 10.0 * stats.avg_degree);
    }

    #[test]
    fn edge_properties_present() {
        let d = generate(Scale::tiny(), 42);
        let with_props = d.edges.iter().filter(|e| !e.props.is_empty()).count();
        assert!(
            with_props * 4 > d.edge_count(),
            "a good share of edges carry properties ({with_props}/{})",
            d.edge_count()
        );
        // knows edges always carry creationDate.
        for e in d.edges.iter().filter(|e| e.label == "knows") {
            assert!(e.props.iter().any(|(n, _)| n == "creationDate"));
        }
    }

    #[test]
    fn deterministic() {
        let a = generate(Scale::tiny(), 3);
        let b = generate(Scale::tiny(), 3);
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.vertices.len(), b.vertices.len());
    }

    #[test]
    fn account_props_shape() {
        let p = new_account_props(7);
        assert_eq!(p.len(), 4);
        assert_eq!(p[0].0, "firstName");
    }
}
