//! # gm-datasets — dataset generators, samplers and statistics
//!
//! The paper evaluates on four dataset families (§5, *Datasets*): the Yeast
//! protein-interaction network, the MiCo co-authorship graph, four Freebase
//! samples (Frb-O by topic; Frb-S/M/L by sampling 0.1 / 1 / 10 % of edges),
//! and an LDBC social network. The original data is either unavailable or
//! far beyond laptop scale, so this crate provides **seeded synthetic
//! generators that reproduce the shape statistics of Table 3** (degree
//! skew, label cardinality, fragmentation, density, modularity) at a
//! configurable scale — see DESIGN.md §2 for the substitution rationale.
//!
//! * [`scale::Scale`] — scale presets (`tiny`, `small`, `medium`);
//! * [`yeast`], [`mico`], [`freebase`], [`ldbc`] — the generators;
//! * [`stats`] — everything Table 3 reports (components, density,
//!   modularity, degrees, diameter);
//! * GraphSON I/O re-exported from `gm_model::graphson`.

pub mod freebase;
pub mod ldbc;
pub mod mico;
pub mod power_law;
pub mod scale;
pub mod stats;
pub mod yeast;

pub use gm_model::graphson;
pub use scale::Scale;
pub use stats::{dataset_stats, DatasetStats};

use gm_model::Dataset;

/// Identifier for the seven benchmark datasets of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// Protein-interaction network (small, dense, many labels).
    Yeast,
    /// Co-authorship network (100K nodes at full scale).
    Mico,
    /// Freebase topic sample: organization/business/government/finance/
    /// geography/military.
    FrbO,
    /// Freebase 0.1 % edge sample.
    FrbS,
    /// Freebase 1 % edge sample.
    FrbM,
    /// Freebase 10 % edge sample.
    FrbL,
    /// LDBC-style social network (properties on nodes *and* edges).
    Ldbc,
}

impl DatasetId {
    /// All seven datasets in the order the paper lists them.
    pub const ALL: [DatasetId; 7] = [
        DatasetId::Yeast,
        DatasetId::Mico,
        DatasetId::FrbO,
        DatasetId::FrbS,
        DatasetId::FrbM,
        DatasetId::FrbL,
        DatasetId::Ldbc,
    ];

    /// The four Freebase samples the result sections focus on.
    pub const FREEBASE: [DatasetId; 4] = [
        DatasetId::FrbS,
        DatasetId::FrbO,
        DatasetId::FrbM,
        DatasetId::FrbL,
    ];

    /// Canonical short name (Table 3 row label).
    pub fn name(&self) -> &'static str {
        match self {
            DatasetId::Yeast => "yeast",
            DatasetId::Mico => "mico",
            DatasetId::FrbO => "frb-o",
            DatasetId::FrbS => "frb-s",
            DatasetId::FrbM => "frb-m",
            DatasetId::FrbL => "frb-l",
            DatasetId::Ldbc => "ldbc",
        }
    }
}

/// Generate a dataset by id at the given scale with a fixed seed.
///
/// The Freebase samples share one underlying synthetic knowledge base per
/// (scale, seed): generating `FrbS`, `FrbM`, `FrbL`, `FrbO` individually
/// re-derives it, which keeps this function self-contained; callers that
/// need several samples should use [`freebase::generate_all`] once.
pub fn generate(id: DatasetId, scale: Scale, seed: u64) -> Dataset {
    match id {
        DatasetId::Yeast => yeast::generate(scale, seed),
        DatasetId::Mico => mico::generate(scale, seed),
        DatasetId::Ldbc => ldbc::generate(scale, seed),
        DatasetId::FrbO | DatasetId::FrbS | DatasetId::FrbM | DatasetId::FrbL => {
            let all = freebase::generate_all(scale, seed);
            match id {
                DatasetId::FrbO => all.frb_o,
                DatasetId::FrbS => all.frb_s,
                DatasetId::FrbM => all.frb_m,
                DatasetId::FrbL => all.frb_l,
                _ => unreachable!(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(DatasetId::FrbO.name(), "frb-o");
        assert_eq!(DatasetId::ALL.len(), 7);
    }

    #[test]
    fn generate_dispatches() {
        let d = generate(DatasetId::Yeast, Scale::tiny(), 42);
        assert_eq!(d.name, "yeast");
        assert!(d.vertex_count() > 0);
        d.validate().unwrap();
    }
}
