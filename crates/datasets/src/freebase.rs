//! Synthetic Freebase knowledge base and the paper's four samples.
//!
//! The paper takes the cleaned 300M-fact Freebase dump and derives (§5):
//!
//! * **Frb-O** — the induced subgraph on nodes "related to the topics of
//!   organization, business, government, finance, geography and military";
//! * **Frb-S / Frb-M / Frb-L** — "randomly selecting 0.1 %, 1 %, and 10 % of
//!   the edges from the complete graph".
//!
//! We reproduce the *method*: generate one seeded synthetic knowledge base
//! with Freebase's shape (heavily skewed degrees — Table 3 reports a max
//! degree of 1.4M at 28M nodes —, thousands of relation labels with Zipf
//! frequencies, topical domains with strong intra-domain linking, high
//! fragmentation), then apply exactly the paper's sampling rules.

use gm_model::fxmap::FxHashMap;
use gm_model::{Dataset, DsEdge, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::power_law::{AttachmentPool, Zipf};
use crate::scale::Scale;

/// Topic domains; the first six are the Frb-O topics.
pub const DOMAINS: [&str; 20] = [
    "organization",
    "business",
    "government",
    "finance",
    "geography",
    "military",
    "people",
    "film",
    "music",
    "book",
    "sports",
    "location",
    "education",
    "medicine",
    "biology",
    "astronomy",
    "chemistry",
    "computer",
    "language",
    "religion",
];

/// Number of Frb-O topic domains (prefix of [`DOMAINS`]).
pub const O_TOPICS: usize = 6;

/// The complete synthetic knowledge base plus the four derived samples.
#[derive(Debug, Clone)]
pub struct FreebaseFamily {
    /// The full synthetic KB (the paper's "complete graph").
    pub full: Dataset,
    /// Topic-restricted sample.
    pub frb_o: Dataset,
    /// 0.1 % edge sample.
    pub frb_s: Dataset,
    /// 1 % edge sample.
    pub frb_m: Dataset,
    /// 10 % edge sample.
    pub frb_l: Dataset,
}

/// Generate the full KB and derive all four samples (one pass).
pub fn generate_all(scale: Scale, seed: u64) -> FreebaseFamily {
    let full = generate_full(scale, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xf6eb_0a5e);
    // Exactly the paper's sampling rule: 0.1 %, 1 %, 10 % of the edges of
    // the complete graph (the scale factor already shrank the full graph).
    let frb_s = sample_edges(&full, "frb-s", 0.001, &mut rng);
    let frb_m = sample_edges(&full, "frb-m", 0.01, &mut rng);
    let frb_l = sample_edges(&full, "frb-l", 0.1, &mut rng);
    let frb_o = topic_sample(&full, "frb-o");
    FreebaseFamily {
        full,
        frb_o,
        frb_s,
        frb_m,
        frb_l,
    }
}

/// Generate the full synthetic knowledge base.
pub fn generate_full(scale: Scale, seed: u64) -> Dataset {
    // Paper's cleaned full graph: 76M nodes / 314M edges. At Scale::small
    // (1/2000) this is 38K nodes / 157K edges, so Frb-L ≈ 16K edges.
    let n = scale.apply(76_000_000, 800);
    let target_edges = scale.apply(314_000_000, 3200);
    let n_labels = ((target_edges as f64).sqrt() as usize).clamp(40, 4000);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xf6eb_0001);
    let mut d = Dataset::new("freebase");

    // Domain assignment: Zipf over the 20 domains, but with the six O-topics
    // deliberately placed mid-tail so Frb-O lands between Frb-M and Frb-L
    // as in Table 3.
    let domain_order: [usize; 20] = [
        6, 7, 8, 0, 9, 1, 10, 2, 11, 3, 12, 4, 13, 5, 14, 15, 16, 17, 18, 19,
    ];
    let domain_sampler = Zipf::new(DOMAINS.len(), 0.75);
    let mut domains: Vec<u8> = Vec::with_capacity(n as usize);
    for i in 0..n {
        let rank = domain_sampler.sample(&mut rng);
        let dom = domain_order[rank];
        domains.push(dom as u8);
        d.add_vertex(
            "topic",
            vec![
                ("mid".into(), Value::Str(format!("/m/{i:07x}"))),
                ("domain".into(), Value::Str(DOMAINS[dom].to_string())),
                ("notable".into(), Value::Bool(i % 97 == 0)),
            ],
        );
    }

    // Relation labels: Zipf frequencies over a large alphabet, scoped by
    // the source domain (label = "<domain>/<relation-k>").
    let label_sampler = Zipf::new(n_labels, 1.05);
    // Per-domain index of member vertices for intra-domain linking.
    let mut members: Vec<Vec<u64>> = vec![Vec::new(); DOMAINS.len()];
    for (i, dom) in domains.iter().enumerate() {
        members[*dom as usize].push(i as u64);
    }
    let mut pool = AttachmentPool::new(n);
    let mut edges = 0u64;
    while edges < target_edges {
        let src = pool.sample(&mut rng, 0.2);
        let dom = domains[src as usize] as usize;
        // 85% intra-domain edges → the near-1.0 modularity of Table 3.
        let dst = if rng.gen_bool(0.85) {
            let list = &members[dom];
            list[rng.gen_range(0..list.len())]
        } else {
            pool.sample(&mut rng, 0.5)
        };
        if src == dst {
            continue;
        }
        let rel = label_sampler.sample(&mut rng);
        let label = format!("{}/r{rel}", DOMAINS[dom]);
        d.add_edge(src, dst, label, vec![]);
        pool.touch(src);
        // Destinations gain attachment mass at half rate: Freebase's object
        // hubs (countries, professions) absorb edges massively.
        if rng.gen_bool(0.5) {
            pool.touch(dst);
        }
        edges += 1;
    }
    d
}

/// The paper's random-edge sampling: keep each edge with probability `p`,
/// then keep exactly the endpoint vertices of kept edges.
pub fn sample_edges(full: &Dataset, name: &str, p: f64, rng: &mut StdRng) -> Dataset {
    let kept: Vec<&DsEdge> = full
        .edges
        .iter()
        .filter(|_| rng.gen_bool(p.min(1.0)))
        .collect();
    induced(full, name, kept)
}

/// The Frb-O rule: keep vertices in the six O-topic domains and the edges
/// among them.
pub fn topic_sample(full: &Dataset, name: &str) -> Dataset {
    let is_o: Vec<bool> = full
        .vertices
        .iter()
        .map(|v| {
            matches!(
                v.props.iter().find(|(n, _)| n == "domain"),
                Some((_, Value::Str(s))) if DOMAINS[..O_TOPICS].contains(&s.as_str())
            )
        })
        .collect();
    let kept: Vec<&DsEdge> = full
        .edges
        .iter()
        .filter(|e| is_o[e.src as usize] && is_o[e.dst as usize])
        .collect();
    induced(full, name, kept)
}

fn induced(full: &Dataset, name: &str, kept: Vec<&DsEdge>) -> Dataset {
    let mut d = Dataset::new(name);
    let mut remap: FxHashMap<u64, u64> = FxHashMap::default();
    for e in &kept {
        for endpoint in [e.src, e.dst] {
            remap.entry(endpoint).or_insert_with(|| {
                let old = &full.vertices[endpoint as usize];

                d.add_vertex(old.label.clone(), old.props.clone())
            });
        }
    }
    for e in kept {
        d.add_edge(
            remap[&e.src],
            remap[&e.dst],
            e.label.clone(),
            e.props.clone(),
        );
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::dataset_stats;

    #[test]
    fn family_sizes_are_ordered() {
        let fam = generate_all(Scale::tiny(), 42);
        for d in [&fam.full, &fam.frb_o, &fam.frb_s, &fam.frb_m, &fam.frb_l] {
            d.validate().unwrap();
        }
        assert!(fam.frb_s.edge_count() < fam.frb_m.edge_count());
        assert!(fam.frb_m.edge_count() < fam.frb_l.edge_count());
        assert!(fam.frb_l.edge_count() < fam.full.edge_count());
        // Frb-O sits between M and L (Table 3 ordering by edges).
        assert!(fam.frb_o.edge_count() > fam.frb_s.edge_count());
        // Ratio S:L ≈ 1:100 (wide tolerance at tiny scale).
        let ratio = fam.frb_l.edge_count() as f64 / fam.frb_s.edge_count().max(1) as f64;
        assert!(ratio > 20.0, "S:L ratio ≈ 1:100, got 1:{ratio:.0}");
    }

    #[test]
    fn deterministic() {
        let a = generate_all(Scale::tiny(), 9);
        let b = generate_all(Scale::tiny(), 9);
        assert_eq!(a.full.edges, b.full.edges);
        assert_eq!(a.frb_m.edges, b.frb_m.edges);
    }

    #[test]
    fn frb_o_is_topic_pure_and_modular() {
        let fam = generate_all(Scale::small(), 42);
        assert!(fam.frb_o.edge_count() > 100, "frb-o is non-trivial");
        for v in &fam.frb_o.vertices {
            let dom = v
                .props
                .iter()
                .find(|(n, _)| n == "domain")
                .and_then(|(_, v)| v.as_str())
                .unwrap();
            assert!(DOMAINS[..O_TOPICS].contains(&dom), "non-O domain {dom}");
        }
        let stats = dataset_stats(&fam.frb_o);
        assert!(
            stats.modularity > 0.1,
            "domain-structured sample is modular ({})",
            stats.modularity
        );
    }

    #[test]
    fn samples_are_fragmented() {
        // Random edge sampling of a sparse graph shatters it (Table 3: the
        // Frb samples are "the most fragmented").
        let fam = generate_all(Scale::small(), 42);
        let stats = dataset_stats(&fam.frb_s);
        assert!(
            stats.components as f64 > 0.1 * fam.frb_s.vertex_count() as f64,
            "many components ({} of {})",
            stats.components,
            fam.frb_s.vertex_count()
        );
    }

    #[test]
    fn degrees_are_heavy_tailed() {
        let full = generate_full(Scale::small(), 42);
        let stats = dataset_stats(&full);
        assert!(
            (stats.max_degree as f64) > 20.0 * stats.avg_degree,
            "hubs dominate (max {} vs avg {:.1})",
            stats.max_degree,
            stats.avg_degree
        );
    }

    #[test]
    fn label_alphabet_is_large_and_skewed() {
        let full = generate_full(Scale::small(), 42);
        let labels = full.edge_label_set();
        assert!(labels.len() > 60, "many relation labels ({})", labels.len());
        // Skew: the most frequent label covers far more than 1/|L|.
        let mut counts: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
        for e in &full.edges {
            *counts.entry(e.label.as_str()).or_default() += 1;
        }
        let max = counts.values().max().copied().unwrap_or(0);
        assert!(max as f64 > 5.0 * full.edge_count() as f64 / labels.len() as f64);
    }
}
