//! Scale presets.
//!
//! The paper's datasets range from 2.3K to 76M nodes; a laptop-scale
//! reproduction shrinks every dataset by a common factor while preserving
//! its *shape* (degree skew, label cardinality relative to edges,
//! fragmentation). `Scale::small()` is the default for the reproduction
//! binaries; `Scale::tiny()` keeps unit tests fast; `Scale::medium()` is for
//! longer benchmark runs.

/// A scale preset: a multiplier applied to the paper's dataset sizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Fraction of the paper's size (1.0 = paper scale).
    pub factor: f64,
    /// Human-readable preset name.
    pub name: &'static str,
}

impl Scale {
    /// Unit-test scale: ~1/20000 of the paper.
    pub fn tiny() -> Scale {
        Scale {
            factor: 1.0 / 20000.0,
            name: "tiny",
        }
    }

    /// Default reproduction scale: ~1/2000 of the paper (Frb-L ≈ 15K edges).
    pub fn small() -> Scale {
        Scale {
            factor: 1.0 / 2000.0,
            name: "small",
        }
    }

    /// Extended scale for benchmark runs: ~1/400 of the paper.
    pub fn medium() -> Scale {
        Scale {
            factor: 1.0 / 400.0,
            name: "medium",
        }
    }

    /// Parse a preset name (`tiny` / `small` / `medium`) or a custom
    /// fraction like `1/1000`.
    pub fn parse(text: &str) -> Option<Scale> {
        match text {
            "tiny" => Some(Scale::tiny()),
            "small" => Some(Scale::small()),
            "medium" => Some(Scale::medium()),
            other => {
                let (num, den) = other.split_once('/')?;
                let num: f64 = num.trim().parse().ok()?;
                let den: f64 = den.trim().parse().ok()?;
                if den > 0.0 && num > 0.0 {
                    Some(Scale {
                        factor: num / den,
                        name: "custom",
                    })
                } else {
                    None
                }
            }
        }
    }

    /// Scale a paper-size count with a floor.
    pub fn apply(&self, paper_count: u64, floor: u64) -> u64 {
        ((paper_count as f64 * self.factor) as u64).max(floor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_parse() {
        assert_eq!(Scale::parse("tiny").unwrap().name, "tiny");
        assert_eq!(Scale::parse("small").unwrap().name, "small");
        assert_eq!(Scale::parse("medium").unwrap().name, "medium");
        let c = Scale::parse("1/100").unwrap();
        assert!((c.factor - 0.01).abs() < 1e-12);
        assert!(Scale::parse("nope").is_none());
        assert!(Scale::parse("1/0").is_none());
    }

    #[test]
    fn apply_respects_floor() {
        let s = Scale::tiny();
        assert_eq!(s.apply(100, 50), 50);
        assert!(s.apply(100_000_000, 1) > 1000);
    }

    #[test]
    fn ordering_of_presets() {
        assert!(Scale::tiny().factor < Scale::small().factor);
        assert!(Scale::small().factor < Scale::medium().factor);
    }
}
