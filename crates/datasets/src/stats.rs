//! Dataset statistics — everything Table 3 reports.
//!
//! |V|, |E|, |L|, connected components (count and maximum size), density,
//! network modularity (over label-propagation communities), average and
//! maximum degree, and the diameter (exact on small graphs via double-sweep
//! lower bound, which is what the paper's Δ column needs for *comparing*
//! datasets).

use gm_model::dataset::Adjacency;
use gm_model::Dataset;

/// The Table 3 row for one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// Number of vertices.
    pub vertices: u64,
    /// Number of edges.
    pub edges: u64,
    /// Number of distinct edge labels.
    pub labels: u64,
    /// Number of connected components (undirected).
    pub components: u64,
    /// Size of the largest component.
    pub max_component: u64,
    /// |E| / (|V| · (|V| − 1)).
    pub density: f64,
    /// Newman modularity of label-propagation communities.
    pub modularity: f64,
    /// Average total degree (2|E| / |V|).
    pub avg_degree: f64,
    /// Maximum total degree.
    pub max_degree: u64,
    /// Diameter estimate (double-sweep BFS lower bound on the largest
    /// component).
    pub diameter: u64,
}

/// Compute the full statistics row for a dataset.
pub fn dataset_stats(data: &Dataset) -> DatasetStats {
    let n = data.vertex_count() as u64;
    let m = data.edge_count() as u64;
    let adj = data.undirected_adjacency();
    let (components, max_component, component_of) = components(&adj);
    let degrees = data.degrees();
    let max_degree = degrees.iter().map(|d| d.total() as u64).max().unwrap_or(0);
    let avg_degree = if n > 0 {
        2.0 * m as f64 / n as f64
    } else {
        0.0
    };
    let density = if n > 1 {
        m as f64 / (n as f64 * (n as f64 - 1.0))
    } else {
        0.0
    };
    // Community structure: take the better of the component partition
    // (dominant for the heavily fragmented Freebase samples — Frb-S's
    // Table 3 value of 0.991 is essentially its fragmentation) and
    // label-propagation communities (dominant for topically organized
    // graphs). A full Louvain would only raise both, so this is a sound
    // lower bound for the comparison the table makes.
    let communities = label_propagation(&adj, 8);
    let modularity = modularity(&adj, &communities).max(modularity(&adj, &component_of));
    let diameter = diameter_estimate(&adj, &component_of, max_component);
    DatasetStats {
        name: data.name.clone(),
        vertices: n,
        edges: m,
        labels: data.edge_label_set().len() as u64,
        components,
        max_component,
        density,
        modularity,
        avg_degree,
        max_degree,
        diameter,
    }
}

/// Connected components over the undirected adjacency.
/// Returns (count, max size, component id per vertex).
fn components(adj: &Adjacency) -> (u64, u64, Vec<u32>) {
    let n = adj.len();
    let mut comp = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut max_size = 0u64;
    let mut stack = Vec::new();
    for start in 0..n {
        if comp[start] != u32::MAX {
            continue;
        }
        let id = next;
        next += 1;
        let mut size = 0u64;
        stack.push(start as u32);
        comp[start] = id;
        while let Some(v) = stack.pop() {
            size += 1;
            for &t in adj.neighbors(v as usize) {
                if comp[t as usize] == u32::MAX {
                    comp[t as usize] = id;
                    stack.push(t);
                }
            }
        }
        max_size = max_size.max(size);
    }
    (next as u64, max_size, comp)
}

/// Synchronous label propagation for community detection (bounded rounds).
fn label_propagation(adj: &Adjacency, rounds: usize) -> Vec<u32> {
    let n = adj.len();
    let mut labels: Vec<u32> = (0..n as u32).collect();
    let mut counter: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    for _ in 0..rounds {
        let mut changed = false;
        for v in 0..n {
            let neigh = adj.neighbors(v);
            if neigh.is_empty() {
                continue;
            }
            counter.clear();
            for &t in neigh {
                *counter.entry(labels[t as usize]).or_insert(0) += 1;
            }
            // Deterministic argmax: highest count, lowest label id.
            let best = counter
                .iter()
                .map(|(&l, &c)| (c, std::cmp::Reverse(l)))
                .max()
                .map(|(_, std::cmp::Reverse(l))| l)
                .expect("non-empty");
            if labels[v] != best {
                labels[v] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    labels
}

/// Newman modularity Q of a community assignment.
fn modularity(adj: &Adjacency, communities: &[u32]) -> f64 {
    let two_m: f64 = adj.targets.len() as f64; // = 2|E|
    if two_m == 0.0 {
        return 0.0;
    }
    // Sum over communities of (intra_edges/2m - (deg_sum/2m)^2).
    let mut intra: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
    let mut deg_sum: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
    for v in 0..adj.len() {
        let cv = communities[v];
        *deg_sum.entry(cv).or_insert(0.0) += adj.neighbors(v).len() as f64;
        for &t in adj.neighbors(v) {
            if communities[t as usize] == cv {
                *intra.entry(cv).or_insert(0.0) += 1.0; // counted twice
            }
        }
    }
    let mut q = 0.0;
    for (c, &d) in &deg_sum {
        let e_in = intra.get(c).copied().unwrap_or(0.0) / two_m;
        let a = d / two_m;
        q += e_in - a * a;
    }
    q
}

/// Double-sweep BFS diameter lower bound on the largest component.
fn diameter_estimate(adj: &Adjacency, component_of: &[u32], max_component: u64) -> u64 {
    if adj.is_empty() || max_component <= 1 {
        return 0;
    }
    // Find the largest component's id by counting.
    let mut counts: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
    for &c in component_of {
        *counts.entry(c).or_insert(0) += 1;
    }
    let big = counts
        .iter()
        .max_by_key(|(_, &n)| n)
        .map(|(&c, _)| c)
        .expect("non-empty");
    let start = component_of
        .iter()
        .position(|&c| c == big)
        .expect("component member");
    // Sweep 1: farthest from an arbitrary member; sweep 2 and 3 refine.
    let mut best = 0u64;
    let mut from = start;
    for _ in 0..3 {
        let (far, dist) = bfs_farthest(adj, from);
        if dist > best {
            best = dist;
        }
        from = far;
    }
    best
}

fn bfs_farthest(adj: &Adjacency, start: usize) -> (usize, u64) {
    let mut dist = vec![u32::MAX; adj.len()];
    dist[start] = 0;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(start as u32);
    let mut far = (start, 0u64);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        for &t in adj.neighbors(v as usize) {
            if dist[t as usize] == u32::MAX {
                dist[t as usize] = dv + 1;
                if (dv + 1) as u64 > far.1 {
                    far = (t as usize, (dv + 1) as u64);
                }
                queue.push_back(t);
            }
        }
    }
    far
}

/// Render a collection of stats rows as a Table 3-style text table.
pub fn render_table(rows: &[DatasetStats]) -> String {
    let mut out = String::new();
    out.push_str(
        "| dataset |     |V| |      |E| |  |L| | comps |  maxim |   density | modular |   avg |    max | diam |\n",
    );
    out.push_str(
        "|---------|--------:|---------:|-----:|------:|-------:|----------:|--------:|------:|-------:|-----:|\n",
    );
    for s in rows {
        out.push_str(&format!(
            "| {:<7} | {:>7} | {:>8} | {:>4} | {:>5} | {:>6} | {:>9.2e} | {:>7.3} | {:>5.1} | {:>6} | {:>4} |\n",
            s.name,
            s.vertices,
            s.edges,
            s.labels,
            s.components,
            s.max_component,
            s.density,
            s.modularity,
            s.avg_degree,
            s.max_degree,
            s.diameter
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_model::Dataset;

    fn two_triangles_and_isolate() -> Dataset {
        let mut d = Dataset::new("toy");
        for _ in 0..7 {
            d.add_vertex("n", vec![]);
        }
        // triangle A: 0-1-2
        d.add_edge(0, 1, "a", vec![]);
        d.add_edge(1, 2, "a", vec![]);
        d.add_edge(2, 0, "a", vec![]);
        // triangle B: 3-4-5
        d.add_edge(3, 4, "b", vec![]);
        d.add_edge(4, 5, "b", vec![]);
        d.add_edge(5, 3, "b", vec![]);
        // vertex 6 isolated
        d
    }

    #[test]
    fn basic_counts() {
        let s = dataset_stats(&two_triangles_and_isolate());
        assert_eq!(s.vertices, 7);
        assert_eq!(s.edges, 6);
        assert_eq!(s.labels, 2);
        assert_eq!(s.components, 3);
        assert_eq!(s.max_component, 3);
        assert_eq!(s.max_degree, 2);
        assert!((s.avg_degree - 12.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn modularity_of_disjoint_cliques_is_high() {
        let s = dataset_stats(&two_triangles_and_isolate());
        assert!(
            s.modularity > 0.45,
            "two cliques are perfectly modular ({})",
            s.modularity
        );
    }

    #[test]
    fn diameter_of_path() {
        let mut d = Dataset::new("path");
        for _ in 0..10 {
            d.add_vertex("n", vec![]);
        }
        for i in 0..9 {
            d.add_edge(i, i + 1, "e", vec![]);
        }
        let s = dataset_stats(&d);
        assert_eq!(s.diameter, 9);
        assert_eq!(s.components, 1);
    }

    #[test]
    fn diameter_of_star_is_two() {
        let mut d = Dataset::new("star");
        for _ in 0..6 {
            d.add_vertex("n", vec![]);
        }
        for i in 1..6 {
            d.add_edge(0, i, "e", vec![]);
        }
        assert_eq!(dataset_stats(&d).diameter, 2);
    }

    #[test]
    fn empty_dataset() {
        let s = dataset_stats(&Dataset::new("empty"));
        assert_eq!(s.vertices, 0);
        assert_eq!(s.components, 0);
        assert_eq!(s.diameter, 0);
        assert_eq!(s.density, 0.0);
    }

    #[test]
    fn table_renders_all_rows() {
        let rows = vec![
            dataset_stats(&two_triangles_and_isolate()),
            dataset_stats(&Dataset::new("empty")),
        ];
        let table = render_table(&rows);
        assert!(table.contains("toy"));
        assert!(table.contains("empty"));
        assert_eq!(table.lines().count(), 4);
    }
}
