//! Power-law sampling utilities shared by the generators.
//!
//! Real graph datasets — co-authorship, knowledge bases, social networks —
//! have heavy-tailed degree and label-frequency distributions; Table 3's
//! max-degree column (1.4M for Frb-L!) is the paper's evidence. The
//! generators sample from Zipf-like distributions and grow graphs by
//! preferential attachment to reproduce that skew.

use rand::Rng;

/// Zipf(α) sampler over ranks `0..n` via inverse-CDF binary search.
#[derive(Debug, Clone)]
pub struct Zipf {
    cum: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` ranks with exponent `alpha` (> 0).
    pub fn new(n: usize, alpha: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one rank");
        let mut cum = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(alpha);
            cum.push(acc);
        }
        Zipf { cum }
    }

    /// Sample a rank; rank 0 is the most frequent.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let total = *self.cum.last().expect("non-empty");
        let x: f64 = rng.gen_range(0.0..total);
        self.cum.partition_point(|&c| c < x).min(self.cum.len() - 1)
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cum.len()
    }

    /// True when there are no ranks (never: constructor forbids it).
    pub fn is_empty(&self) -> bool {
        self.cum.is_empty()
    }
}

/// Preferential-attachment endpoint pool: sampling is proportional to the
/// number of times a vertex was added (its degree), with a uniform
/// fallback to keep isolated vertices reachable.
#[derive(Debug, Clone, Default)]
pub struct AttachmentPool {
    endpoints: Vec<u32>,
    n: u32,
}

impl AttachmentPool {
    /// Pool over vertices `0..n`.
    pub fn new(n: u64) -> AttachmentPool {
        AttachmentPool {
            endpoints: Vec::new(),
            n: n as u32,
        }
    }

    /// Record that `v` gained an edge endpoint.
    pub fn touch(&mut self, v: u64) {
        self.endpoints.push(v as u32);
    }

    /// Sample a vertex: degree-proportional with probability `1 - uniform_p`,
    /// uniform otherwise.
    pub fn sample(&self, rng: &mut impl Rng, uniform_p: f64) -> u64 {
        if self.endpoints.is_empty() || rng.gen_bool(uniform_p) {
            rng.gen_range(0..self.n) as u64
        } else {
            self.endpoints[rng.gen_range(0..self.endpoints.len())] as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_is_skewed() {
        let z = Zipf::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0u32; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[50]);
        // Every rank reachable in principle; at least the head is dense.
        assert!(counts[0] as f64 / 20_000.0 > 0.1);
    }

    #[test]
    fn zipf_bounds() {
        let z = Zipf::new(3, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
        assert_eq!(z.len(), 3);
        assert!(!z.is_empty());
    }

    #[test]
    fn attachment_prefers_hubs() {
        let mut pool = AttachmentPool::new(100);
        for _ in 0..50 {
            pool.touch(7);
        }
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..1000)
            .filter(|_| pool.sample(&mut rng, 0.1) == 7)
            .count();
        assert!(hits > 500, "hub must dominate ({hits}/1000)");
    }

    #[test]
    fn attachment_uniform_fallback() {
        let pool = AttachmentPool::new(10);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert!(pool.sample(&mut rng, 0.5) < 10);
        }
    }
}
