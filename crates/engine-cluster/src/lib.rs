//! # engine-cluster — the OrientDB-class native engine
//!
//! Reproduces the physical architecture the paper describes for OrientDB
//! (§3.2):
//!
//! * records live in per-type **clusters**; a logical record id ("rid",
//!   cluster + position) points into an **append-only store with a
//!   logical→physical position table**, so objects can move without
//!   changing identity ([`gm_storage::PageStore`]);
//! * each vertex record **embeds its adjacency** (the RIDBAG): the lists of
//!   incident edge rids, so neighbor access is a record read plus one edge
//!   record hop per neighbor (Table 1's "2-hop pointer");
//! * one cluster per **edge label** — creating a label allocates cluster
//!   metadata, which is why the paper finds OrientDB's load time and space
//!   "highly sensitive to the edge label cardinality" (§6.2) on Frb-S with
//!   its ~1.8K labels;
//! * string attribute values are **de-duplicated through a dictionary**,
//!   reproducing OrientDB's best-in-class space on the text-heavy LDBC
//!   dataset (Figure 1);
//! * attribute indexes are SB-Tree-like ordered indexes
//!   ([`gm_storage::BPlusTree`]).

use gm_model::api::{
    Direction, EdgeData, EdgeRef, EngineFeatures, GraphDb, GraphSnapshot, LoadOptions, LoadStats,
    SpaceReport, VertexData,
};
use gm_model::fxmap::FxHashMap;
use gm_model::interner::Interner;
use gm_model::value::{Props, Value};
use gm_model::{Dataset, Eid, GdbError, GdbResult, QueryCtx, Vid};
use gm_storage::bptree::BPlusTree;
use gm_storage::codec::{read_varint, unzigzag, write_varint, zigzag};
use gm_storage::pagestore::PageStore;

/// Bits reserved for the in-cluster position of a rid.
const POS_BITS: u64 = 40;
const POS_MASK: u64 = (1 << POS_BITS) - 1;

/// Fixed metadata footprint charged per cluster (OrientDB materializes
/// several files per cluster: .pcl, .cpm, …). This drives the Frb-S space
/// behaviour the paper reports.
const CLUSTER_METADATA_BYTES: u64 = 4096;

fn rid(cluster: u32, pos: u64) -> u64 {
    ((cluster as u64) << POS_BITS) | pos
}

fn rid_cluster(r: u64) -> u32 {
    (r >> POS_BITS) as u32
}

fn rid_pos(r: u64) -> u64 {
    r & POS_MASK
}

/// The OrientDB-class engine. See crate docs for the layout.
#[derive(Clone)]
pub struct ClusterGraph {
    vertex_clusters: Vec<PageStore>,
    edge_clusters: Vec<PageStore>,
    vlabels: Interner,
    elabels: Interner,
    keys: Interner,
    /// String-value dictionary (de-duplication).
    strings: Interner,
    vmap: Vec<u64>,
    emap: Vec<u64>,
    /// SB-tree-like attribute indexes: key id -> value -> rids.
    indexes: FxHashMap<u32, BPlusTree<Value, Vec<u64>>>,
}

impl Default for ClusterGraph {
    fn default() -> Self {
        Self::new()
    }
}

impl ClusterGraph {
    /// A fresh, empty engine.
    pub fn new() -> Self {
        ClusterGraph {
            vertex_clusters: Vec::new(),
            edge_clusters: Vec::new(),
            vlabels: Interner::new(),
            elabels: Interner::new(),
            keys: Interner::new(),
            strings: Interner::new(),
            vmap: Vec::new(),
            emap: Vec::new(),
            indexes: FxHashMap::default(),
        }
    }

    fn vertex_cluster_for(&mut self, label: &str) -> u32 {
        let id = self.vlabels.intern(label);
        while self.vertex_clusters.len() <= id as usize {
            self.vertex_clusters.push(PageStore::new());
        }
        id
    }

    fn edge_cluster_for(&mut self, label: &str) -> u32 {
        let id = self.elabels.intern(label);
        while self.edge_clusters.len() <= id as usize {
            self.edge_clusters.push(PageStore::new());
        }
        id
    }

    // ---- record encoding -------------------------------------------------
    //
    // Vertex record: [n_out varint][eids...][n_in varint][eids...][props]
    // Edge record:   [src varint][dst varint][props]
    // Props:         [n varint] n × ([key varint][tag u8][payload])
    //   tag 1 bool, 2 int zigzag-varint, 3 float 8B, 5 dict-string varint.

    fn encode_props(&mut self, out: &mut Vec<u8>, props: &Props) -> Vec<(u32, Value)> {
        write_varint(out, props.len() as u64);
        let mut interned = Vec::with_capacity(props.len());
        for (name, value) in props {
            let key = self.keys.intern(name);
            interned.push((key, value.clone()));
            write_varint(out, key as u64);
            match value {
                Value::Null => out.push(0),
                Value::Bool(b) => {
                    out.push(1);
                    out.push(*b as u8);
                }
                Value::Int(i) => {
                    out.push(2);
                    write_varint(out, zigzag(*i));
                }
                Value::Float(f) => {
                    out.push(3);
                    out.extend_from_slice(&f.to_le_bytes());
                }
                Value::Str(s) => {
                    out.push(5);
                    let sid = self.strings.intern(s);
                    write_varint(out, sid as u64);
                }
            }
        }
        interned
    }

    fn decode_props(&self, buf: &[u8], pos: &mut usize) -> Vec<(u32, Value)> {
        let n = read_varint(buf, pos).expect("prop count") as usize;
        let mut props = Vec::with_capacity(n);
        for _ in 0..n {
            let key = read_varint(buf, pos).expect("prop key") as u32;
            let tag = buf[*pos];
            *pos += 1;
            let value = match tag {
                0 => Value::Null,
                1 => {
                    let b = buf[*pos] != 0;
                    *pos += 1;
                    Value::Bool(b)
                }
                2 => Value::Int(unzigzag(read_varint(buf, pos).expect("int"))),
                3 => {
                    let f = f64::from_le_bytes(buf[*pos..*pos + 8].try_into().expect("f64"));
                    *pos += 8;
                    Value::Float(f)
                }
                5 => {
                    let sid = read_varint(buf, pos).expect("dict id") as u32;
                    Value::Str(
                        self.strings
                            .resolve(sid)
                            .expect("dictionary entry")
                            .to_string(),
                    )
                }
                t => unreachable!("bad prop tag {t}"),
            };
            props.push((key, value));
        }
        props
    }

    fn encode_vertex(&mut self, out_edges: &[u64], in_edges: &[u64], props: &Props) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16 + 9 * (out_edges.len() + in_edges.len()));
        write_varint(&mut buf, out_edges.len() as u64);
        for &e in out_edges {
            write_varint(&mut buf, e);
        }
        write_varint(&mut buf, in_edges.len() as u64);
        for &e in in_edges {
            write_varint(&mut buf, e);
        }
        self.encode_props(&mut buf, props);
        buf
    }

    fn encode_edge(&mut self, src: u64, dst: u64, props: &Props) -> Vec<u8> {
        let mut buf = Vec::with_capacity(20);
        write_varint(&mut buf, src);
        write_varint(&mut buf, dst);
        self.encode_props(&mut buf, props);
        buf
    }

    fn vertex_record(&self, v: u64) -> GdbResult<&[u8]> {
        let cluster = rid_cluster(v) as usize;
        self.vertex_clusters
            .get(cluster)
            .and_then(|c| c.get(rid_pos(v)))
            .ok_or(GdbError::VertexNotFound(v))
    }

    fn edge_record(&self, e: u64) -> GdbResult<&[u8]> {
        let cluster = rid_cluster(e) as usize;
        self.edge_clusters
            .get(cluster)
            .and_then(|c| c.get(rid_pos(e)))
            .ok_or(GdbError::EdgeNotFound(e))
    }

    /// Decode only the adjacency lists of a vertex record.
    fn decode_adjacency(buf: &[u8]) -> (Vec<u64>, Vec<u64>, usize) {
        let mut pos = 0usize;
        let n_out = read_varint(buf, &mut pos).expect("n_out") as usize;
        let mut out = Vec::with_capacity(n_out);
        for _ in 0..n_out {
            out.push(read_varint(buf, &mut pos).expect("out eid"));
        }
        let n_in = read_varint(buf, &mut pos).expect("n_in") as usize;
        let mut inn = Vec::with_capacity(n_in);
        for _ in 0..n_in {
            inn.push(read_varint(buf, &mut pos).expect("in eid"));
        }
        (out, inn, pos)
    }

    /// Decode just the (out_degree, in_degree) header cheaply.
    fn decode_degrees(buf: &[u8]) -> (u64, u64) {
        let mut pos = 0usize;
        let n_out = read_varint(buf, &mut pos).expect("n_out");
        for _ in 0..n_out {
            read_varint(buf, &mut pos).expect("skip");
        }
        let n_in = read_varint(buf, &mut pos).expect("n_in");
        (n_out, n_in)
    }

    fn vertex_props(&self, v: u64) -> GdbResult<Vec<(u32, Value)>> {
        let rec = self.vertex_record(v)?;
        let (_, _, mut pos) = Self::decode_adjacency(rec);
        Ok(self.decode_props(rec, &mut pos))
    }

    #[allow(clippy::type_complexity)]
    fn edge_parts(&self, e: u64) -> GdbResult<(u64, u64, Vec<(u32, Value)>)> {
        let rec = self.edge_record(e)?;
        let mut pos = 0usize;
        let src = read_varint(rec, &mut pos).ok_or_else(|| corrupt("edge src"))?;
        let dst = read_varint(rec, &mut pos).ok_or_else(|| corrupt("edge dst"))?;
        let props = self.decode_props(rec, &mut pos);
        Ok((src, dst, props))
    }

    /// Read-modify-write a vertex record through a closure.
    #[allow(clippy::type_complexity)]
    fn rewrite_vertex(
        &mut self,
        v: u64,
        f: impl FnOnce(&mut Vec<u64>, &mut Vec<u64>, &mut Vec<(u32, Value)>),
    ) -> GdbResult<()> {
        let rec = self.vertex_record(v)?;
        let (mut out, mut inn, mut pos) = Self::decode_adjacency(rec);
        let mut props = self.decode_props(rec, &mut pos);
        f(&mut out, &mut inn, &mut props);
        // Re-encode with names resolved back (dictionary stays stable).
        let named: Props = props
            .iter()
            .map(|(k, val)| {
                (
                    self.keys.resolve(*k).expect("known key").to_string(),
                    val.clone(),
                )
            })
            .collect();
        let buf = self.encode_vertex(&out, &inn, &named);
        let cluster = rid_cluster(v) as usize;
        if !self.vertex_clusters[cluster].put(rid_pos(v), &buf) {
            return Err(GdbError::VertexNotFound(v));
        }
        Ok(())
    }

    fn index_insert(&mut self, key: u32, value: &Value, v: u64) {
        if let Some(idx) = self.indexes.get_mut(&key) {
            match idx.get(value) {
                Some(list) => {
                    let mut list = list.clone();
                    list.push(v);
                    idx.insert(value.clone(), list);
                }
                None => {
                    idx.insert(value.clone(), vec![v]);
                }
            }
        }
    }

    fn index_remove(&mut self, key: u32, value: &Value, v: u64) {
        if let Some(idx) = self.indexes.get_mut(&key) {
            if let Some(list) = idx.get(value) {
                let mut list = list.clone();
                if let Some(p) = list.iter().position(|&x| x == v) {
                    list.swap_remove(p);
                }
                if list.is_empty() {
                    idx.remove(value);
                } else {
                    idx.insert(value.clone(), list);
                }
            }
        }
    }
}

fn corrupt(what: &str) -> GdbError {
    GdbError::Corrupt(what.to_string())
}

impl GraphSnapshot for ClusterGraph {
    fn name(&self) -> String {
        "cluster".into()
    }

    fn features(&self) -> EngineFeatures {
        EngineFeatures {
            name: self.name(),
            system_type: "Native".into(),
            storage: "Linked records in per-label clusters (append-only, indirection table)".into(),
            edge_traversal: "2-hop pointer".into(),
            optimized_adapter: false,
            async_writes: false,
            attribute_indexes: true,
        }
    }

    fn resolve_vertex(&self, canonical: u64) -> Option<Vid> {
        self.vmap.get(canonical as usize).map(|&v| Vid(v))
    }

    fn resolve_edge(&self, canonical: u64) -> Option<Eid> {
        self.emap.get(canonical as usize).map(|&e| Eid(e))
    }

    fn vertex_count(&self, ctx: &QueryCtx) -> GdbResult<u64> {
        let mut n = 0u64;
        for c in &self.vertex_clusters {
            for _ in c.iter_ids() {
                ctx.tick()?;
                n += 1;
            }
        }
        Ok(n)
    }

    fn edge_count(&self, ctx: &QueryCtx) -> GdbResult<u64> {
        let mut n = 0u64;
        for c in &self.edge_clusters {
            for _ in c.iter_ids() {
                ctx.tick()?;
                n += 1;
            }
        }
        Ok(n)
    }

    fn edge_label_set(&self, ctx: &QueryCtx) -> GdbResult<Vec<String>> {
        // Labels are clusters: still iterate edges (Gremlin semantics) but
        // the label is implied by the cluster — no record decode needed.
        let mut out = Vec::new();
        for (cluster, store) in self.edge_clusters.iter().enumerate() {
            let mut any = false;
            for _ in store.iter_ids() {
                ctx.tick()?;
                any = true;
            }
            if any {
                out.push(
                    self.elabels
                        .resolve(cluster as u32)
                        .expect("cluster label")
                        .to_string(),
                );
            }
        }
        Ok(out)
    }

    fn vertices_with_property(
        &self,
        name: &str,
        value: &Value,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Vid>> {
        let Some(key) = self.keys.get(name) else {
            return Ok(Vec::new());
        };
        if let Some(idx) = self.indexes.get(&key) {
            let mut hits: Vec<Vid> = idx
                .get(value)
                .map(|l| l.iter().map(|&x| Vid(x)).collect())
                .unwrap_or_default();
            hits.sort_unstable();
            return Ok(hits);
        }
        let mut out = Vec::new();
        for (cluster, store) in self.vertex_clusters.iter().enumerate() {
            for pos in store.iter_ids() {
                ctx.tick()?;
                let v = rid(cluster as u32, pos);
                let props = self.vertex_props(v)?;
                if props.iter().any(|(k, val)| *k == key && val == value) {
                    out.push(Vid(v));
                }
            }
        }
        Ok(out)
    }

    fn edges_with_property(
        &self,
        name: &str,
        value: &Value,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Eid>> {
        let Some(key) = self.keys.get(name) else {
            return Ok(Vec::new());
        };
        let mut out = Vec::new();
        for (cluster, store) in self.edge_clusters.iter().enumerate() {
            for pos in store.iter_ids() {
                ctx.tick()?;
                let e = rid(cluster as u32, pos);
                let (_, _, props) = self.edge_parts(e)?;
                if props.iter().any(|(k, val)| *k == key && val == value) {
                    out.push(Eid(e));
                }
            }
        }
        Ok(out)
    }

    fn edges_with_label(&self, label: &str, ctx: &QueryCtx) -> GdbResult<Vec<Eid>> {
        // A dedicated cluster holds exactly these edges.
        let Some(cluster) = self.elabels.get(label) else {
            return Ok(Vec::new());
        };
        let store = &self.edge_clusters[cluster as usize];
        let mut out = Vec::with_capacity(store.len() as usize);
        for pos in store.iter_ids() {
            ctx.tick()?;
            out.push(Eid(rid(cluster, pos)));
        }
        Ok(out)
    }

    fn vertex(&self, v: Vid) -> GdbResult<Option<VertexData>> {
        match self.vertex_record(v.0) {
            Err(_) => Ok(None),
            Ok(rec) => {
                let (_, _, mut pos) = Self::decode_adjacency(rec);
                let props = self.decode_props(rec, &mut pos);
                Ok(Some(VertexData {
                    id: v,
                    label: self
                        .vlabels
                        .resolve(rid_cluster(v.0))
                        .unwrap_or("<unknown>")
                        .to_string(),
                    props: props
                        .into_iter()
                        .map(|(k, val)| (self.keys.resolve(k).expect("known key").to_string(), val))
                        .collect(),
                }))
            }
        }
    }

    fn edge(&self, e: Eid) -> GdbResult<Option<EdgeData>> {
        match self.edge_parts(e.0) {
            Err(_) => Ok(None),
            Ok((src, dst, props)) => Ok(Some(EdgeData {
                id: e,
                src: Vid(src),
                dst: Vid(dst),
                label: self
                    .elabels
                    .resolve(rid_cluster(e.0))
                    .unwrap_or("<unknown>")
                    .to_string(),
                props: props
                    .into_iter()
                    .map(|(k, val)| (self.keys.resolve(k).expect("known key").to_string(), val))
                    .collect(),
            })),
        }
    }

    fn neighbors(
        &self,
        v: Vid,
        dir: Direction,
        label: Option<&str>,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Vid>> {
        Ok(self
            .vertex_edges(v, dir, label, ctx)?
            .into_iter()
            .map(|r| r.other)
            .collect())
    }

    fn vertex_edges(
        &self,
        v: Vid,
        dir: Direction,
        label: Option<&str>,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<EdgeRef>> {
        let rec = self.vertex_record(v.0)?;
        let (out, inn, _) = Self::decode_adjacency(rec);
        let want_cluster = match label {
            Some(l) => match self.elabels.get(l) {
                Some(c) => Some(c),
                None => return Ok(Vec::new()),
            },
            None => None,
        };
        let mut refs = Vec::new();
        let mut visit = |eids: &[u64], outgoing: bool| -> GdbResult<()> {
            for &e in eids {
                ctx.tick()?;
                // Label filter resolves from the rid alone — no record read.
                if let Some(c) = want_cluster {
                    if rid_cluster(e) != c {
                        continue;
                    }
                }
                let (src, dst, _) = self.edge_parts(e)?;
                let other = if outgoing { dst } else { src };
                refs.push(EdgeRef {
                    eid: Eid(e),
                    other: Vid(other),
                });
            }
            Ok(())
        };
        if matches!(dir, Direction::Out | Direction::Both) {
            visit(&out, true)?;
        }
        if matches!(dir, Direction::In | Direction::Both) {
            visit(&inn, false)?;
        }
        Ok(refs)
    }

    fn vertex_degree(&self, v: Vid, dir: Direction, ctx: &QueryCtx) -> GdbResult<u64> {
        ctx.tick()?;
        let rec = self.vertex_record(v.0)?;
        let (n_out, n_in) = Self::decode_degrees(rec);
        Ok(match dir {
            Direction::Out => n_out,
            Direction::In => n_in,
            Direction::Both => n_out + n_in,
        })
    }

    fn vertex_edge_labels(&self, v: Vid, dir: Direction, ctx: &QueryCtx) -> GdbResult<Vec<String>> {
        let rec = self.vertex_record(v.0)?;
        let (out, inn, _) = Self::decode_adjacency(rec);
        let mut clusters: Vec<u32> = Vec::new();
        let mut visit = |eids: &[u64]| -> GdbResult<()> {
            for &e in eids {
                ctx.tick()?;
                let c = rid_cluster(e);
                if !clusters.contains(&c) {
                    clusters.push(c);
                }
            }
            Ok(())
        };
        if matches!(dir, Direction::Out | Direction::Both) {
            visit(&out)?;
        }
        if matches!(dir, Direction::In | Direction::Both) {
            visit(&inn)?;
        }
        Ok(clusters
            .into_iter()
            .filter_map(|c| self.elabels.resolve(c).map(String::from))
            .collect())
    }

    fn scan_vertices<'a>(
        &'a self,
        ctx: &'a QueryCtx,
    ) -> GdbResult<Box<dyn Iterator<Item = GdbResult<Vid>> + 'a>> {
        Ok(Box::new(self.vertex_clusters.iter().enumerate().flat_map(
            move |(cluster, store)| {
                store.iter_ids().map(move |pos| {
                    ctx.tick()?;
                    Ok(Vid(rid(cluster as u32, pos)))
                })
            },
        )))
    }

    fn scan_edges<'a>(
        &'a self,
        ctx: &'a QueryCtx,
    ) -> GdbResult<Box<dyn Iterator<Item = GdbResult<Eid>> + 'a>> {
        Ok(Box::new(self.edge_clusters.iter().enumerate().flat_map(
            move |(cluster, store)| {
                store.iter_ids().map(move |pos| {
                    ctx.tick()?;
                    Ok(Eid(rid(cluster as u32, pos)))
                })
            },
        )))
    }

    fn vertex_property(&self, v: Vid, name: &str) -> GdbResult<Option<Value>> {
        let Some(key) = self.keys.get(name) else {
            self.vertex_record(v.0)?;
            return Ok(None);
        };
        Ok(self
            .vertex_props(v.0)?
            .into_iter()
            .find(|(k, _)| *k == key)
            .map(|(_, val)| val))
    }

    fn edge_property(&self, e: Eid, name: &str) -> GdbResult<Option<Value>> {
        let Some(key) = self.keys.get(name) else {
            self.edge_record(e.0)?;
            return Ok(None);
        };
        let (_, _, props) = self.edge_parts(e.0)?;
        Ok(props
            .into_iter()
            .find(|(k, _)| *k == key)
            .map(|(_, val)| val))
    }

    fn edge_endpoints(&self, e: Eid) -> GdbResult<Option<(Vid, Vid)>> {
        match self.edge_parts(e.0) {
            Err(_) => Ok(None),
            Ok((src, dst, _)) => Ok(Some((Vid(src), Vid(dst)))),
        }
    }

    fn edge_label(&self, e: Eid) -> GdbResult<Option<String>> {
        if self.edge_record(e.0).is_err() {
            return Ok(None);
        }
        Ok(self.elabels.resolve(rid_cluster(e.0)).map(String::from))
    }

    fn vertex_label(&self, v: Vid) -> GdbResult<Option<String>> {
        if self.vertex_record(v.0).is_err() {
            return Ok(None);
        }
        Ok(self.vlabels.resolve(rid_cluster(v.0)).map(String::from))
    }

    fn has_vertex_index(&self, prop: &str) -> bool {
        self.keys
            .get(prop)
            .map(|k| self.indexes.contains_key(&k))
            .unwrap_or(false)
    }

    fn space(&self) -> SpaceReport {
        let mut r = SpaceReport::default();
        r.add(
            "vertex clusters",
            self.vertex_clusters.iter().map(|c| c.bytes()).sum::<u64>(),
        );
        r.add(
            "edge clusters",
            self.edge_clusters.iter().map(|c| c.bytes()).sum::<u64>(),
        );
        r.add(
            "cluster metadata",
            (self.vertex_clusters.len() + self.edge_clusters.len()) as u64 * CLUSTER_METADATA_BYTES,
        );
        r.add("value dictionary", self.strings.bytes());
        r.add(
            "schema/label store",
            self.vlabels.bytes() + self.elabels.bytes() + self.keys.bytes(),
        );
        let idx: u64 = self
            .indexes
            .values()
            .map(|t| t.approx_bytes(|k| k.approx_bytes(), |v| 8 * v.len() as u64 + 24))
            .sum();
        if idx > 0 {
            r.add("sb-tree indexes", idx);
        }
        r
    }
}

impl GraphDb for ClusterGraph {
    fn bulk_load(&mut self, data: &Dataset, _opts: &LoadOptions) -> GdbResult<LoadStats> {
        if !self.vmap.is_empty() {
            return Err(GdbError::Invalid(
                "bulk_load requires an empty engine".into(),
            ));
        }
        // Pass 1: edges first, collecting adjacency per canonical vertex, so
        // each vertex record is written exactly once (no rewrite storm).
        let mut out_adj: Vec<Vec<u64>> = vec![Vec::new(); data.vertices.len()];
        let mut in_adj: Vec<Vec<u64>> = vec![Vec::new(); data.vertices.len()];
        // Vertices need rids before edges can reference them: allocate
        // positions deterministically (insertion order per label cluster).
        self.vmap.reserve(data.vertices.len());
        let mut pending_vertex_pos: Vec<(u32, u64)> = Vec::with_capacity(data.vertices.len());
        let mut next_pos_per_cluster: FxHashMap<u32, u64> = FxHashMap::default();
        for v in &data.vertices {
            let cluster = self.vertex_cluster_for(&v.label);
            let pos = next_pos_per_cluster.entry(cluster).or_insert(0);
            pending_vertex_pos.push((cluster, *pos));
            self.vmap.push(rid(cluster, *pos));
            *pos += 1;
        }
        self.emap.reserve(data.edges.len());
        for e in &data.edges {
            let cluster = self.edge_cluster_for(&e.label);
            let src = self.vmap[e.src as usize];
            let dst = self.vmap[e.dst as usize];
            let buf = self.encode_edge(src, dst, &e.props);
            let pos = self.edge_clusters[cluster as usize].alloc(&buf);
            let eid = rid(cluster, pos);
            self.emap.push(eid);
            out_adj[e.src as usize].push(eid);
            in_adj[e.dst as usize].push(eid);
        }
        // Pass 2: write vertex records with their full RIDBAGs.
        for (i, v) in data.vertices.iter().enumerate() {
            let (cluster, expected_pos) = pending_vertex_pos[i];
            let buf = self.encode_vertex(&out_adj[i], &in_adj[i], &v.props);
            let pos = self.vertex_clusters[cluster as usize].alloc(&buf);
            debug_assert_eq!(pos, expected_pos, "cluster position drift");
        }
        Ok(LoadStats {
            vertices: data.vertices.len() as u64,
            edges: data.edges.len() as u64,
        })
    }

    fn add_vertex(&mut self, label: &str, props: &Props) -> GdbResult<Vid> {
        let cluster = self.vertex_cluster_for(label);
        let buf = self.encode_vertex(&[], &[], props);
        let pos = self.vertex_clusters[cluster as usize].alloc(&buf);
        let v = rid(cluster, pos);
        for (name, value) in props {
            let key = self.keys.intern(name);
            self.index_insert(key, value, v);
        }
        Ok(Vid(v))
    }

    fn add_edge(&mut self, src: Vid, dst: Vid, label: &str, props: &Props) -> GdbResult<Eid> {
        self.vertex_record(src.0)?;
        self.vertex_record(dst.0)?;
        let cluster = self.edge_cluster_for(label);
        let buf = self.encode_edge(src.0, dst.0, props);
        let pos = self.edge_clusters[cluster as usize].alloc(&buf);
        let e = rid(cluster, pos);
        // RIDBAG updates: rewrite both endpoint records (append-only).
        self.rewrite_vertex(src.0, |out, _, _| out.push(e))?;
        if dst != src {
            self.rewrite_vertex(dst.0, |_, inn, _| inn.push(e))?;
        } else {
            self.rewrite_vertex(dst.0, |_, inn, _| inn.push(e))?;
        }
        Ok(Eid(e))
    }

    fn set_vertex_property(&mut self, v: Vid, name: &str, value: Value) -> GdbResult<()> {
        let key = self.keys.intern(name);
        let mut old: Option<Value> = None;
        let val = value.clone();
        self.rewrite_vertex(v.0, |_, _, props| {
            if let Some(slot) = props.iter_mut().find(|(k, _)| *k == key) {
                old = Some(std::mem::replace(&mut slot.1, val));
            } else {
                props.push((key, val));
            }
        })?;
        if let Some(old) = old {
            self.index_remove(key, &old, v.0);
        }
        self.index_insert(key, &value, v.0);
        Ok(())
    }

    fn set_edge_property(&mut self, e: Eid, name: &str, value: Value) -> GdbResult<()> {
        let (src, dst, mut props) = self.edge_parts(e.0)?;
        let key = self.keys.intern(name);
        if let Some(slot) = props.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            props.push((key, value));
        }
        let named: Props = props
            .iter()
            .map(|(k, val)| {
                (
                    self.keys.resolve(*k).expect("known key").to_string(),
                    val.clone(),
                )
            })
            .collect();
        let buf = self.encode_edge(src, dst, &named);
        let cluster = rid_cluster(e.0) as usize;
        if !self.edge_clusters[cluster].put(rid_pos(e.0), &buf) {
            return Err(GdbError::EdgeNotFound(e.0));
        }
        Ok(())
    }

    fn remove_vertex(&mut self, v: Vid) -> GdbResult<()> {
        let rec = self.vertex_record(v.0)?;
        let (out, inn, mut pos) = Self::decode_adjacency(rec);
        let props = self.decode_props(rec, &mut pos);
        let mut incident: Vec<u64> = out;
        incident.extend(inn);
        incident.sort_unstable();
        incident.dedup();
        for e in incident {
            self.remove_edge(Eid(e))?;
        }
        for (key, value) in &props {
            self.index_remove(*key, value, v.0);
        }
        let cluster = rid_cluster(v.0) as usize;
        self.vertex_clusters[cluster].free(rid_pos(v.0));
        Ok(())
    }

    fn remove_edge(&mut self, e: Eid) -> GdbResult<()> {
        let (src, dst, _) = self.edge_parts(e.0)?;
        let eid = e.0;
        self.rewrite_vertex(src, |out, _, _| out.retain(|&x| x != eid))?;
        self.rewrite_vertex(dst, |_, inn, _| inn.retain(|&x| x != eid))?;
        let cluster = rid_cluster(eid) as usize;
        self.edge_clusters[cluster].free(rid_pos(eid));
        Ok(())
    }

    fn remove_vertex_property(&mut self, v: Vid, name: &str) -> GdbResult<Option<Value>> {
        let Some(key) = self.keys.get(name) else {
            self.vertex_record(v.0)?;
            return Ok(None);
        };
        let mut old = None;
        self.rewrite_vertex(v.0, |_, _, props| {
            if let Some(p) = props.iter().position(|(k, _)| *k == key) {
                old = Some(props.remove(p).1);
            }
        })?;
        if let Some(old) = &old {
            self.index_remove(key, old, v.0);
        }
        Ok(old)
    }

    fn remove_edge_property(&mut self, e: Eid, name: &str) -> GdbResult<Option<Value>> {
        let (src, dst, mut props) = self.edge_parts(e.0)?;
        let Some(key) = self.keys.get(name) else {
            return Ok(None);
        };
        let mut old = None;
        if let Some(p) = props.iter().position(|(k, _)| *k == key) {
            old = Some(props.remove(p).1);
            let named: Props = props
                .iter()
                .map(|(k, val)| {
                    (
                        self.keys.resolve(*k).expect("known key").to_string(),
                        val.clone(),
                    )
                })
                .collect();
            let buf = self.encode_edge(src, dst, &named);
            let cluster = rid_cluster(e.0) as usize;
            self.edge_clusters[cluster].put(rid_pos(e.0), &buf);
        }
        Ok(old)
    }

    fn create_vertex_index(&mut self, prop: &str) -> GdbResult<()> {
        let key = self.keys.intern(prop);
        if self.indexes.contains_key(&key) {
            return Ok(());
        }
        let mut idx: BPlusTree<Value, Vec<u64>> = BPlusTree::new();
        for (cluster, store) in self.vertex_clusters.iter().enumerate() {
            for pos in store.iter_ids() {
                let v = rid(cluster as u32, pos);
                let props = self.vertex_props(v)?;
                if let Some((_, value)) = props.into_iter().find(|(k, _)| *k == key) {
                    match idx.get(&value) {
                        Some(list) => {
                            let mut list = list.clone();
                            list.push(v);
                            idx.insert(value, list);
                        }
                        None => {
                            idx.insert(value, vec![v]);
                        }
                    }
                }
            }
        }
        self.indexes.insert(key, idx);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_model::testkit;

    #[test]
    fn conformance() {
        testkit::conformance_suite(&mut || Box::new(ClusterGraph::new()));
    }

    #[test]
    fn rids_encode_cluster_and_position() {
        let mut g = ClusterGraph::new();
        let a = g.add_vertex("person", &vec![]).unwrap();
        let b = g.add_vertex("city", &vec![]).unwrap();
        let c = g.add_vertex("person", &vec![]).unwrap();
        assert_eq!(
            rid_cluster(a.0),
            rid_cluster(c.0),
            "same label, same cluster"
        );
        assert_ne!(rid_cluster(a.0), rid_cluster(b.0));
        assert_eq!(rid_pos(a.0), 0);
        assert_eq!(rid_pos(c.0), 1);
    }

    #[test]
    fn per_label_edge_clusters_drive_space() {
        // Many distinct edge labels cost cluster metadata (the Frb-S effect).
        let mut few = ClusterGraph::new();
        let mut many = ClusterGraph::new();
        for g in [&mut few, &mut many] {
            for _ in 0..20 {
                g.add_vertex("n", &vec![]).unwrap();
            }
        }
        for i in 0..19u64 {
            few.add_edge(
                Vid(few.vmap_id(i)),
                Vid(few.vmap_id(i + 1)),
                "same",
                &vec![],
            )
            .unwrap();
            many.add_edge(
                Vid(many.vmap_id(i)),
                Vid(many.vmap_id(i + 1)),
                &format!("label{i}"),
                &vec![],
            )
            .unwrap();
        }
        assert!(many.space().total() > few.space().total());
    }

    #[test]
    fn string_dictionary_dedups() {
        let mut g = ClusterGraph::new();
        let shared = "a-fairly-long-shared-attribute-value".to_string();
        for _ in 0..100 {
            g.add_vertex("n", &vec![("tag".into(), Value::Str(shared.clone()))])
                .unwrap();
        }
        assert_eq!(g.strings.len(), 1, "one dictionary entry for 100 uses");
    }

    #[test]
    fn add_edge_rewrites_grow_garbage() {
        let mut g = ClusterGraph::new();
        let hub = g.add_vertex("n", &vec![]).unwrap();
        let mut garbage_before = 0;
        for i in 0..20 {
            let v = g.add_vertex("n", &vec![]).unwrap();
            g.add_edge(hub, v, "e", &vec![]).unwrap();
            let garbage: u64 = g.vertex_clusters.iter().map(|c| c.garbage_bytes()).sum();
            if i > 0 {
                assert!(garbage > garbage_before, "each edge appends a new version");
            }
            garbage_before = garbage;
        }
    }

    #[test]
    fn degree_reads_header_only() {
        let mut g = ClusterGraph::new();
        let hub = g.add_vertex("n", &vec![]).unwrap();
        for _ in 0..100 {
            let v = g.add_vertex("n", &vec![]).unwrap();
            g.add_edge(hub, v, "e", &vec![]).unwrap();
        }
        let ctx = QueryCtx::unbounded();
        assert_eq!(g.vertex_degree(hub, Direction::Out, &ctx).unwrap(), 100);
        assert_eq!(g.vertex_degree(hub, Direction::In, &ctx).unwrap(), 0);
        // Header decode: one tick, not one per edge.
        assert!(
            ctx.work() < 10,
            "degree must not walk edges ({})",
            ctx.work()
        );
    }

    #[test]
    fn edges_with_label_reads_single_cluster() {
        let mut g = ClusterGraph::new();
        let a = g.add_vertex("n", &vec![]).unwrap();
        let b = g.add_vertex("n", &vec![]).unwrap();
        for _ in 0..10 {
            g.add_edge(a, b, "x", &vec![]).unwrap();
            g.add_edge(a, b, "y", &vec![]).unwrap();
        }
        let ctx = QueryCtx::unbounded();
        let hits = g.edges_with_label("x", &ctx).unwrap();
        assert_eq!(hits.len(), 10);
        assert!(ctx.work() <= 12, "only the x cluster is scanned");
    }

    impl ClusterGraph {
        fn vmap_id(&self, canonical: u64) -> u64 {
            // Test-only helper: vertices created by add_vertex are not in
            // vmap; reconstruct the rid from cluster 0 position.
            rid(0, canonical)
        }
    }
}
