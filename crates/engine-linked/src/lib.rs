//! # engine-linked — the Neo4j-class native engine
//!
//! Reproduces the physical architecture the paper describes for Neo4j
//! (§3.2, *Native System Architectures*):
//!
//! * one fixed-size **record file** each for nodes, edges and properties;
//!   ids are file offsets, so id lookup is O(1) arithmetic;
//! * node records point at the **first edge of a doubly-linked edge chain**;
//!   the other edges are found by following links, so visiting a node's
//!   neighbors costs O(degree), independent of graph size;
//! * properties are **off-loaded** into linked property records with string
//!   payloads in a dynamic string store — scanning the graph structure never
//!   materializes attribute data (the separation the paper's conclusions
//!   single out as the winning design);
//! * two variants mirror the two tested versions:
//!   [`Variant::V1`] (Neo4j 1.9) keeps one untyped chain pair per node;
//!   [`Variant::V2`] (Neo4j 3.0) splits chains **by edge type and
//!   direction** (relationship groups) and routes every element access
//!   through a TinkerPop-style wrapper shim that materializes a wrapper
//!   object per touched element — reproducing both §6.4 observations
//!   ("Progress across Versions"): v2 wins on label-filtered traversals and
//!   loses on CUD / search-by-id / unfiltered edge walks.

use gm_model::api::{
    Direction, EdgeData, EdgeRef, EngineFeatures, GraphDb, GraphSnapshot, LoadOptions, LoadStats,
    SpaceReport, VertexData,
};
use gm_model::fxmap::FxHashMap;
use gm_model::interner::Interner;
use gm_model::value::{Props, Value};
use gm_model::{Dataset, Eid, GdbError, GdbResult, QueryCtx, Vid};
use gm_storage::records::RecordFile;

const NIL: u64 = u64::MAX;
/// Group key used by V1 for its single untyped relationship chain.
const UNTYPED: u32 = u32::MAX;

const NODE_REC: usize = 16; // label u32 | first_prop u64
const EDGE_REC: usize = 64; // src u64 | dst u64 | label u32 | src_prev | src_next | dst_prev | dst_next | first_prop
const PROP_REC: usize = 32; // key u32 | tag u8 | payload [16] | next u64

/// Engine variant, mirroring the two Neo4j versions of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Neo4j 1.9-style: one untyped doubly-linked chain pair per node,
    /// direct API calls without wrapper overhead.
    V1,
    /// Neo4j 3.0-style: relationship chains split by (type, direction)
    /// groups, plus a per-access wrapper shim.
    V2,
}

/// Per-node relationship chain heads for one edge type.
#[derive(Debug, Clone, Copy)]
struct RelGroup {
    label: u32,
    first_out: u64,
    first_in: u64,
}

/// The Neo4j-class engine. See the crate docs for the layout.
#[derive(Clone)]
pub struct LinkedGraph {
    variant: Variant,
    nodes: RecordFile,
    edges: RecordFile,
    props: RecordFile,
    strings: Vec<u8>,
    labels: Interner,
    keys: Interner,
    /// Relationship group chain heads per node. V1 keeps exactly one
    /// [`UNTYPED`] group; V2 one group per incident edge label.
    groups: FxHashMap<u64, Vec<RelGroup>>,
    /// canonical -> internal mapping captured at bulk load.
    vmap: Vec<u64>,
    emap: Vec<u64>,
    /// User-created attribute indexes: key id -> value -> vertex ids.
    indexes: FxHashMap<u32, FxHashMap<Value, Vec<u64>>>,
}

impl LinkedGraph {
    /// A fresh, empty engine of the given variant.
    pub fn new(variant: Variant) -> Self {
        LinkedGraph {
            variant,
            nodes: RecordFile::new(NODE_REC),
            edges: RecordFile::new(EDGE_REC),
            props: RecordFile::new(PROP_REC),
            strings: Vec::new(),
            labels: Interner::new(),
            keys: Interner::new(),
            groups: FxHashMap::default(),
            vmap: Vec::new(),
            emap: Vec::new(),
            indexes: FxHashMap::default(),
        }
    }

    /// Convenience constructor for the 1.9-style variant.
    pub fn v1() -> Self {
        Self::new(Variant::V1)
    }

    /// Convenience constructor for the 3.0-style variant.
    pub fn v2() -> Self {
        Self::new(Variant::V2)
    }

    // ---- record field helpers ------------------------------------------

    fn read_u64(rec: &[u8], off: usize) -> u64 {
        u64::from_le_bytes(rec[off..off + 8].try_into().expect("field"))
    }

    fn read_u32(rec: &[u8], off: usize) -> u32 {
        u32::from_le_bytes(rec[off..off + 4].try_into().expect("field"))
    }

    fn write_u64(rec: &mut [u8], off: usize, v: u64) {
        rec[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    fn write_u32(rec: &mut [u8], off: usize, v: u32) {
        rec[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    fn node_rec(&self, v: u64) -> GdbResult<[u8; NODE_REC]> {
        self.nodes
            .get(v)
            .map(|r| r.try_into().expect("node record size"))
            .ok_or(GdbError::VertexNotFound(v))
    }

    fn edge_rec(&self, e: u64) -> GdbResult<[u8; EDGE_REC]> {
        self.edges
            .get(e)
            .map(|r| r.try_into().expect("edge record size"))
            .ok_or(GdbError::EdgeNotFound(e))
    }

    // ---- TinkerPop wrapper shim (V2 only) ------------------------------

    /// The V2 adapter wraps every touched element into a fresh wrapper
    /// object (the licensing shim of §6.4). We reproduce the *work* of that
    /// wrapper: allocate a wrapper, re-read the element header through the
    /// record file, and resolve its label string.
    #[inline]
    fn wrap_vertex(&self, v: u64) {
        if self.variant == Variant::V2 {
            if let Some(rec) = self.nodes.get(v) {
                let label = Self::read_u32(rec, 0);
                let wrapper = Box::new((v, label, self.labels.resolve(label).map(String::from)));
                std::hint::black_box(&wrapper);
            }
        }
    }

    #[inline]
    fn wrap_edge(&self, e: u64) {
        if self.variant == Variant::V2 {
            if let Some(rec) = self.edges.get(e) {
                let label = Self::read_u32(rec, 16);
                let wrapper = Box::new((e, label, self.labels.resolve(label).map(String::from)));
                std::hint::black_box(&wrapper);
            }
        }
    }

    // ---- string store ---------------------------------------------------

    fn store_string(&mut self, s: &str) -> (u64, u32) {
        let off = self.strings.len() as u64;
        self.strings.extend_from_slice(s.as_bytes());
        (off, s.len() as u32)
    }

    fn load_string(&self, off: u64, len: u32) -> String {
        let lo = off as usize;
        String::from_utf8_lossy(&self.strings[lo..lo + len as usize]).into_owned()
    }

    // ---- property chains -------------------------------------------------

    fn encode_prop(&mut self, key: u32, value: &Value, next: u64) -> Vec<u8> {
        let mut rec = vec![0u8; PROP_REC];
        Self::write_u32(&mut rec, 0, key);
        match value {
            Value::Null => rec[4] = 0,
            Value::Bool(b) => {
                rec[4] = 1;
                rec[5] = *b as u8;
            }
            Value::Int(i) => {
                rec[4] = 2;
                rec[5..13].copy_from_slice(&i.to_le_bytes());
            }
            Value::Float(f) => {
                rec[4] = 3;
                rec[5..13].copy_from_slice(&f.to_le_bytes());
            }
            Value::Str(s) => {
                rec[4] = 4;
                let (off, len) = self.store_string(s);
                Self::write_u64(&mut rec, 5, off);
                Self::write_u32(&mut rec, 13, len);
            }
        }
        Self::write_u64(&mut rec, 21, next);
        rec
    }

    fn decode_prop_value(&self, rec: &[u8]) -> Value {
        match rec[4] {
            0 => Value::Null,
            1 => Value::Bool(rec[5] != 0),
            2 => Value::Int(i64::from_le_bytes(rec[5..13].try_into().expect("int"))),
            3 => Value::Float(f64::from_le_bytes(rec[5..13].try_into().expect("float"))),
            4 => {
                let off = Self::read_u64(rec, 5);
                let len = Self::read_u32(rec, 13);
                Value::Str(self.load_string(off, len))
            }
            t => unreachable!("bad prop tag {t}"),
        }
    }

    /// Walk a property chain, returning `(record_id, value)` for `key`.
    fn find_prop(&self, mut cur: u64, key: u32) -> Option<(u64, Value)> {
        while cur != NIL {
            let rec = self.props.get(cur)?;
            if Self::read_u32(rec, 0) == key {
                return Some((cur, self.decode_prop_value(rec)));
            }
            cur = Self::read_u64(rec, 21);
        }
        None
    }

    /// Collect a whole property chain.
    fn collect_props(&self, mut cur: u64) -> Props {
        let mut out = Props::new();
        while cur != NIL {
            let Some(rec) = self.props.get(cur) else {
                break;
            };
            let key = Self::read_u32(rec, 0);
            let name = self.keys.resolve(key).unwrap_or("<unknown>").to_string();
            out.push((name, self.decode_prop_value(rec)));
            cur = Self::read_u64(rec, 21);
        }
        out.reverse(); // chains are prepended; restore insertion order
        out
    }

    /// Free every record of a property chain.
    fn free_prop_chain(&mut self, mut cur: u64) {
        while cur != NIL {
            let next = match self.props.get(cur) {
                Some(rec) => Self::read_u64(rec, 21),
                None => break,
            };
            self.props.free(cur);
            cur = next;
        }
    }

    /// Set `key = value` in the chain starting at `head`; returns the new
    /// head and the previous value, if any.
    fn set_prop_in_chain(&mut self, head: u64, key: u32, value: &Value) -> (u64, Option<Value>) {
        if let Some((rid, old)) = self.find_prop(head, key) {
            let next = Self::read_u64(self.props.get(rid).expect("live prop"), 21);
            let rec = self.encode_prop(key, value, next);
            self.props.put(rid, &rec);
            (head, Some(old))
        } else {
            let rec = self.encode_prop(key, value, head);
            let rid = self.props.alloc(&rec);
            (rid, None)
        }
    }

    /// Remove `key` from the chain at `head`; returns (new_head, removed).
    fn remove_prop_in_chain(&mut self, head: u64, key: u32) -> (u64, Option<Value>) {
        let mut prev = NIL;
        let mut cur = head;
        while cur != NIL {
            let rec = match self.props.get(cur) {
                Some(r) => r,
                None => break,
            };
            let next = Self::read_u64(rec, 21);
            if Self::read_u32(rec, 0) == key {
                let old = self.decode_prop_value(rec);
                if prev == NIL {
                    self.props.free(cur);
                    return (next, Some(old));
                }
                let mut prev_rec = self.props.get(prev).expect("live").to_vec();
                Self::write_u64(&mut prev_rec, 21, next);
                self.props.put(prev, &prev_rec);
                self.props.free(cur);
                return (head, Some(old));
            }
            prev = cur;
            cur = next;
        }
        (head, None)
    }

    // ---- relationship groups ---------------------------------------------

    fn group_key(&self, label: u32) -> u32 {
        match self.variant {
            Variant::V1 => UNTYPED,
            Variant::V2 => label,
        }
    }

    fn group_mut(&mut self, node: u64, label: u32) -> &mut RelGroup {
        let key = self.group_key(label);
        let groups = self.groups.entry(node).or_default();
        if let Some(pos) = groups.iter().position(|g| g.label == key) {
            &mut groups[pos]
        } else {
            groups.push(RelGroup {
                label: key,
                first_out: NIL,
                first_in: NIL,
            });
            groups.last_mut().expect("just pushed")
        }
    }

    /// Chain heads relevant for (`node`, `dir`, optional label filter).
    fn chain_heads(&self, node: u64, dir: Direction, label: Option<u32>) -> Vec<(u64, bool)> {
        let mut heads = Vec::new();
        let Some(groups) = self.groups.get(&node) else {
            return heads;
        };
        for g in groups {
            if let Some(want) = label {
                // V1 has a single untyped group that must always be walked;
                // V2 can skip non-matching groups — the split-by-type win.
                if self.variant == Variant::V2 && g.label != want {
                    continue;
                }
            }
            if matches!(dir, Direction::Out | Direction::Both) && g.first_out != NIL {
                heads.push((g.first_out, true));
            }
            if matches!(dir, Direction::In | Direction::Both) && g.first_in != NIL {
                heads.push((g.first_in, false));
            }
        }
        heads
    }

    /// Walk the chains for (`node`, `dir`, `label`), invoking `f` with
    /// (edge id, edge record, walking_out) until it returns false.
    fn walk_edges(
        &self,
        node: u64,
        dir: Direction,
        label: Option<u32>,
        ctx: &QueryCtx,
        mut f: impl FnMut(u64, &[u8; EDGE_REC], bool) -> bool,
    ) -> GdbResult<()> {
        for (head, out_chain) in self.chain_heads(node, dir, label) {
            let mut cur = head;
            while cur != NIL {
                ctx.tick()?;
                let rec = self.edge_rec(cur)?;
                let lbl = Self::read_u32(&rec, 16);
                let matches = label.is_none_or(|want| lbl == want);
                if matches && !f(cur, &rec, out_chain) {
                    return Ok(());
                }
                cur = if out_chain {
                    Self::read_u64(&rec, 28) // src_next
                } else {
                    Self::read_u64(&rec, 44) // dst_next
                };
            }
        }
        Ok(())
    }

    /// Unlink edge `e` from the chain of `node` on the given side.
    fn unlink_edge(&mut self, e: u64, node: u64, label: u32, out_side: bool) -> GdbResult<()> {
        let rec = self.edge_rec(e)?;
        let (prev, next) = if out_side {
            (Self::read_u64(&rec, 20), Self::read_u64(&rec, 28))
        } else {
            (Self::read_u64(&rec, 36), Self::read_u64(&rec, 44))
        };
        if prev != NIL {
            let mut prev_rec = self.edge_rec(prev)?;
            // Which side of `prev` points at `e`? prev belongs to the same
            // chain of `node`, so its side is determined by whether node is
            // prev's src (out chain) or dst (in chain).
            let prev_src = Self::read_u64(&prev_rec, 0);
            let off = if out_side && prev_src == node { 28 } else { 44 };
            Self::write_u64(&mut prev_rec, off, next);
            self.edges.put(prev, &prev_rec);
        } else {
            // e was the head: repoint the group.
            let g = self.group_mut(node, label);
            if out_side {
                g.first_out = next;
            } else {
                g.first_in = next;
            }
        }
        if next != NIL {
            let mut next_rec = self.edge_rec(next)?;
            let next_src = Self::read_u64(&next_rec, 0);
            let off = if out_side && next_src == node { 20 } else { 36 };
            Self::write_u64(&mut next_rec, off, prev);
            self.edges.put(next, &next_rec);
        }
        Ok(())
    }

    fn add_edge_internal(
        &mut self,
        src: u64,
        dst: u64,
        label: u32,
        props: &Props,
    ) -> GdbResult<u64> {
        if !self.nodes.is_live(src) {
            return Err(GdbError::VertexNotFound(src));
        }
        if !self.nodes.is_live(dst) {
            return Err(GdbError::VertexNotFound(dst));
        }
        // Build the property chain first.
        let mut first_prop = NIL;
        for (name, value) in props {
            let key = self.keys.intern(name);
            first_prop = self.encode_and_alloc_prop(key, value, first_prop);
        }
        let mut rec = vec![0u8; EDGE_REC];
        Self::write_u64(&mut rec, 0, src);
        Self::write_u64(&mut rec, 8, dst);
        Self::write_u32(&mut rec, 16, label);
        Self::write_u64(&mut rec, 52, first_prop);

        // Prepend to src's out chain.
        let old_out = {
            let g = self.group_mut(src, label);
            let h = g.first_out;
            g.first_out = NIL; // placeholder, fixed after alloc
            h
        };
        // Prepend to dst's in chain.
        let old_in = {
            let g = self.group_mut(dst, label);
            let h = g.first_in;
            g.first_in = NIL;
            h
        };
        Self::write_u64(&mut rec, 20, NIL); // src_prev
        Self::write_u64(&mut rec, 28, old_out); // src_next
        Self::write_u64(&mut rec, 36, NIL); // dst_prev
        Self::write_u64(&mut rec, 44, old_in); // dst_next
        let e = self.edges.alloc(&rec);
        // Fix group heads and old heads' prev pointers.
        self.group_mut(src, label).first_out = e;
        self.group_mut(dst, label).first_in = e;
        if old_out != NIL {
            let mut r = self.edge_rec(old_out)?;
            let s = Self::read_u64(&r, 0);
            let off = if s == src { 20 } else { 36 };
            Self::write_u64(&mut r, off, e);
            self.edges.put(old_out, &r);
        }
        if old_in != NIL {
            let mut r = self.edge_rec(old_in)?;
            let s = Self::read_u64(&r, 0);
            // in-chain prev pointer lives on the dst side unless old head's
            // src equals dst and it was linked on the out side — the chain
            // side is determined by membership: old_in is in dst's
            // in-chain, so the dst_prev slot (offset 36) is always the right
            // one — including for self-loops, whose out side was fixed above.
            let _ = s;
            Self::write_u64(&mut r, 36, e);
            self.edges.put(old_in, &r);
        }
        Ok(e)
    }

    fn encode_and_alloc_prop(&mut self, key: u32, value: &Value, next: u64) -> u64 {
        let rec = self.encode_prop(key, value, next);
        self.props.alloc(&rec)
    }

    // ---- index maintenance ----------------------------------------------

    fn index_insert(&mut self, key: u32, value: &Value, v: u64) {
        if let Some(idx) = self.indexes.get_mut(&key) {
            idx.entry(value.clone()).or_default().push(v);
        }
    }

    fn index_remove(&mut self, key: u32, value: &Value, v: u64) {
        if let Some(idx) = self.indexes.get_mut(&key) {
            if let Some(list) = idx.get_mut(value) {
                if let Some(pos) = list.iter().position(|&x| x == v) {
                    list.swap_remove(pos);
                }
                if list.is_empty() {
                    idx.remove(value);
                }
            }
        }
    }

    fn first_prop_of_node(&self, v: u64) -> GdbResult<u64> {
        Ok(Self::read_u64(&self.node_rec(v)?, 4))
    }

    fn set_first_prop_of_node(&mut self, v: u64, head: u64) -> GdbResult<()> {
        let mut rec = self.node_rec(v)?;
        Self::write_u64(&mut rec, 4, head);
        self.nodes.put(v, &rec);
        Ok(())
    }
}

impl GraphSnapshot for LinkedGraph {
    fn name(&self) -> String {
        match self.variant {
            Variant::V1 => "linked(v1)".into(),
            Variant::V2 => "linked(v2)".into(),
        }
    }

    fn features(&self) -> EngineFeatures {
        EngineFeatures {
            name: self.name(),
            system_type: "Native".into(),
            storage: "Linked fixed-size records".into(),
            edge_traversal: "Direct pointer".into(),
            optimized_adapter: false,
            async_writes: false,
            attribute_indexes: true,
        }
    }

    fn resolve_vertex(&self, canonical: u64) -> Option<Vid> {
        self.vmap.get(canonical as usize).map(|&v| Vid(v))
    }

    fn resolve_edge(&self, canonical: u64) -> Option<Eid> {
        self.emap.get(canonical as usize).map(|&e| Eid(e))
    }

    fn vertex_count(&self, ctx: &QueryCtx) -> GdbResult<u64> {
        // g.V.count() iterates the node file (ticking per slot); the record
        // file itself knows its live count, but the Gremlin semantics scan.
        let mut n = 0u64;
        for _ in self.nodes.iter_ids() {
            ctx.tick()?;
            n += 1;
        }
        Ok(n)
    }

    fn edge_count(&self, ctx: &QueryCtx) -> GdbResult<u64> {
        let mut n = 0u64;
        for _ in self.edges.iter_ids() {
            ctx.tick()?;
            n += 1;
        }
        Ok(n)
    }

    fn edge_label_set(&self, ctx: &QueryCtx) -> GdbResult<Vec<String>> {
        let mut seen = vec![false; self.labels.len()];
        for e in self.edges.iter_ids() {
            ctx.tick()?;
            let rec = self.edges.get(e).expect("live edge");
            seen[Self::read_u32(rec, 16) as usize] = true;
        }
        Ok(seen
            .iter()
            .enumerate()
            .filter(|(_, s)| **s)
            .filter_map(|(i, _)| self.labels.resolve(i as u32).map(String::from))
            .collect())
    }

    fn vertices_with_property(
        &self,
        name: &str,
        value: &Value,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Vid>> {
        let Some(key) = self.keys.get(name) else {
            return Ok(Vec::new());
        };
        if let Some(idx) = self.indexes.get(&key) {
            let mut hits: Vec<Vid> = idx
                .get(value)
                .map(|v| v.iter().map(|&x| Vid(x)).collect())
                .unwrap_or_default();
            hits.sort_unstable();
            return Ok(hits);
        }
        let mut out = Vec::new();
        for v in self.nodes.iter_ids() {
            ctx.tick()?;
            let head = Self::read_u64(self.nodes.get(v).expect("live"), 4);
            if let Some((_, found)) = self.find_prop(head, key) {
                if &found == value {
                    out.push(Vid(v));
                }
            }
        }
        Ok(out)
    }

    fn edges_with_property(
        &self,
        name: &str,
        value: &Value,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Eid>> {
        let Some(key) = self.keys.get(name) else {
            return Ok(Vec::new());
        };
        let mut out = Vec::new();
        for e in self.edges.iter_ids() {
            ctx.tick()?;
            let head = Self::read_u64(self.edges.get(e).expect("live"), 52);
            if let Some((_, found)) = self.find_prop(head, key) {
                if &found == value {
                    out.push(Eid(e));
                }
            }
        }
        Ok(out)
    }

    fn edges_with_label(&self, label: &str, ctx: &QueryCtx) -> GdbResult<Vec<Eid>> {
        let Some(want) = self.labels.get(label) else {
            return Ok(Vec::new());
        };
        let mut out = Vec::new();
        for e in self.edges.iter_ids() {
            ctx.tick()?;
            let rec = self.edges.get(e).expect("live edge");
            if Self::read_u32(rec, 16) == want {
                out.push(Eid(e));
            }
        }
        Ok(out)
    }

    fn vertex(&self, v: Vid) -> GdbResult<Option<VertexData>> {
        self.wrap_vertex(v.0);
        match self.nodes.get(v.0) {
            None => Ok(None),
            Some(rec) => {
                let label_id = Self::read_u32(rec, 0);
                let first_prop = Self::read_u64(rec, 4);
                Ok(Some(VertexData {
                    id: v,
                    label: self
                        .labels
                        .resolve(label_id)
                        .unwrap_or("<unknown>")
                        .to_string(),
                    props: self.collect_props(first_prop),
                }))
            }
        }
    }

    fn edge(&self, e: Eid) -> GdbResult<Option<EdgeData>> {
        self.wrap_edge(e.0);
        match self.edges.get(e.0) {
            None => Ok(None),
            Some(rec) => {
                let label_id = Self::read_u32(rec, 16);
                Ok(Some(EdgeData {
                    id: e,
                    src: Vid(Self::read_u64(rec, 0)),
                    dst: Vid(Self::read_u64(rec, 8)),
                    label: self
                        .labels
                        .resolve(label_id)
                        .unwrap_or("<unknown>")
                        .to_string(),
                    props: self.collect_props(Self::read_u64(rec, 52)),
                }))
            }
        }
    }

    fn neighbors(
        &self,
        v: Vid,
        dir: Direction,
        label: Option<&str>,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Vid>> {
        if !self.nodes.is_live(v.0) {
            return Err(GdbError::VertexNotFound(v.0));
        }
        let label_id = match label {
            Some(l) => match self.labels.get(l) {
                Some(id) => Some(id),
                None => return Ok(Vec::new()),
            },
            None => None,
        };
        let mut out = Vec::new();
        self.walk_edges(v.0, dir, label_id, ctx, |_, rec, out_chain| {
            let other = if out_chain {
                Self::read_u64(rec, 8)
            } else {
                Self::read_u64(rec, 0)
            };
            out.push(Vid(other));
            true
        })?;
        Ok(out)
    }

    fn vertex_edges(
        &self,
        v: Vid,
        dir: Direction,
        label: Option<&str>,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<EdgeRef>> {
        if !self.nodes.is_live(v.0) {
            return Err(GdbError::VertexNotFound(v.0));
        }
        let label_id = match label {
            Some(l) => match self.labels.get(l) {
                Some(id) => Some(id),
                None => return Ok(Vec::new()),
            },
            None => None,
        };
        let mut out = Vec::new();
        self.walk_edges(v.0, dir, label_id, ctx, |e, rec, out_chain| {
            let other = if out_chain {
                Self::read_u64(rec, 8)
            } else {
                Self::read_u64(rec, 0)
            };
            out.push(EdgeRef {
                eid: Eid(e),
                other: Vid(other),
            });
            true
        })?;
        Ok(out)
    }

    fn vertex_degree(&self, v: Vid, dir: Direction, ctx: &QueryCtx) -> GdbResult<u64> {
        if !self.nodes.is_live(v.0) {
            return Err(GdbError::VertexNotFound(v.0));
        }
        let mut n = 0u64;
        self.walk_edges(v.0, dir, None, ctx, |_, _, _| {
            n += 1;
            true
        })?;
        Ok(n)
    }

    fn vertex_edge_labels(&self, v: Vid, dir: Direction, ctx: &QueryCtx) -> GdbResult<Vec<String>> {
        if !self.nodes.is_live(v.0) {
            return Err(GdbError::VertexNotFound(v.0));
        }
        let mut seen: Vec<u32> = Vec::new();
        self.walk_edges(v.0, dir, None, ctx, |_, rec, _| {
            let l = Self::read_u32(rec, 16);
            if !seen.contains(&l) {
                seen.push(l);
            }
            true
        })?;
        Ok(seen
            .into_iter()
            .filter_map(|l| self.labels.resolve(l).map(String::from))
            .collect())
    }

    fn scan_vertices<'a>(
        &'a self,
        ctx: &'a QueryCtx,
    ) -> GdbResult<Box<dyn Iterator<Item = GdbResult<Vid>> + 'a>> {
        Ok(Box::new(self.nodes.iter_ids().map(move |v| {
            ctx.tick()?;
            Ok(Vid(v))
        })))
    }

    fn scan_edges<'a>(
        &'a self,
        ctx: &'a QueryCtx,
    ) -> GdbResult<Box<dyn Iterator<Item = GdbResult<Eid>> + 'a>> {
        Ok(Box::new(self.edges.iter_ids().map(move |e| {
            ctx.tick()?;
            Ok(Eid(e))
        })))
    }

    fn vertex_property(&self, v: Vid, name: &str) -> GdbResult<Option<Value>> {
        let head = self.first_prop_of_node(v.0)?;
        let Some(key) = self.keys.get(name) else {
            return Ok(None);
        };
        Ok(self.find_prop(head, key).map(|(_, val)| val))
    }

    fn edge_property(&self, e: Eid, name: &str) -> GdbResult<Option<Value>> {
        let rec = self.edge_rec(e.0)?;
        let Some(key) = self.keys.get(name) else {
            return Ok(None);
        };
        Ok(self
            .find_prop(Self::read_u64(&rec, 52), key)
            .map(|(_, val)| val))
    }

    fn edge_endpoints(&self, e: Eid) -> GdbResult<Option<(Vid, Vid)>> {
        match self.edges.get(e.0) {
            None => Ok(None),
            Some(rec) => Ok(Some((
                Vid(Self::read_u64(rec, 0)),
                Vid(Self::read_u64(rec, 8)),
            ))),
        }
    }

    fn edge_label(&self, e: Eid) -> GdbResult<Option<String>> {
        match self.edges.get(e.0) {
            None => Ok(None),
            Some(rec) => Ok(self
                .labels
                .resolve(Self::read_u32(rec, 16))
                .map(String::from)),
        }
    }

    fn vertex_label(&self, v: Vid) -> GdbResult<Option<String>> {
        match self.nodes.get(v.0) {
            None => Ok(None),
            Some(rec) => Ok(self
                .labels
                .resolve(Self::read_u32(rec, 0))
                .map(String::from)),
        }
    }

    fn has_vertex_index(&self, prop: &str) -> bool {
        self.keys
            .get(prop)
            .map(|k| self.indexes.contains_key(&k))
            .unwrap_or(false)
    }

    fn space(&self) -> SpaceReport {
        let mut r = SpaceReport::default();
        r.add("node records", self.nodes.bytes());
        r.add("edge records", self.edges.bytes());
        r.add("property records", self.props.bytes());
        r.add("string store", self.strings.len() as u64);
        r.add("label/type store", self.labels.bytes() + self.keys.bytes());
        r.add(
            "relationship groups",
            self.groups
                .values()
                .map(|g| 16 + g.len() as u64 * 20)
                .sum::<u64>(),
        );
        let idx_bytes: u64 = self
            .indexes
            .values()
            .map(|idx| {
                idx.iter()
                    .map(|(k, v)| k.approx_bytes() + 8 * v.len() as u64 + 32)
                    .sum::<u64>()
            })
            .sum();
        if idx_bytes > 0 {
            r.add("attribute indexes", idx_bytes);
        }
        r
    }
}

impl GraphDb for LinkedGraph {
    fn bulk_load(&mut self, data: &Dataset, _opts: &LoadOptions) -> GdbResult<LoadStats> {
        if !self.nodes.is_empty() {
            return Err(GdbError::Invalid(
                "bulk_load requires an empty engine".into(),
            ));
        }
        self.vmap.reserve(data.vertices.len());
        for v in &data.vertices {
            let vid = self.add_vertex(&v.label, &v.props)?;
            self.vmap.push(vid.0);
        }
        self.emap.reserve(data.edges.len());
        for e in &data.edges {
            let src = self.vmap[e.src as usize];
            let dst = self.vmap[e.dst as usize];
            let label = self.labels.intern(&e.label);
            let eid = self.add_edge_internal(src, dst, label, &e.props)?;
            self.emap.push(eid);
        }
        Ok(LoadStats {
            vertices: data.vertices.len() as u64,
            edges: data.edges.len() as u64,
        })
    }

    fn add_vertex(&mut self, label: &str, props: &Props) -> GdbResult<Vid> {
        let label_id = self.labels.intern(label);
        let mut first_prop = NIL;
        for (name, value) in props {
            let key = self.keys.intern(name);
            first_prop = self.encode_and_alloc_prop(key, value, first_prop);
        }
        let mut rec = vec![0u8; NODE_REC];
        Self::write_u32(&mut rec, 0, label_id);
        Self::write_u64(&mut rec, 4, first_prop);
        let v = self.nodes.alloc(&rec);
        for (name, value) in props {
            let key = self.keys.intern(name);
            self.index_insert(key, value, v);
        }
        self.wrap_vertex(v);
        Ok(Vid(v))
    }

    fn add_edge(&mut self, src: Vid, dst: Vid, label: &str, props: &Props) -> GdbResult<Eid> {
        let label_id = self.labels.intern(label);
        let e = self.add_edge_internal(src.0, dst.0, label_id, props)?;
        self.wrap_edge(e);
        Ok(Eid(e))
    }

    fn set_vertex_property(&mut self, v: Vid, name: &str, value: Value) -> GdbResult<()> {
        let head = self.first_prop_of_node(v.0)?;
        let key = self.keys.intern(name);
        let (new_head, old) = self.set_prop_in_chain(head, key, &value);
        if new_head != head {
            self.set_first_prop_of_node(v.0, new_head)?;
        }
        if let Some(old) = old {
            self.index_remove(key, &old, v.0);
        }
        self.index_insert(key, &value, v.0);
        self.wrap_vertex(v.0);
        Ok(())
    }

    fn set_edge_property(&mut self, e: Eid, name: &str, value: Value) -> GdbResult<()> {
        let mut rec = self.edge_rec(e.0)?;
        let head = Self::read_u64(&rec, 52);
        let key = self.keys.intern(name);
        let (new_head, _) = self.set_prop_in_chain(head, key, &value);
        if new_head != head {
            Self::write_u64(&mut rec, 52, new_head);
            self.edges.put(e.0, &rec);
        }
        self.wrap_edge(e.0);
        Ok(())
    }

    fn remove_vertex(&mut self, v: Vid) -> GdbResult<()> {
        if !self.nodes.is_live(v.0) {
            return Err(GdbError::VertexNotFound(v.0));
        }
        self.wrap_vertex(v.0);
        // Collect incident edges first (walking while mutating is unsound).
        let ctx = QueryCtx::unbounded();
        let mut incident = Vec::new();
        self.walk_edges(v.0, Direction::Both, None, &ctx, |e, _, _| {
            incident.push(e);
            true
        })?;
        incident.sort_unstable();
        incident.dedup(); // self-loops appear on both chains
        for e in incident {
            self.remove_edge(Eid(e))?;
        }
        // Remove properties (and index entries).
        let head = self.first_prop_of_node(v.0)?;
        let props = self.collect_props(head);
        for (name, value) in &props {
            if let Some(key) = self.keys.get(name) {
                self.index_remove(key, value, v.0);
            }
        }
        self.free_prop_chain(head);
        self.groups.remove(&v.0);
        self.nodes.free(v.0);
        Ok(())
    }

    fn remove_edge(&mut self, e: Eid) -> GdbResult<()> {
        let rec = self.edge_rec(e.0)?;
        self.wrap_edge(e.0);
        let src = Self::read_u64(&rec, 0);
        let dst = Self::read_u64(&rec, 8);
        let label = Self::read_u32(&rec, 16);
        self.unlink_edge(e.0, src, label, true)?;
        self.unlink_edge(e.0, dst, label, false)?;
        self.free_prop_chain(Self::read_u64(&rec, 52));
        self.edges.free(e.0);
        Ok(())
    }

    fn remove_vertex_property(&mut self, v: Vid, name: &str) -> GdbResult<Option<Value>> {
        let head = self.first_prop_of_node(v.0)?;
        let Some(key) = self.keys.get(name) else {
            return Ok(None);
        };
        let (new_head, old) = self.remove_prop_in_chain(head, key);
        if new_head != head {
            self.set_first_prop_of_node(v.0, new_head)?;
        }
        if let Some(old) = &old {
            self.index_remove(key, old, v.0);
        }
        self.wrap_vertex(v.0);
        Ok(old)
    }

    fn remove_edge_property(&mut self, e: Eid, name: &str) -> GdbResult<Option<Value>> {
        let mut rec = self.edge_rec(e.0)?;
        let head = Self::read_u64(&rec, 52);
        let Some(key) = self.keys.get(name) else {
            return Ok(None);
        };
        let (new_head, old) = self.remove_prop_in_chain(head, key);
        if new_head != head {
            Self::write_u64(&mut rec, 52, new_head);
            self.edges.put(e.0, &rec);
        }
        self.wrap_edge(e.0);
        Ok(old)
    }

    fn create_vertex_index(&mut self, prop: &str) -> GdbResult<()> {
        let key = self.keys.intern(prop);
        if self.indexes.contains_key(&key) {
            return Ok(());
        }
        let mut idx: FxHashMap<Value, Vec<u64>> = FxHashMap::default();
        for v in self.nodes.iter_ids() {
            let head = Self::read_u64(self.nodes.get(v).expect("live"), 4);
            if let Some((_, value)) = self.find_prop(head, key) {
                idx.entry(value).or_default().push(v);
            }
        }
        self.indexes.insert(key, idx);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_model::testkit;

    #[test]
    fn v1_conformance() {
        testkit::conformance_suite(&mut || Box::new(LinkedGraph::v1()));
    }

    #[test]
    fn v2_conformance() {
        testkit::conformance_suite(&mut || Box::new(LinkedGraph::v2()));
    }

    #[test]
    fn ids_are_file_offsets() {
        let mut g = LinkedGraph::v1();
        let a = g.add_vertex("x", &vec![]).unwrap();
        let b = g.add_vertex("x", &vec![]).unwrap();
        assert_eq!((a.0, b.0), (0, 1), "sequential slot ids");
    }

    #[test]
    fn chain_order_is_lifo() {
        // Neo4j prepends at the chain head: the most recently added edge is
        // visited first.
        let mut g = LinkedGraph::v1();
        let a = g.add_vertex("n", &vec![]).unwrap();
        let b = g.add_vertex("n", &vec![]).unwrap();
        let c = g.add_vertex("n", &vec![]).unwrap();
        g.add_edge(a, b, "e", &vec![]).unwrap();
        g.add_edge(a, c, "e", &vec![]).unwrap();
        let ctx = QueryCtx::unbounded();
        let out = g.neighbors(a, Direction::Out, None, &ctx).unwrap();
        assert_eq!(out, vec![c, b]);
    }

    #[test]
    fn v2_groups_split_by_label() {
        let mut g = LinkedGraph::v2();
        let a = g.add_vertex("n", &vec![]).unwrap();
        let b = g.add_vertex("n", &vec![]).unwrap();
        g.add_edge(a, b, "x", &vec![]).unwrap();
        g.add_edge(a, b, "y", &vec![]).unwrap();
        assert_eq!(g.groups[&a.0].len(), 2, "one group per label");
        let mut g1 = LinkedGraph::v1();
        let a = g1.add_vertex("n", &vec![]).unwrap();
        let b = g1.add_vertex("n", &vec![]).unwrap();
        g1.add_edge(a, b, "x", &vec![]).unwrap();
        g1.add_edge(a, b, "y", &vec![]).unwrap();
        assert_eq!(g1.groups[&a.0].len(), 1, "v1 keeps one untyped chain");
    }

    #[test]
    fn middle_of_chain_unlink() {
        let mut g = LinkedGraph::v1();
        let hub = g.add_vertex("n", &vec![]).unwrap();
        let spokes: Vec<Vid> = (0..5)
            .map(|_| g.add_vertex("n", &vec![]).unwrap())
            .collect();
        let edges: Vec<Eid> = spokes
            .iter()
            .map(|s| g.add_edge(hub, *s, "e", &vec![]).unwrap())
            .collect();
        // Remove the middle edge, then the head, then the tail.
        g.remove_edge(edges[2]).unwrap();
        g.remove_edge(edges[4]).unwrap(); // chain head (LIFO)
        g.remove_edge(edges[0]).unwrap(); // chain tail
        let ctx = QueryCtx::unbounded();
        let mut left: Vec<u64> = g
            .neighbors(hub, Direction::Out, None, &ctx)
            .unwrap()
            .iter()
            .map(|v| v.0)
            .collect();
        left.sort_unstable();
        assert_eq!(left, vec![spokes[1].0, spokes[3].0]);
        assert_eq!(g.vertex_degree(hub, Direction::Out, &ctx).unwrap(), 2);
    }

    #[test]
    fn property_records_reused_after_delete() {
        let mut g = LinkedGraph::v1();
        let v = g
            .add_vertex(
                "n",
                &vec![("a".into(), Value::Int(1)), ("b".into(), Value::Int(2))],
            )
            .unwrap();
        let props_before = g.props.len();
        g.remove_vertex_property(v, "a").unwrap();
        assert_eq!(g.props.len(), props_before - 1);
        g.set_vertex_property(v, "c", Value::Int(3)).unwrap();
        assert_eq!(g.props.len(), props_before, "freed slot reused");
        assert_eq!(g.vertex_property(v, "b").unwrap(), Some(Value::Int(2)));
        assert_eq!(g.vertex_property(v, "c").unwrap(), Some(Value::Int(3)));
    }

    #[test]
    fn string_values_round_trip_through_dynamic_store() {
        let mut g = LinkedGraph::v1();
        let long = "x".repeat(500);
        let v = g
            .add_vertex("n", &vec![("s".into(), Value::Str(long.clone()))])
            .unwrap();
        assert_eq!(g.vertex_property(v, "s").unwrap(), Some(Value::Str(long)));
    }

    #[test]
    fn space_components_present() {
        let mut g = LinkedGraph::v1();
        g.bulk_load(&testkit::tiny_dataset(), &LoadOptions::default())
            .unwrap();
        let report = g.space();
        let names: Vec<&str> = report.components.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"node records"));
        assert!(names.contains(&"edge records"));
        assert!(names.contains(&"property records"));
    }

    #[test]
    fn label_filtered_walk_skips_groups_in_v2() {
        // Both variants agree on results; v2 touches fewer edges (work
        // measured through the ctx tick counter).
        let mut v1 = LinkedGraph::v1();
        let mut v2 = LinkedGraph::v2();
        for g in [&mut v1, &mut v2] {
            let a = g.add_vertex("n", &vec![]).unwrap();
            for i in 0..50 {
                let b = g.add_vertex("n", &vec![]).unwrap();
                let label = if i % 10 == 0 { "rare" } else { "common" };
                g.add_edge(a, b, label, &vec![]).unwrap();
            }
        }
        let ctx1 = QueryCtx::unbounded();
        let r1 = v1
            .neighbors(Vid(0), Direction::Out, Some("rare"), &ctx1)
            .unwrap();
        let ctx2 = QueryCtx::unbounded();
        let r2 = v2
            .neighbors(Vid(0), Direction::Out, Some("rare"), &ctx2)
            .unwrap();
        assert_eq!(r1.len(), 5);
        assert_eq!(r2.len(), 5);
        assert!(
            ctx2.work() < ctx1.work(),
            "v2 grouped chains touch fewer edges ({} vs {})",
            ctx2.work(),
            ctx1.work()
        );
    }
}
