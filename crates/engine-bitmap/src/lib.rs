//! # engine-bitmap — the Sparksee/DEX-class engine
//!
//! Reproduces the architecture the paper describes for Sparksee (§3.2):
//!
//! * separate data structures for **objects**, **relationships** and each
//!   **attribute name**; objects carry sequential ids from one shared id
//!   space;
//! * each structure is "a map from keys to values, and a **bitmap for each
//!   value**": label → bitmap of members, attribute value → bitmap of
//!   owners, node → bitmap of incident edges;
//! * many operations become **bitwise operations on bitmaps** — counting is
//!   a cardinality read, label-filtered adjacency is an AND of two bitmaps —
//!   which is why the paper finds Sparksee fastest on counts, id lookups
//!   and CUD;
//! * "operations like edge traversals have **no constant time guarantees**":
//!   every hop pays map lookups to resolve edge endpoints;
//! * the **degree-filter adapter flaw** (§6.4: Q28–Q31 exhaust all RAM on
//!   the Freebase samples, "linked to a known problem in the Gremlin
//!   implementation") is reproduced faithfully: [`BitmapGraph::degree_scan`]
//!   materializes every vertex's incident-edge list and *retains* the
//!   buffers for the duration of the scan; a configurable cap turns the
//!   paper's OOM kill into a clean [`GdbError::ResourceExhausted`].

use std::collections::HashMap;

use gm_model::api::{
    Direction, EdgeData, EdgeRef, EngineFeatures, GraphDb, GraphSnapshot, LoadOptions, LoadStats,
    SpaceReport, VertexData,
};
use gm_model::fxmap::FxHashMap;
use gm_model::interner::Interner;
use gm_model::value::{Props, Value};
use gm_model::{Dataset, Eid, GdbError, GdbResult, QueryCtx, Vid};
use gm_storage::bitmap::Bitmap;

/// Default cap on entries retained by the degree-filter adapter before the
/// engine reports resource exhaustion (the paper's RAM+swap exhaustion,
/// made deterministic). Sized so that, at the reproduction's default
/// scales, the failure appears on the larger Freebase samples — mirroring
/// §6.4 where Sparksee fails Q28–Q31 "on all the Freebase subsamples" while
/// completing Yeast, MiCo and LDBC.
pub const DEFAULT_MATERIALIZATION_CAP: u64 = 50_000;

/// Per-attribute storage: forward map + one bitmap per distinct value.
#[derive(Debug, Default, Clone)]
struct AttrStore {
    by_oid: FxHashMap<u64, Value>,
    by_value: HashMap<Value, Bitmap>,
}

impl AttrStore {
    fn set(&mut self, oid: u64, value: Value) -> Option<Value> {
        if let Some(old) = self.by_oid.get(&oid).cloned() {
            if let Some(bm) = self.by_value.get_mut(&old) {
                bm.remove(oid);
                if bm.is_empty() {
                    self.by_value.remove(&old);
                }
            }
            self.by_value.entry(value.clone()).or_default().insert(oid);
            self.by_oid.insert(oid, value);
            Some(old)
        } else {
            self.by_value.entry(value.clone()).or_default().insert(oid);
            self.by_oid.insert(oid, value);
            None
        }
    }

    fn remove(&mut self, oid: u64) -> Option<Value> {
        let old = self.by_oid.remove(&oid)?;
        if let Some(bm) = self.by_value.get_mut(&old) {
            bm.remove(oid);
            if bm.is_empty() {
                self.by_value.remove(&old);
            }
        }
        Some(old)
    }

    fn bytes(&self) -> u64 {
        let fwd: u64 = self
            .by_oid
            .values()
            .map(|v| 16 + v.approx_bytes())
            .sum::<u64>();
        let bwd: u64 = self
            .by_value
            .iter()
            .map(|(v, bm)| v.approx_bytes() + bm.bytes())
            .sum::<u64>();
        fwd + bwd + 64
    }
}

/// The Sparksee-class engine. See crate docs for the layout.
#[derive(Clone)]
pub struct BitmapGraph {
    vertices: Bitmap,
    edges: Bitmap,
    vlabel_bitmaps: Vec<Bitmap>,
    elabel_bitmaps: Vec<Bitmap>,
    vlabels: Interner,
    elabels: Interner,
    keys: Interner,
    edge_src: FxHashMap<u64, u64>,
    edge_dst: FxHashMap<u64, u64>,
    edge_label: FxHashMap<u64, u32>,
    out_edges: FxHashMap<u64, Bitmap>,
    in_edges: FxHashMap<u64, Bitmap>,
    vattrs: FxHashMap<u32, AttrStore>,
    eattrs: FxHashMap<u32, AttrStore>,
    vertex_label_of: FxHashMap<u64, u32>,
    next_oid: u64,
    vmap: Vec<u64>,
    emap: Vec<u64>,
    declared_indexes: Vec<u32>,
    materialization_cap: u64,
}

impl Default for BitmapGraph {
    fn default() -> Self {
        Self::new()
    }
}

impl BitmapGraph {
    /// A fresh engine with [`DEFAULT_MATERIALIZATION_CAP`].
    pub fn new() -> Self {
        Self::with_materialization_cap(DEFAULT_MATERIALIZATION_CAP)
    }

    /// A fresh engine with an explicit degree-scan materialization cap.
    pub fn with_materialization_cap(cap: u64) -> Self {
        BitmapGraph {
            vertices: Bitmap::new(),
            edges: Bitmap::new(),
            vlabel_bitmaps: Vec::new(),
            elabel_bitmaps: Vec::new(),
            vlabels: Interner::new(),
            elabels: Interner::new(),
            keys: Interner::new(),
            edge_src: FxHashMap::default(),
            edge_dst: FxHashMap::default(),
            edge_label: FxHashMap::default(),
            out_edges: FxHashMap::default(),
            in_edges: FxHashMap::default(),
            vattrs: FxHashMap::default(),
            eattrs: FxHashMap::default(),
            vertex_label_of: FxHashMap::default(),
            next_oid: 0,
            vmap: Vec::new(),
            emap: Vec::new(),
            declared_indexes: Vec::new(),
            materialization_cap: cap,
        }
    }

    fn alloc_oid(&mut self) -> u64 {
        let oid = self.next_oid;
        self.next_oid += 1;
        oid
    }

    fn require_vertex(&self, v: u64) -> GdbResult<()> {
        if self.vertices.contains(v) {
            Ok(())
        } else {
            Err(GdbError::VertexNotFound(v))
        }
    }

    fn require_edge(&self, e: u64) -> GdbResult<()> {
        if self.edges.contains(e) {
            Ok(())
        } else {
            Err(GdbError::EdgeNotFound(e))
        }
    }

    fn elabel_bitmap_mut(&mut self, label: u32) -> &mut Bitmap {
        while self.elabel_bitmaps.len() <= label as usize {
            self.elabel_bitmaps.push(Bitmap::new());
        }
        &mut self.elabel_bitmaps[label as usize]
    }

    fn vlabel_bitmap_mut(&mut self, label: u32) -> &mut Bitmap {
        while self.vlabel_bitmaps.len() <= label as usize {
            self.vlabel_bitmaps.push(Bitmap::new());
        }
        &mut self.vlabel_bitmaps[label as usize]
    }

    fn add_edge_raw(&mut self, src: u64, dst: u64, label: u32, props: &Props) -> GdbResult<u64> {
        self.require_vertex(src)?;
        self.require_vertex(dst)?;
        let e = self.alloc_oid();
        self.edges.insert(e);
        self.elabel_bitmap_mut(label).insert(e);
        self.edge_src.insert(e, src);
        self.edge_dst.insert(e, dst);
        self.edge_label.insert(e, label);
        self.out_edges.entry(src).or_default().insert(e);
        self.in_edges.entry(dst).or_default().insert(e);
        for (name, value) in props {
            let key = self.keys.intern(name);
            self.eattrs.entry(key).or_default().set(e, value.clone());
        }
        Ok(e)
    }

    /// Incident-edge oids for (v, dir), optionally intersected with a label
    /// bitmap (a pure bitwise AND — Sparksee's signature move).
    fn incident(&self, v: u64, dir: Direction, label: Option<u32>) -> Vec<u64> {
        let empty = Bitmap::new();
        let outs = self.out_edges.get(&v).unwrap_or(&empty);
        let ins = self.in_edges.get(&v).unwrap_or(&empty);
        let combined = match dir {
            Direction::Out => outs.clone(),
            Direction::In => ins.clone(),
            Direction::Both => outs.or(ins),
        };
        let filtered = match label {
            Some(l) => match self.elabel_bitmaps.get(l as usize) {
                Some(bm) => combined.and(bm),
                None => Bitmap::new(),
            },
            None => combined,
        };
        let mut oids: Vec<u64> = filtered.iter().collect();
        // both() must see self-loops twice (they are in `outs` AND `ins`,
        // but OR collapses them) — re-add the duplicates.
        if dir == Direction::Both {
            let loops = outs.and(ins);
            for e in loops.iter() {
                if label.is_none_or(|l| {
                    self.elabel_bitmaps
                        .get(l as usize)
                        .is_some_and(|bm| bm.contains(e))
                }) {
                    oids.push(e);
                }
            }
        }
        oids
    }
}

impl GraphSnapshot for BitmapGraph {
    fn name(&self) -> String {
        "bitmap".into()
    }

    fn features(&self) -> EngineFeatures {
        EngineFeatures {
            name: self.name(),
            system_type: "Native".into(),
            storage: "Indexed bitmaps (map + bitmap per value)".into(),
            edge_traversal: "B+Tree/Bitmap".into(),
            optimized_adapter: false,
            async_writes: false,
            attribute_indexes: true,
        }
    }

    fn resolve_vertex(&self, canonical: u64) -> Option<Vid> {
        self.vmap.get(canonical as usize).map(|&v| Vid(v))
    }

    fn resolve_edge(&self, canonical: u64) -> Option<Eid> {
        self.emap.get(canonical as usize).map(|&e| Eid(e))
    }

    fn vertex_count(&self, ctx: &QueryCtx) -> GdbResult<u64> {
        // Cardinality is maintained by the bitmaps — Sparksee's adapter
        // resolves the count without iterating objects (§6.4: best on Q8).
        ctx.check_clock()?;
        Ok(self.vertices.len())
    }

    fn edge_count(&self, ctx: &QueryCtx) -> GdbResult<u64> {
        ctx.check_clock()?;
        Ok(self.edges.len())
    }

    fn edge_label_set(&self, ctx: &QueryCtx) -> GdbResult<Vec<String>> {
        // The adapter's de-duplication is per-edge (the "sub-optimal
        // implementation of the de-duplication step" of §6.4): iterate every
        // edge, look its label up, dedup in a set.
        let mut seen: Vec<bool> = vec![false; self.elabels.len()];
        for e in self.edges.iter() {
            ctx.tick()?;
            if let Some(&l) = self.edge_label.get(&e) {
                seen[l as usize] = true;
            }
        }
        Ok(seen
            .iter()
            .enumerate()
            .filter(|(_, s)| **s)
            .filter_map(|(i, _)| self.elabels.resolve(i as u32).map(String::from))
            .collect())
    }

    fn vertices_with_property(
        &self,
        name: &str,
        value: &Value,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Vid>> {
        // Adapter-level scan: the Gremlin has() step filters object by
        // object; the engine's value bitmaps are not consulted (which is
        // why indexes bring Sparksee no benefit in Figure 4c).
        let Some(key) = self.keys.get(name) else {
            return Ok(Vec::new());
        };
        let Some(attr) = self.vattrs.get(&key) else {
            return Ok(Vec::new());
        };
        let mut out = Vec::new();
        for v in self.vertices.iter() {
            ctx.tick()?;
            if attr.by_oid.get(&v) == Some(value) {
                out.push(Vid(v));
            }
        }
        Ok(out)
    }

    fn edges_with_property(
        &self,
        name: &str,
        value: &Value,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Eid>> {
        let Some(key) = self.keys.get(name) else {
            return Ok(Vec::new());
        };
        let Some(attr) = self.eattrs.get(&key) else {
            return Ok(Vec::new());
        };
        let mut out = Vec::new();
        for e in self.edges.iter() {
            ctx.tick()?;
            if attr.by_oid.get(&e) == Some(value) {
                out.push(Eid(e));
            }
        }
        Ok(out)
    }

    fn edges_with_label(&self, label: &str, ctx: &QueryCtx) -> GdbResult<Vec<Eid>> {
        // Per-edge label check through the adapter, like the property scan.
        let Some(want) = self.elabels.get(label) else {
            return Ok(Vec::new());
        };
        let mut out = Vec::new();
        for e in self.edges.iter() {
            ctx.tick()?;
            if self.edge_label.get(&e) == Some(&want) {
                out.push(Eid(e));
            }
        }
        Ok(out)
    }

    fn vertex(&self, v: Vid) -> GdbResult<Option<VertexData>> {
        if !self.vertices.contains(v.0) {
            return Ok(None);
        }
        let label = self
            .vertex_label_of
            .get(&v.0)
            .and_then(|&l| self.vlabels.resolve(l))
            .unwrap_or("<unknown>")
            .to_string();
        let mut props = Props::new();
        for (key, attr) in &self.vattrs {
            if let Some(val) = attr.by_oid.get(&v.0) {
                props.push((
                    self.keys.resolve(*key).expect("known key").to_string(),
                    val.clone(),
                ));
            }
        }
        props.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(Some(VertexData {
            id: v,
            label,
            props,
        }))
    }

    fn edge(&self, e: Eid) -> GdbResult<Option<EdgeData>> {
        if !self.edges.contains(e.0) {
            return Ok(None);
        }
        let mut props = Props::new();
        for (key, attr) in &self.eattrs {
            if let Some(val) = attr.by_oid.get(&e.0) {
                props.push((
                    self.keys.resolve(*key).expect("known key").to_string(),
                    val.clone(),
                ));
            }
        }
        props.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(Some(EdgeData {
            id: e,
            src: Vid(self.edge_src[&e.0]),
            dst: Vid(self.edge_dst[&e.0]),
            label: self
                .edge_label
                .get(&e.0)
                .and_then(|&l| self.elabels.resolve(l))
                .unwrap_or("<unknown>")
                .to_string(),
            props,
        }))
    }

    fn neighbors(
        &self,
        v: Vid,
        dir: Direction,
        label: Option<&str>,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Vid>> {
        Ok(self
            .vertex_edges(v, dir, label, ctx)?
            .into_iter()
            .map(|r| r.other)
            .collect())
    }

    fn vertex_edges(
        &self,
        v: Vid,
        dir: Direction,
        label: Option<&str>,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<EdgeRef>> {
        self.require_vertex(v.0)?;
        let label_id = match label {
            Some(l) => match self.elabels.get(l) {
                Some(id) => Some(id),
                None => return Ok(Vec::new()),
            },
            None => None,
        };
        let mut out = Vec::new();
        for e in self.incident(v.0, dir, label_id) {
            ctx.tick()?;
            let src = self.edge_src[&e];
            let dst = self.edge_dst[&e];
            let other = if src == v.0 { dst } else { src };
            out.push(EdgeRef {
                eid: Eid(e),
                other: Vid(other),
            });
        }
        Ok(out)
    }

    fn vertex_degree(&self, v: Vid, dir: Direction, ctx: &QueryCtx) -> GdbResult<u64> {
        self.require_vertex(v.0)?;
        // Adapter-faithful: `it.inE.count()` materializes the iterator into
        // a list and counts it (the root cause of the Q28-31 behaviour).
        let materialized = self.incident(v.0, dir, None);
        ctx.tick_n(materialized.len() as u64 + 1)?;
        Ok(materialized.len() as u64)
    }

    fn degree_scan(&self, dir: Direction, k: u64, ctx: &QueryCtx) -> GdbResult<Vec<Vid>> {
        // The known adapter flaw: every vertex's incident edges are
        // materialized AND retained until the scan finishes. On graphs past
        // the cap this aborts with ResourceExhausted (the paper's RAM
        // exhaustion, §6.4).
        let mut retained: Vec<Vec<u64>> = Vec::new();
        let mut retained_total = 0u64;
        let mut out = Vec::new();
        for v in self.vertices.iter() {
            ctx.tick()?;
            let materialized = self.incident(v, dir, None);
            retained_total += materialized.len() as u64 + 8;
            if retained_total > self.materialization_cap {
                return Err(GdbError::ResourceExhausted(format!(
                    "degree-filter adapter retained {retained_total} entries (cap {})",
                    self.materialization_cap
                )));
            }
            if materialized.len() as u64 >= k {
                out.push(Vid(v));
            }
            retained.push(materialized);
        }
        std::hint::black_box(&retained);
        Ok(out)
    }

    fn vertex_edge_labels(&self, v: Vid, dir: Direction, ctx: &QueryCtx) -> GdbResult<Vec<String>> {
        self.require_vertex(v.0)?;
        let mut seen: Vec<u32> = Vec::new();
        for e in self.incident(v.0, dir, None) {
            ctx.tick()?;
            let l = self.edge_label[&e];
            if !seen.contains(&l) {
                seen.push(l);
            }
        }
        Ok(seen
            .into_iter()
            .filter_map(|l| self.elabels.resolve(l).map(String::from))
            .collect())
    }

    fn scan_vertices<'a>(
        &'a self,
        ctx: &'a QueryCtx,
    ) -> GdbResult<Box<dyn Iterator<Item = GdbResult<Vid>> + 'a>> {
        Ok(Box::new(self.vertices.iter().map(move |v| {
            ctx.tick()?;
            Ok(Vid(v))
        })))
    }

    fn scan_edges<'a>(
        &'a self,
        ctx: &'a QueryCtx,
    ) -> GdbResult<Box<dyn Iterator<Item = GdbResult<Eid>> + 'a>> {
        Ok(Box::new(self.edges.iter().map(move |e| {
            ctx.tick()?;
            Ok(Eid(e))
        })))
    }

    fn vertex_property(&self, v: Vid, name: &str) -> GdbResult<Option<Value>> {
        self.require_vertex(v.0)?;
        let Some(key) = self.keys.get(name) else {
            return Ok(None);
        };
        Ok(self
            .vattrs
            .get(&key)
            .and_then(|a| a.by_oid.get(&v.0))
            .cloned())
    }

    fn edge_property(&self, e: Eid, name: &str) -> GdbResult<Option<Value>> {
        self.require_edge(e.0)?;
        let Some(key) = self.keys.get(name) else {
            return Ok(None);
        };
        Ok(self
            .eattrs
            .get(&key)
            .and_then(|a| a.by_oid.get(&e.0))
            .cloned())
    }

    fn edge_endpoints(&self, e: Eid) -> GdbResult<Option<(Vid, Vid)>> {
        if !self.edges.contains(e.0) {
            return Ok(None);
        }
        Ok(Some((Vid(self.edge_src[&e.0]), Vid(self.edge_dst[&e.0]))))
    }

    fn edge_label(&self, e: Eid) -> GdbResult<Option<String>> {
        if !self.edges.contains(e.0) {
            return Ok(None);
        }
        Ok(self
            .edge_label
            .get(&e.0)
            .and_then(|&l| self.elabels.resolve(l))
            .map(String::from))
    }

    fn vertex_label(&self, v: Vid) -> GdbResult<Option<String>> {
        if !self.vertices.contains(v.0) {
            return Ok(None);
        }
        Ok(self
            .vertex_label_of
            .get(&v.0)
            .and_then(|&l| self.vlabels.resolve(l))
            .map(String::from))
    }

    fn has_vertex_index(&self, prop: &str) -> bool {
        self.keys
            .get(prop)
            .map(|k| self.declared_indexes.contains(&k))
            .unwrap_or(false)
    }

    fn space(&self) -> SpaceReport {
        let mut r = SpaceReport::default();
        r.add("object bitmaps", self.vertices.bytes() + self.edges.bytes());
        r.add(
            "label bitmaps",
            self.vlabel_bitmaps.iter().map(|b| b.bytes()).sum::<u64>()
                + self.elabel_bitmaps.iter().map(|b| b.bytes()).sum::<u64>(),
        );
        r.add(
            "relationship maps",
            (self.edge_src.len() + self.edge_dst.len() + self.edge_label.len()) as u64 * 16
                + self.vertex_label_of.len() as u64 * 12,
        );
        r.add(
            "adjacency bitmaps",
            self.out_edges.values().map(|b| b.bytes() + 8).sum::<u64>()
                + self.in_edges.values().map(|b| b.bytes() + 8).sum::<u64>(),
        );
        r.add(
            "attribute stores",
            self.vattrs.values().map(|a| a.bytes()).sum::<u64>()
                + self.eattrs.values().map(|a| a.bytes()).sum::<u64>(),
        );
        r.add(
            "dictionaries",
            self.vlabels.bytes() + self.elabels.bytes() + self.keys.bytes(),
        );
        r
    }
}

impl GraphDb for BitmapGraph {
    fn bulk_load(&mut self, data: &Dataset, _opts: &LoadOptions) -> GdbResult<LoadStats> {
        if !self.vmap.is_empty() {
            return Err(GdbError::Invalid(
                "bulk_load requires an empty engine".into(),
            ));
        }
        for v in &data.vertices {
            let vid = self.add_vertex(&v.label, &v.props)?;
            self.vmap.push(vid.0);
        }
        for e in &data.edges {
            let label = self.elabels.intern(&e.label);
            let eid = self.add_edge_raw(
                self.vmap[e.src as usize],
                self.vmap[e.dst as usize],
                label,
                &e.props,
            )?;
            self.emap.push(eid);
        }
        Ok(LoadStats {
            vertices: data.vertices.len() as u64,
            edges: data.edges.len() as u64,
        })
    }

    fn add_vertex(&mut self, label: &str, props: &Props) -> GdbResult<Vid> {
        let label_id = self.vlabels.intern(label);
        let v = self.alloc_oid();
        self.vertices.insert(v);
        self.vlabel_bitmap_mut(label_id).insert(v);
        self.vertex_label_of.insert(v, label_id);
        for (name, value) in props {
            let key = self.keys.intern(name);
            self.vattrs.entry(key).or_default().set(v, value.clone());
        }
        Ok(Vid(v))
    }

    fn add_edge(&mut self, src: Vid, dst: Vid, label: &str, props: &Props) -> GdbResult<Eid> {
        let label_id = self.elabels.intern(label);
        Ok(Eid(self.add_edge_raw(src.0, dst.0, label_id, props)?))
    }

    fn set_vertex_property(&mut self, v: Vid, name: &str, value: Value) -> GdbResult<()> {
        self.require_vertex(v.0)?;
        let key = self.keys.intern(name);
        self.vattrs.entry(key).or_default().set(v.0, value);
        Ok(())
    }

    fn set_edge_property(&mut self, e: Eid, name: &str, value: Value) -> GdbResult<()> {
        self.require_edge(e.0)?;
        let key = self.keys.intern(name);
        self.eattrs.entry(key).or_default().set(e.0, value);
        Ok(())
    }

    fn remove_vertex(&mut self, v: Vid) -> GdbResult<()> {
        self.require_vertex(v.0)?;
        let incident = self.incident(v.0, Direction::Both, None);
        let mut seen = Vec::new();
        for e in incident {
            if !seen.contains(&e) {
                seen.push(e);
                self.remove_edge(Eid(e))?;
            }
        }
        for attr in self.vattrs.values_mut() {
            attr.remove(v.0);
        }
        if let Some(l) = self.vertex_label_of.remove(&v.0) {
            self.vlabel_bitmaps[l as usize].remove(v.0);
        }
        self.out_edges.remove(&v.0);
        self.in_edges.remove(&v.0);
        self.vertices.remove(v.0);
        Ok(())
    }

    fn remove_edge(&mut self, e: Eid) -> GdbResult<()> {
        self.require_edge(e.0)?;
        let src = self.edge_src.remove(&e.0).expect("edge src");
        let dst = self.edge_dst.remove(&e.0).expect("edge dst");
        let label = self.edge_label.remove(&e.0).expect("edge label");
        if let Some(bm) = self.out_edges.get_mut(&src) {
            bm.remove(e.0);
        }
        if let Some(bm) = self.in_edges.get_mut(&dst) {
            bm.remove(e.0);
        }
        self.elabel_bitmaps[label as usize].remove(e.0);
        for attr in self.eattrs.values_mut() {
            attr.remove(e.0);
        }
        self.edges.remove(e.0);
        Ok(())
    }

    fn remove_vertex_property(&mut self, v: Vid, name: &str) -> GdbResult<Option<Value>> {
        self.require_vertex(v.0)?;
        let Some(key) = self.keys.get(name) else {
            return Ok(None);
        };
        Ok(self.vattrs.get_mut(&key).and_then(|a| a.remove(v.0)))
    }

    fn remove_edge_property(&mut self, e: Eid, name: &str) -> GdbResult<Option<Value>> {
        self.require_edge(e.0)?;
        let Some(key) = self.keys.get(name) else {
            return Ok(None);
        };
        Ok(self.eattrs.get_mut(&key).and_then(|a| a.remove(e.0)))
    }

    fn create_vertex_index(&mut self, prop: &str) -> GdbResult<()> {
        // The value bitmaps already exist; the index declaration is recorded
        // but the Gremlin adapter's scan path cannot exploit it — exactly
        // the "Sparksee … not able to take advantage of such indexes"
        // finding (§6.4, Effect of Indexing).
        let key = self.keys.intern(prop);
        if !self.declared_indexes.contains(&key) {
            self.declared_indexes.push(key);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_model::testkit;

    #[test]
    fn conformance() {
        testkit::conformance_suite(&mut || Box::new(BitmapGraph::new()));
    }

    #[test]
    fn oid_space_is_shared() {
        let mut g = BitmapGraph::new();
        let v0 = g.add_vertex("n", &vec![]).unwrap();
        let v1 = g.add_vertex("n", &vec![]).unwrap();
        let e = g.add_edge(v0, v1, "x", &vec![]).unwrap();
        assert_eq!(v0.0, 0);
        assert_eq!(v1.0, 1);
        assert_eq!(e.0, 2, "edges share the sequential oid space");
    }

    #[test]
    fn counts_are_constant_work() {
        let mut g = BitmapGraph::new();
        g.bulk_load(&testkit::chain_dataset(5000), &LoadOptions::default())
            .unwrap();
        let ctx = QueryCtx::unbounded();
        assert_eq!(g.vertex_count(&ctx).unwrap(), 5000);
        assert_eq!(g.edge_count(&ctx).unwrap(), 4999);
        assert_eq!(ctx.work(), 0, "cardinality reads must not iterate");
    }

    #[test]
    fn labeled_adjacency_is_a_bitmap_and() {
        let mut g = BitmapGraph::new();
        let hub = g.add_vertex("n", &vec![]).unwrap();
        for i in 0..100 {
            let v = g.add_vertex("n", &vec![]).unwrap();
            g.add_edge(hub, v, if i % 4 == 0 { "rare" } else { "common" }, &vec![])
                .unwrap();
        }
        let ctx = QueryCtx::unbounded();
        let rare = g
            .neighbors(hub, Direction::Out, Some("rare"), &ctx)
            .unwrap();
        assert_eq!(rare.len(), 25);
        // Only matching edges are touched after the AND.
        assert!(
            ctx.work() <= 30,
            "AND prunes before iteration ({})",
            ctx.work()
        );
    }

    #[test]
    fn degree_scan_exhausts_at_cap() {
        let mut g = BitmapGraph::with_materialization_cap(100);
        g.bulk_load(&testkit::chain_dataset(200), &LoadOptions::default())
            .unwrap();
        let ctx = QueryCtx::unbounded();
        let err = g.degree_scan(Direction::Both, 1, &ctx).unwrap_err();
        assert!(matches!(err, GdbError::ResourceExhausted(_)));
    }

    #[test]
    fn degree_scan_works_under_cap() {
        let mut g = BitmapGraph::new();
        g.bulk_load(&testkit::chain_dataset(100), &LoadOptions::default())
            .unwrap();
        let ctx = QueryCtx::unbounded();
        // Interior chain vertices have both-degree 2.
        let hits = g.degree_scan(Direction::Both, 2, &ctx).unwrap();
        assert_eq!(hits.len(), 98);
    }

    #[test]
    fn attr_store_value_bitmaps_stay_consistent() {
        let mut g = BitmapGraph::new();
        let v = g
            .add_vertex("n", &vec![("color".into(), Value::Str("red".into()))])
            .unwrap();
        g.set_vertex_property(v, "color", Value::Str("blue".into()))
            .unwrap();
        let key = g.keys.get("color").unwrap();
        let attr = g.vattrs.get(&key).unwrap();
        assert!(!attr.by_value.contains_key(&Value::Str("red".into())));
        assert!(attr
            .by_value
            .get(&Value::Str("blue".into()))
            .unwrap()
            .contains(v.0));
    }

    #[test]
    fn index_declaration_does_not_change_results() {
        let mut g = BitmapGraph::new();
        g.bulk_load(&testkit::tiny_dataset(), &LoadOptions::default())
            .unwrap();
        let ctx = QueryCtx::unbounded();
        let before = g
            .vertices_with_property("age", &Value::Int(30), &ctx)
            .unwrap();
        g.create_vertex_index("age").unwrap();
        assert!(g.has_vertex_index("age"));
        let after = g
            .vertices_with_property("age", &Value::Int(30), &ctx)
            .unwrap();
        assert_eq!(before, after);
    }
}
